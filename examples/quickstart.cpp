/**
 * @file
 * Quickstart: characterize one workload, compute inefficiency, and
 * pick frequency settings under an energy budget.
 *
 * This walks the library's main flow end to end:
 *   1. build a measured grid (performance + energy at every CPU/memory
 *      frequency pair) for a workload;
 *   2. ask inefficiency questions about it (how efficient is a given
 *      setting? what is the most efficient one?);
 *   3. find the per-sample optimal settings under a budget;
 *   4. widen them into performance clusters and stable regions so the
 *      system barely ever has to change frequency.
 *
 * Usage: quickstart [workload]     (default: gobmk)
 */

#include <iostream>

#include "common/table.hh"
#include "repro/analyses.hh"
#include "repro/suite.hh"

using namespace mcdvfs;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "gobmk";

    std::cout << "== mcdvfs quickstart: " << workload << " ==\n\n";

    // 1. Build the measured grid over the paper's 70-setting space.
    ReproSuite suite;
    const MeasuredGrid &grid = suite.grid(workload);
    std::cout << grid.sampleCount() << " samples x "
              << grid.settingCount() << " settings ("
              << grid.space().cpuLadder().size() << " CPU x "
              << grid.space().memLadder().size() << " memory steps)\n\n";

    // 2. Whole-run inefficiency landscape (Fig. 2 flavour).
    GridAnalyses a(grid);
    const std::size_t max_idx =
        grid.space().indexOf(grid.space().maxSetting());
    const std::size_t min_idx =
        grid.space().indexOf(grid.space().minSetting());
    std::cout << "max setting " << grid.space().maxSetting().label()
              << " MHz: speedup " << Table::num(a.analysis.runSpeedup(max_idx), 2)
              << ", inefficiency "
              << Table::num(a.analysis.runInefficiency(max_idx), 2) << "\n";
    std::cout << "min setting " << grid.space().minSetting().label()
              << " MHz: speedup " << Table::num(a.analysis.runSpeedup(min_idx), 2)
              << ", inefficiency "
              << Table::num(a.analysis.runInefficiency(min_idx), 2) << "\n";
    std::cout << "max achievable inefficiency (Imax): "
              << Table::num(a.analysis.maxRunInefficiency(), 2) << "\n\n";

    // 3. Optimal settings under budgets.
    Table budgets({"budget", "exec time (norm)", "optimal transitions",
                   "achieved I"});
    budgets.setTitle("optimal tracking under inefficiency budgets");
    for (const double budget : {1.0, 1.1, 1.2, 1.3, 1.6}) {
        const PolicyOutcome outcome = a.tradeoff.optimalTracking(budget);
        budgets.addRow({Table::num(budget, 1),
                        Table::num(a.tradeoff.normalizedExecutionTime(budget), 3),
                        Table::num(static_cast<long long>(outcome.transitions)),
                        Table::num(outcome.achievedInefficiency, 3)});
    }
    budgets.print(std::cout);
    std::cout << '\n';

    // 4. Clusters + stable regions: trade 3% performance for fewer
    //    transitions at a budget of 1.3.
    const double budget = 1.3;
    const double threshold = 0.03;
    const auto regions = a.regions.find(budget, threshold);
    const PolicyOutcome cluster = a.tradeoff.clusterPolicy(budget, threshold);
    const PolicyOutcome optimal = a.tradeoff.optimalTracking(budget);
    std::cout << "budget 1.3, cluster threshold 3%:\n";
    std::cout << "  stable regions: " << regions.size() << " (vs "
              << grid.sampleCount() << " samples)\n";
    std::cout << "  transitions: " << cluster.transitions << " (optimal "
              << "tracking: " << optimal.transitions << ")\n";
    const TradeoffRow row = a.tradeoff.compare(budget, threshold);
    std::cout << "  performance vs optimal: " << Table::num(row.perfPct, 2)
              << "% (with tuning overhead: "
              << Table::num(row.perfPctWithOverhead, 2) << "%)\n";
    std::cout << "  energy vs optimal: " << Table::num(row.energyPct, 2)
              << "% (with tuning overhead: "
              << Table::num(row.energyPctWithOverhead, 2) << "%)\n";
    return 0;
}
