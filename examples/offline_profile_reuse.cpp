/**
 * @file
 * §VII "Offline Analysis" end to end: profile an application once,
 * serialize the stable-region profile (as a vendor would ship it with
 * the app), then run the application following the parsed profile and
 * compare against re-tuning every sample.
 *
 * Usage: offline_profile_reuse [workload] [budget] [threshold%]
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hh"
#include "repro/analyses.hh"
#include "repro/suite.hh"
#include "runtime/tuning_loop.hh"

using namespace mcdvfs;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "gcc";
    const double budget = argc > 2 ? std::atof(argv[2]) : 1.3;
    const double threshold =
        (argc > 3 ? std::atof(argv[3]) : 3.0) / 100.0;

    ReproSuite suite;
    const MeasuredGrid &grid = suite.grid(workload);
    GridAnalyses a(grid);

    // --- Profiling pass (offline, once per application) ---
    const auto regions = a.regions.find(budget, threshold);
    const OfflineProfile profile = OfflineProfile::fromRegions(
        workload, regions, grid.space());
    const std::string shipped = profile.serialize();
    std::cout << "profiled " << regions.size() << " stable regions ("
              << shipped.size() << " bytes serialized):\n\n"
              << shipped << '\n';

    // --- Deployment pass (parse what shipped, follow it) ---
    const OfflineProfile parsed = OfflineProfile::parse(shipped);
    TuningLoop loop(a.clusters, a.regions, a.costModel);

    const TuningLoopResult results[] = {
        loop.runEverySample(budget, threshold),
        loop.runProfileDriven(budget, threshold, parsed),
    };

    Table table({"policy", "tuning events", "transitions",
                 "time+overhead (ms)", "energy (mJ)", "achieved I"});
    table.setTitle(workload + ": profile reuse vs per-sample tuning");
    for (const TuningLoopResult &result : results) {
        table.addRow(
            {result.policy,
             Table::num(static_cast<long long>(result.tuningEvents)),
             Table::num(static_cast<long long>(result.transitions)),
             Table::num(result.timeWithOverhead * 1e3, 2),
             Table::num(result.energyWithOverhead * 1e3, 2),
             Table::num(result.achievedInefficiency, 3)});
    }
    table.print(std::cout);

    const double saved =
        100.0 * (1.0 - static_cast<double>(results[1].tuningEvents) /
                           static_cast<double>(results[0].tuningEvents));
    std::cout << "\nprofile reuse eliminates "
              << Table::num(saved, 1)
              << "% of tuning events at the same budget.\n";
    return 0;
}
