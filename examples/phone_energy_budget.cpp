/**
 * @file
 * Scenario from the paper's introduction: a smartphone wants to
 * stretch its remaining battery.  The OS assigns per-application
 * inefficiency budgets by priority (§II-A: "The OS can also set the
 * inefficiency budget based on application's priority") and the
 * governor keeps every app within its budget while delivering the
 * best performance it can.
 *
 * A foreground game (gobmk-like) gets a loose budget; a background
 * compression job (bzip2-like) and a media indexer (lbm-like) get
 * tight ones.  The example reports the battery headroom each budget
 * buys versus running everything with the performance governor.
 *
 * Usage: phone_energy_budget
 */

#include <iostream>

#include "common/table.hh"
#include "power/battery.hh"
#include "repro/analyses.hh"
#include "repro/suite.hh"

using namespace mcdvfs;

namespace
{

struct App
{
    const char *role;
    const char *workload;
    double budget;      ///< priority-derived inefficiency budget
    double threshold;   ///< tolerated performance loss
};

} // namespace

int
main()
{
    const App apps[] = {
        {"foreground game", "gobmk", 1.5, 0.01},
        {"background compressor", "bzip2", 1.1, 0.05},
        {"media indexer", "lbm", 1.15, 0.05},
    };

    ReproSuite suite;

    Table table({"app", "workload", "budget", "achieved I",
                 "slowdown vs perf-gov", "energy saved", "tunes"});
    table.setTitle("per-app inefficiency budgets on one device");

    Joules total_budgeted = 0.0;
    Joules total_unbudgeted = 0.0;
    for (const App &app : apps) {
        const MeasuredGrid &grid = suite.grid(app.workload);
        GridAnalyses a(grid);

        const PolicyOutcome outcome =
            a.tradeoff.clusterPolicy(app.budget, app.threshold);
        const std::size_t max_idx =
            grid.space().indexOf(grid.space().maxSetting());
        const Seconds perf_time = grid.totalTime(max_idx);
        const Joules perf_energy = grid.totalEnergy(max_idx);

        total_budgeted += outcome.energy;
        total_unbudgeted += perf_energy;

        table.addRow(
            {app.role, app.workload, Table::num(app.budget, 2),
             Table::num(outcome.achievedInefficiency, 3),
             Table::num((outcome.time / perf_time - 1.0) * 100.0, 1) +
                 "%",
             Table::num((1.0 - outcome.energy / perf_energy) * 100.0,
                        1) +
                 "%",
             Table::num(static_cast<long long>(outcome.tuningEvents))});
    }
    table.print(std::cout);

    std::cout << "\nbattery spend for this app mix: "
              << Table::num(total_budgeted * 1e3, 1) << " mJ vs "
              << Table::num(total_unbudgeted * 1e3, 1)
              << " mJ unbudgeted ("
              << Table::num(
                     (1.0 - total_budgeted / total_unbudgeted) * 100.0,
                     1)
              << "% battery headroom bought with the budgets)\n";

    // Battery-lifetime framing (§I motivation, §VIII: inefficiency
    // expresses "the amount of battery life the user is willing to
    // sacrifice").  Suppose the phone runs this app mix on repeat.
    Battery budgeted;
    Battery unbudgeted;
    const double mixes_budgeted =
        budgeted.capacity() / total_budgeted;
    const double mixes_unbudgeted =
        unbudgeted.capacity() / total_unbudgeted;
    std::cout << "\nrunning this mix on repeat, a "
              << Table::num(budgeted.capacity() / 3600.0, 1)
              << " Wh battery completes "
              << Table::num(mixes_budgeted, 0) << " mixes budgeted vs "
              << Table::num(mixes_unbudgeted, 0) << " unbudgeted — "
              << Table::num(
                     (mixes_budgeted / mixes_unbudgeted - 1.0) * 100.0,
                     1)
              << "% more work per charge.\n";

    std::cout << "\nNote how the budget is work-tied: every app "
                 "completes its full task; no app is paused or "
                 "throttled by wall-clock quota.\n";
    return 0;
}
