/**
 * @file
 * Phase-characterization viewer: per-sample CPI and MPKI traces plus
 * cluster/region statistics for one workload.
 *
 * This is the paper's Figure 3 "top panel" as a tool: it shows how a
 * workload's phases evolve sample by sample and how wide its
 * performance clusters are under a budget, which is the information an
 * energy-management algorithm designer needs before picking a cluster
 * threshold.
 *
 * Usage: characterization_report [workload] [budget] [threshold%]
 */

#include <cstdlib>
#include <iostream>

#include "common/table.hh"
#include "repro/analyses.hh"
#include "repro/suite.hh"

using namespace mcdvfs;

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "gobmk";
    const double budget = argc > 2 ? std::atof(argv[2]) : 1.3;
    const double threshold =
        (argc > 3 ? std::atof(argv[3]) : 1.0) / 100.0;

    ReproSuite suite;
    const MeasuredGrid &grid = suite.grid(workload);
    GridAnalyses a(grid);

    const std::size_t max_idx =
        grid.space().indexOf(grid.space().maxSetting());

    std::cout << "== characterization: " << workload << " (budget "
              << budget << ", threshold " << threshold * 100 << "%) ==\n\n";

    Table table({"sample", "phase", "CPI@max", "L1 MPKI", "L2 MPKI",
                 "rowhit%", "opt cpu", "opt mem", "opt I", "cluster",
                 "busy%"});
    table.setTitle("per-sample characterization");
    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        const SampleProfile &profile = grid.profile(s);
        const GridCell &cell = grid.cell(s, max_idx);
        const double cpi = cell.seconds * grid.space().maxSetting().cpu /
                           static_cast<double>(
                               grid.instructionsPerSample());
        const PerformanceCluster cluster =
            a.clusters.clusterForSample(s, budget, threshold);
        table.addRow({Table::num(static_cast<long long>(s)),
                      profile.phaseName, Table::num(cpi, 2),
                      Table::num(profile.l1Mpki, 1),
                      Table::num(profile.l2Mpki, 1),
                      Table::num(profile.rowHitFrac * 100, 0),
                      Table::num(toMegaHertz(cluster.optimal.setting.cpu), 0),
                      Table::num(toMegaHertz(cluster.optimal.setting.mem), 0),
                      Table::num(cluster.optimal.inefficiency, 2),
                      Table::num(static_cast<long long>(
                          cluster.settings.size())),
                      Table::num(cell.busyFrac * 100, 0)});
    }
    table.print(std::cout);

    const auto regions = a.regions.find(budget, threshold);
    std::cout << "\nstable regions: " << regions.size() << "; lengths:";
    for (const auto &region : regions)
        std::cout << ' ' << region.length();
    std::cout << "\n";
    return 0;
}
