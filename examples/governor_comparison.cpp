/**
 * @file
 * Governor shoot-out: drive the same workload with the Linux-style
 * governors (performance, powersave, ondemand, userspace) and the
 * paper's inefficiency governor, end to end through the Governor
 * interface, and compare time / energy / achieved inefficiency /
 * transitions.
 *
 * Usage: governor_comparison [workload] [budget] [threshold%]
 */

#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "common/table.hh"
#include "dvfs/governor.hh"
#include "dvfs/transition.hh"
#include "repro/analyses.hh"
#include "repro/suite.hh"
#include "runtime/inefficiency_governor.hh"

using namespace mcdvfs;

namespace
{

/** Drive one governor across the workload's samples. */
struct DriveResult
{
    Seconds time = 0.0;
    Joules energy = 0.0;
    double achievedInefficiency = 0.0;
    std::size_t transitions = 0;
};

DriveResult
drive(Governor &governor, const MeasuredGrid &grid,
      const TransitionModel &transitions)
{
    DriveResult result;
    Joules emin_sum = 0.0;
    SampleObservation last;
    bool have_last = false;
    FrequencySetting current{};

    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        const FrequencySetting chosen =
            governor.decide(have_last ? &last : nullptr);
        if (have_last) {
            const TransitionCost cost = transitions.cost(current, chosen);
            result.time += cost.latency;
            result.energy += cost.energy;
            result.transitions +=
                TransitionModel::domainsChanged(current, chosen) > 0;
        }
        current = chosen;

        const GridCell &cell =
            grid.cell(s, grid.space().indexOf(chosen));
        result.time += cell.seconds;
        result.energy += cell.energy();
        emin_sum += grid.sampleEmin(s);

        last = SampleObservation{};
        last.sampleIndex = s;
        last.setting = chosen;
        last.duration = cell.seconds;
        last.energy = cell.energy();
        last.cpuBusyFrac = cell.busyFrac;
        last.memBwUtil = cell.bwUtil;
        have_last = true;
    }
    result.achievedInefficiency = result.energy / emin_sum;
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string workload = argc > 1 ? argv[1] : "gobmk";
    const double budget = argc > 2 ? std::atof(argv[2]) : 1.3;
    const double threshold =
        (argc > 3 ? std::atof(argv[3]) : 3.0) / 100.0;

    ReproSuite suite;
    const MeasuredGrid &grid = suite.grid(workload);
    GridAnalyses a(grid);
    const TransitionModel transition_model;

    std::vector<std::unique_ptr<Governor>> governors;
    governors.push_back(
        std::make_unique<PerformanceGovernor>(grid.space()));
    governors.push_back(
        std::make_unique<PowersaveGovernor>(grid.space()));
    governors.push_back(std::make_unique<OndemandGovernor>(grid.space()));
    governors.push_back(std::make_unique<UserspaceGovernor>(
        FrequencySetting{megaHertz(600), megaHertz(400)}));
    governors.push_back(std::make_unique<InefficiencyGovernor>(
        a.clusters, budget, threshold));

    Table table({"governor", "time (ms)", "energy (mJ)", "achieved I",
                 "transitions"});
    table.setTitle(workload + ": governor comparison (budget " +
                   Table::num(budget, 2) + ", threshold " +
                   Table::num(threshold * 100, 0) + "%)");
    for (const auto &governor : governors) {
        const DriveResult result =
            drive(*governor, grid, transition_model);
        table.addRow({governor->name(),
                      Table::num(result.time * 1e3, 2),
                      Table::num(result.energy * 1e3, 2),
                      Table::num(result.achievedInefficiency, 3),
                      Table::num(static_cast<long long>(
                          result.transitions))});
    }
    table.print(std::cout);

    std::cout << "\nThe inefficiency governor is the only one that "
                 "takes an energy budget as input; the others either "
                 "ignore energy (performance, userspace), ignore "
                 "performance (powersave), or react to utilization "
                 "with no budget at all (ondemand).\n";
    return 0;
}
