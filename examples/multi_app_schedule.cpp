/**
 * @file
 * Multi-application device scenario: three apps with priority-derived
 * inefficiency budgets time-share one CPU + memory system.
 *
 * Shows the system-level interaction the single-app analyses imply:
 * each app's budget picks different frequency settings, so
 * sample-granular round robin forces a hardware transition at almost
 * every context switch, while run-to-completion batching pays
 * transitions only inside and between apps.
 *
 * Usage: multi_app_schedule
 */

#include <iostream>

#include "common/table.hh"
#include "repro/suite.hh"
#include "sched/scheduler.hh"

using namespace mcdvfs;

int
main()
{
    ReproSuite suite;

    std::vector<AppTask> apps(3);
    apps[0].name = "game (gobmk)";
    apps[0].grid = &suite.grid("gobmk");
    apps[0].budget = 1.5;
    apps[0].threshold = 0.01;
    apps[1].name = "compressor (bzip2)";
    apps[1].grid = &suite.grid("bzip2");
    apps[1].budget = 1.1;
    apps[1].threshold = 0.05;
    apps[2].name = "indexer (lbm)";
    apps[2].grid = &suite.grid("lbm");
    apps[2].budget = 1.15;
    apps[2].threshold = 0.05;

    BudgetScheduler scheduler;

    for (const auto [policy, label] :
         {std::pair{SchedPolicy::RoundRobin, "round-robin"},
          std::pair{SchedPolicy::RunToCompletion,
                    "run-to-completion"}}) {
        const ScheduleResult result = scheduler.run(apps, policy);

        Table table({"app", "budget", "achieved I", "busy (ms)",
                     "energy (mJ)"});
        table.setTitle(std::string("schedule: ") + label);
        for (std::size_t i = 0; i < apps.size(); ++i) {
            table.addRow(
                {result.apps[i].name, Table::num(apps[i].budget, 2),
                 Table::num(result.apps[i].achievedInefficiency, 3),
                 Table::num(result.apps[i].busyTime * 1e3, 1),
                 Table::num(result.apps[i].energy * 1e3, 1)});
        }
        table.print(std::cout);
        std::cout << "makespan " << Table::num(result.makespan * 1e3, 1)
                  << " ms, total energy "
                  << Table::num(result.totalEnergy * 1e3, 1)
                  << " mJ, context switches " << result.contextSwitches
                  << ", frequency transitions "
                  << result.frequencyTransitions << " ("
                  << Table::num(result.transitionLatency * 1e3, 2)
                  << " ms in PLL relocks)\n\n";
    }

    std::cout << "Every app meets its own budget under both policies; "
                 "batching spends far less time in frequency "
                 "transitions.\n";
    return 0;
}
