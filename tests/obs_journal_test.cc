/**
 * @file
 * Tests of the decision journal filled by TuningLoop: per-sample
 * transition flags must agree exactly with core/TransitionAnalysis,
 * re-tune flags with the reported tuning-event counts, and attaching
 * a journal must not change any result.
 */

#include <gtest/gtest.h>

#include "core/transitions.hh"
#include "obs/journal.hh"
#include "repro/analyses.hh"
#include "runtime/tuning_loop.hh"
#include "test_grid.hh"

namespace mcdvfs
{
namespace
{

constexpr double kBudget = 1.3;
constexpr double kThreshold = 0.03;

struct JournaledLoop
{
    GridAnalyses a;
    TuningLoop loop;
    obs::DecisionJournal journal;

    explicit JournaledLoop(const MeasuredGrid &grid)
        : a(grid), loop(a.clusters, a.regions, a.costModel)
    {
        loop.setJournal(&journal);
    }
};

TEST(DecisionJournal, OracleTransitionsMatchTransitionAnalysis)
{
    JournaledLoop j(test::phasedGrid());
    const TuningLoopResult result =
        j.loop.runOracle(kBudget, kThreshold);

    // The oracle follows the stable regions, i.e. exactly the cluster
    // policy's setting sequence, so the journal must agree with
    // TransitionAnalysis both in total and sample by sample.
    const TransitionReport report =
        j.a.transitions.forClusterPolicy(kBudget, kThreshold);
    EXPECT_EQ(j.journal.transitionCount(), report.transitions);
    EXPECT_EQ(result.transitions, report.transitions);

    const std::vector<std::size_t> sequence =
        j.a.transitions.clusterSettingSequence(kBudget, kThreshold);
    const auto &records = j.journal.records();
    ASSERT_EQ(records.size(), sequence.size());
    for (std::size_t s = 0; s < sequence.size(); ++s) {
        const bool expect_transition =
            s > 0 && sequence[s] != sequence[s - 1];
        EXPECT_EQ(records[s].transition, expect_transition)
            << "sample " << s;
        EXPECT_EQ(records[s].sample, s);
        EXPECT_EQ(records[s].policy, "oracle");
    }
}

TEST(DecisionJournal, RetuneFlagsMatchReportedTuningEvents)
{
    const MeasuredGrid &grid = test::phasedGrid();
    for (int schedule = 0; schedule < 4; ++schedule) {
        JournaledLoop j(grid);
        TuningLoopResult result;
        switch (schedule) {
          case 0:
            result = j.loop.runOracle(kBudget, kThreshold);
            break;
          case 1:
            result = j.loop.runEverySample(kBudget, kThreshold);
            break;
          case 2:
            result = j.loop.runPredictive(kBudget, kThreshold);
            break;
          default:
            result = j.loop.runReactive(kBudget, kThreshold);
            break;
        }
        EXPECT_EQ(j.journal.retuneCount(), result.tuningEvents)
            << result.policy;
        EXPECT_EQ(j.journal.transitionCount(), result.transitions)
            << result.policy;
        EXPECT_EQ(j.journal.records().size(), grid.sampleCount())
            << result.policy;
    }
}

TEST(DecisionJournal, EverySampleRetunesAtEveryBoundary)
{
    JournaledLoop j(test::phasedGrid());
    j.loop.runEverySample(kBudget, kThreshold);
    EXPECT_EQ(j.journal.retuneCount(),
              test::phasedGrid().sampleCount());
    for (const obs::DecisionRecord &record : j.journal.records()) {
        EXPECT_TRUE(record.retuned);
        EXPECT_EQ(record.policy, "every-sample");
    }
}

TEST(DecisionJournal, AttachingAJournalDoesNotChangeResults)
{
    const MeasuredGrid &grid = test::phasedGrid();
    GridAnalyses a(grid);
    TuningLoop bare(a.clusters, a.regions, a.costModel);
    const TuningLoopResult without =
        bare.runPredictive(kBudget, kThreshold);

    JournaledLoop j(grid);
    const TuningLoopResult with =
        j.loop.runPredictive(kBudget, kThreshold);

    EXPECT_EQ(with.policy, without.policy);
    EXPECT_EQ(with.time, without.time);
    EXPECT_EQ(with.energy, without.energy);
    EXPECT_EQ(with.timeWithOverhead, without.timeWithOverhead);
    EXPECT_EQ(with.energyWithOverhead, without.energyWithOverhead);
    EXPECT_EQ(with.tuningEvents, without.tuningEvents);
    EXPECT_EQ(with.transitions, without.transitions);
    EXPECT_EQ(with.achievedInefficiency, without.achievedInefficiency);
    EXPECT_EQ(with.budgetViolationFrac, without.budgetViolationFrac);
}

TEST(DecisionJournal, RecordsCarryDecisionContext)
{
    JournaledLoop j(test::phasedGrid());
    j.loop.runOracle(kBudget, kThreshold);

    std::uint64_t last_overhead_ns = 0;
    for (const obs::DecisionRecord &record : j.journal.records()) {
        EXPECT_EQ(record.workload, "phased");
        EXPECT_EQ(record.budget, kBudget);
        EXPECT_GT(record.cpuMhz, 0.0);
        EXPECT_GT(record.memMhz, 0.0);
        EXPECT_GT(record.inefficiency, 0.0);
        EXPECT_GT(record.cpi, 0.0);
        // Cumulative overhead never decreases along the run.
        EXPECT_GE(record.overheadNs, last_overhead_ns);
        last_overhead_ns = record.overheadNs;
        // Oracle re-tunes exactly at stable-region starts, which by
        // construction lie inside a region.
        if (record.retuned)
            EXPECT_GE(record.region, 0);
    }
}

} // namespace
} // namespace mcdvfs
