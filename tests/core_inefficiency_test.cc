/**
 * @file
 * Unit and property tests for the inefficiency metric (§II).
 */

#include <gtest/gtest.h>

#include "core/inefficiency.hh"
#include "test_grid.hh"

namespace mcdvfs
{
namespace
{

TEST(Inefficiency, AlwaysAtLeastOne)
{
    const MeasuredGrid &grid = test::phasedGrid();
    InefficiencyAnalysis analysis(grid);
    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        for (std::size_t k = 0; k < grid.settingCount(); ++k)
            ASSERT_GE(analysis.sampleInefficiency(s, k), 1.0 - 1e-12);
    }
    for (std::size_t k = 0; k < grid.settingCount(); ++k)
        ASSERT_GE(analysis.runInefficiency(k), 1.0 - 1e-12);
}

TEST(Inefficiency, ExactlyOneAtEminSetting)
{
    const MeasuredGrid &grid = test::phasedGrid();
    InefficiencyAnalysis analysis(grid);
    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        double best = 1e18;
        for (std::size_t k = 0; k < grid.settingCount(); ++k)
            best = std::min(best, analysis.sampleInefficiency(s, k));
        ASSERT_NEAR(best, 1.0, 1e-12);
    }
}

TEST(Inefficiency, SampleEminMatchesGrid)
{
    const MeasuredGrid &grid = test::phasedGrid();
    InefficiencyAnalysis analysis(grid);
    for (std::size_t s = 0; s < grid.sampleCount(); ++s)
        ASSERT_DOUBLE_EQ(analysis.sampleEmin(s), grid.sampleEmin(s));
}

TEST(Inefficiency, SpeedupAtLeastOneAndOneAtSlowest)
{
    const MeasuredGrid &grid = test::phasedGrid();
    InefficiencyAnalysis analysis(grid);
    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        double slowest = 1e18;
        for (std::size_t k = 0; k < grid.settingCount(); ++k) {
            const double speedup = analysis.sampleSpeedup(s, k);
            ASSERT_GE(speedup, 1.0 - 1e-12);
            slowest = std::min(slowest, speedup);
        }
        ASSERT_NEAR(slowest, 1.0, 1e-12);
    }
}

TEST(Inefficiency, RunAggregatesMatchGrid)
{
    const MeasuredGrid &grid = test::phasedGrid();
    InefficiencyAnalysis analysis(grid);
    EXPECT_DOUBLE_EQ(analysis.eminTotal(), grid.eminTotal());
    for (std::size_t k = 0; k < grid.settingCount(); k += 7) {
        EXPECT_DOUBLE_EQ(analysis.runInefficiency(k),
                         grid.totalEnergy(k) / grid.eminTotal());
        EXPECT_DOUBLE_EQ(analysis.runSpeedup(k),
                         grid.slowestTotal() / grid.totalTime(k));
    }
}

TEST(Inefficiency, MaxRunInefficiencyInPaperRange)
{
    // The paper observes Imax between 1.5 and 2 across benchmarks;
    // the synthetic fixture should land in a compatible range.
    InefficiencyAnalysis analysis(test::phasedGrid());
    EXPECT_GT(analysis.maxRunInefficiency(), 1.3);
    EXPECT_LT(analysis.maxRunInefficiency(), 2.6);
}

TEST(Inefficiency, SlowestIsNotMostEfficient)
{
    // §IV: "Running slower doesn't mean that system is running
    // efficiently" — the lowest setting's inefficiency exceeds 1.
    const MeasuredGrid &grid = test::phasedGrid();
    InefficiencyAnalysis analysis(grid);
    const std::size_t lowest =
        grid.space().indexOf(grid.space().minSetting());
    EXPECT_GT(analysis.runInefficiency(lowest), 1.1);
}

TEST(Inefficiency, UnboundedBudgetConstant)
{
    EXPECT_TRUE(kUnboundedBudget > 1e300);
}

} // namespace
} // namespace mcdvfs
