/**
 * @file
 * TimeseriesStore tests: snapshot-to-delta conversion, bounded ring
 * retention, window queries, quantile interpolation over delta
 * buckets, and the "mcdvfs-timeseries-v1" JSON export.
 */

#include <gtest/gtest.h>

#include "obs/timeseries.hh"

namespace mcdvfs
{
namespace obs
{
namespace
{

MetricsSnapshot
counterSnap(std::uint64_t a, std::uint64_t b)
{
    MetricsSnapshot snap;
    snap.counters = {{"alpha", a}, {"beta", b}};
    return snap;
}

TEST(TimeseriesStore, CumulativeSnapshotsBecomePerTickDeltas)
{
    TimeseriesStore store(8);
    store.append(counterSnap(10, 0), 100);
    store.append(counterSnap(25, 5), 200);
    store.append(counterSnap(25, 9), 300);

    EXPECT_EQ(store.retained(), 3u);
    EXPECT_EQ(store.totalTicks(), 3u);
    EXPECT_EQ(store.droppedTicks(), 0u);
    // Whole window: the full cumulative values.
    EXPECT_EQ(store.counterDelta("alpha"), 25u);
    EXPECT_EQ(store.counterDelta("beta"), 9u);
    // Last tick only.
    EXPECT_EQ(store.counterDelta("alpha", 1), 0u);
    EXPECT_EQ(store.counterDelta("beta", 1), 4u);
    // Last two ticks.
    EXPECT_EQ(store.counterDelta("alpha", 2), 15u);
    EXPECT_EQ(store.counterDelta("unknown", 0), 0u);
}

TEST(TimeseriesStore, BackwardsCounterClampsToZeroDelta)
{
    TimeseriesStore store(8);
    store.append(counterSnap(100, 0), 100);
    // Registry reset: cumulative value fell.  The tick contributes a
    // zero delta instead of a huge unsigned wraparound.
    store.append(counterSnap(40, 0), 200);
    EXPECT_EQ(store.counterDelta("alpha", 1), 0u);
    store.append(counterSnap(41, 0), 300);
    EXPECT_EQ(store.counterDelta("alpha", 1), 1u);
}

TEST(TimeseriesStore, RingDropsOldestTicks)
{
    TimeseriesStore store(4);
    for (std::uint64_t i = 1; i <= 10; ++i)
        store.append(counterSnap(i, 0), i * 100);

    EXPECT_EQ(store.retained(), 4u);
    EXPECT_EQ(store.totalTicks(), 10u);
    EXPECT_EQ(store.droppedTicks(), 6u);
    // Only the last four unit deltas remain.
    EXPECT_EQ(store.counterDelta("alpha"), 4u);
}

TEST(TimeseriesStore, LateAppearingSeriesZeroPadsEarlierTicks)
{
    TimeseriesStore store(8);
    MetricsSnapshot first;
    first.counters = {{"alpha", 5}};
    store.append(first, 100);

    MetricsSnapshot second;
    second.counters = {{"alpha", 6}, {"late", 3}};
    store.append(second, 200);

    EXPECT_EQ(store.counterDelta("late"), 3u);
    const std::string json = store.toJson();
    // The late series still has one entry per retained tick.
    EXPECT_NE(json.find("\"late\": [0, 3]"), std::string::npos);
}

TEST(TimeseriesStore, GaugeKeepsLatestPoint)
{
    TimeseriesStore store(4);
    MetricsSnapshot snap;
    snap.gauges = {{"depth", 7}};
    store.append(snap, 100);
    snap.gauges = {{"depth", -2}};
    store.append(snap, 200);
    EXPECT_EQ(store.gaugeLast("depth"), -2);
    EXPECT_EQ(store.gaugeLast("unknown"), 0);
}

MetricsSnapshot
histSnap(std::uint64_t lo, std::uint64_t mid, std::uint64_t overflow)
{
    MetricsSnapshot snap;
    MetricsSnapshot::HistogramView view;
    view.name = "lat";
    view.bounds = {100, 1000};
    view.counts = {lo, mid, overflow};
    view.count = lo + mid + overflow;
    view.sum = 0;
    snap.histograms.push_back(view);
    return snap;
}

TEST(TimeseriesStore, QuantileInterpolatesOverWindowDeltas)
{
    TimeseriesStore store(8);
    store.append(histSnap(0, 0, 0), 100);
    // This tick: 10 events <= 100ns, 10 in (100, 1000].
    store.append(histSnap(10, 10, 0), 200);

    EXPECT_EQ(store.histogramEvents("lat"), 20u);
    const double p50 = store.quantile("lat", 0.5);
    EXPECT_GT(p50, 0.0);
    EXPECT_LE(p50, 100.0);
    const double p99 = store.quantile("lat", 0.99);
    EXPECT_GT(p99, 900.0);
    EXPECT_LE(p99, 1000.0);
}

TEST(TimeseriesStore, QuantileOverflowBucketExtrapolates)
{
    TimeseriesStore store(8);
    store.append(histSnap(0, 0, 0), 100);
    store.append(histSnap(0, 0, 10), 200);
    const double p99 = store.quantile("lat", 0.99);
    EXPECT_GT(p99, 1000.0);
    EXPECT_LE(p99, 10000.0); // caps at 10x the last bound
}

TEST(TimeseriesStore, QuantileWithoutEventsIsMinusOne)
{
    TimeseriesStore store(8);
    EXPECT_EQ(store.quantile("lat", 0.5), -1.0);
    store.append(histSnap(0, 0, 0), 100);
    EXPECT_EQ(store.quantile("lat", 0.5), -1.0);
    EXPECT_EQ(store.quantile("unknown", 0.5), -1.0);
}

TEST(TimeseriesStore, JsonExportCarriesSchemaTicksAndBreaches)
{
    TimeseriesStore store(4);
    store.append(counterSnap(3, 1), 100);
    store.append(counterSnap(5, 1), 200);

    SloBreach breach;
    breach.rule = "shed_rate";
    breach.value = 0.5;
    breach.threshold = 0.05;
    breach.tick = 2;
    const std::string json = store.toJson({breach});

    EXPECT_NE(json.find("\"schema\": \"mcdvfs-timeseries-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"ticks\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"alpha\": [3, 2]"), std::string::npos);
    EXPECT_NE(json.find("\"rule\": \"shed_rate\""), std::string::npos);
    EXPECT_NE(json.find("\"slo_breaches\""), std::string::npos);
}

} // namespace
} // namespace obs
} // namespace mcdvfs
