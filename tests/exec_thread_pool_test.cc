/**
 * @file
 * ThreadPool tests: futures, exception propagation, parallelFor
 * coverage, nesting, and a many-small-tasks stress run.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "exec/thread_pool.hh"

namespace mcdvfs
{
namespace
{

TEST(ThreadPool, SubmitReturnsResultsThroughFutures)
{
    exec::ThreadPool pool(4);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(pool.submit([i] { return i * i; }));
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, ZeroWorkersRunsInline)
{
    exec::ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 0u);
    auto future = pool.submit([] { return 42; });
    EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    exec::ThreadPool pool(2);
    auto future = pool.submit(
        []() -> int { throw std::runtime_error("task failed"); });
    EXPECT_THROW(future.get(), std::runtime_error);

    // The worker that ran the throwing task must still be alive.
    EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce)
{
    exec::ThreadPool pool(4);
    constexpr std::size_t kCount = 10'000;
    std::vector<std::atomic<int>> touched(kCount);
    pool.parallelFor(0, kCount,
                     [&](std::size_t i) { touched[i].fetch_add(1); });
    for (std::size_t i = 0; i < kCount; ++i)
        ASSERT_EQ(touched[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelForRespectsGrainAndOddRanges)
{
    exec::ThreadPool pool(3);
    std::vector<std::atomic<int>> touched(101);
    pool.parallelFor(7, 101,
                     [&](std::size_t i) { touched[i].fetch_add(1); },
                     /*grain=*/13);
    for (std::size_t i = 0; i < touched.size(); ++i)
        ASSERT_EQ(touched[i].load(), i >= 7 ? 1 : 0) << "index " << i;
}

TEST(ThreadPool, ParallelForEmptyRangeIsANoop)
{
    exec::ThreadPool pool(2);
    bool ran = false;
    pool.parallelFor(5, 5, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForPropagatesBodyException)
{
    exec::ThreadPool pool(4);
    std::atomic<int> completed{0};
    EXPECT_THROW(
        pool.parallelFor(0, 100,
                         [&](std::size_t i) {
                             if (i == 37)
                                 throw std::runtime_error("bad index");
                             completed.fetch_add(1);
                         }),
        std::runtime_error);
    // The rest of the range still ran to completion.
    EXPECT_EQ(completed.load(), 99);
}

TEST(ThreadPool, NestedParallelForFromWorkerDoesNotDeadlock)
{
    // A task running on the pool's only worker issues a parallelFor on
    // the same pool: the calling thread claims the chunks itself, so
    // this must complete even though no other worker exists.
    exec::ThreadPool pool(1);
    auto future = pool.submit([&pool] {
        std::atomic<int> sum{0};
        pool.parallelFor(0, 100, [&](std::size_t i) {
            sum.fetch_add(static_cast<int>(i));
        });
        return sum.load();
    });
    EXPECT_EQ(future.get(), 4950);
}

TEST(ThreadPool, StressManySmallTasks)
{
    exec::ThreadPool pool(8);
    std::atomic<std::uint64_t> sum{0};
    std::vector<std::future<void>> futures;
    futures.reserve(2'000);
    for (std::uint64_t i = 0; i < 2'000; ++i)
        futures.push_back(
            pool.submit([&sum, i] { sum.fetch_add(i + 1); }));
    for (auto &future : futures)
        future.get();
    EXPECT_EQ(sum.load(), 2'000ull * 2'001ull / 2ull);
}

} // namespace
} // namespace mcdvfs
