/**
 * @file
 * TuningDaemon tests: pipeline results match the direct service path
 * bit-for-bit, admission control sheds (queue-full and draining),
 * drain completes every admitted request, and a warm restart answers
 * from the snapshot store.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <future>
#include <vector>

#include "daemon/tuning_daemon.hh"

namespace mcdvfs
{
namespace
{

namespace fs = std::filesystem;
using daemon::DaemonOptions;
using daemon::DaemonResponse;
using daemon::DaemonStats;
using daemon::ShedReason;
using daemon::TuningDaemon;

WorkloadProfile
tinyWorkload(const std::string &name = "tiny", std::uint64_t seed = 5)
{
    PhaseSpec cpu;
    cpu.name = "cpu";
    cpu.hotFrac = 0.98;
    cpu.warmFrac = 0.015;
    PhaseSpec mem;
    mem.name = "mem";
    mem.hotFrac = 0.80;
    mem.warmFrac = 0.10;
    mem.coldSeqFrac = 0.3;
    return WorkloadProfile(
        name, 6, [cpu, mem](std::size_t s) { return s % 2 ? mem : cpu; },
        seed, /*jitter=*/0.0);
}

SystemConfig
fastConfig()
{
    SystemConfig config;
    config.sampler.simInstructionsPerSample = 20'000;
    config.sampler.warmupInstructions = 100'000;
    return config;
}

svc::TuningRequest
tinyRequest(const std::string &name = "tiny", double budget = 1.3)
{
    return svc::TuningRequest{tinyWorkload(name), SettingsSpace::coarse(),
                              budget, 0.03};
}

std::uint64_t
bitsOf(double value)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

void
expectResultsBitEqual(const svc::TuningResult &a,
                      const svc::TuningResult &b)
{
    ASSERT_EQ(a.optimal.size(), b.optimal.size());
    for (std::size_t i = 0; i < a.optimal.size(); ++i) {
        EXPECT_EQ(a.optimal[i].settingIndex, b.optimal[i].settingIndex);
        EXPECT_EQ(bitsOf(a.optimal[i].speedup),
                  bitsOf(b.optimal[i].speedup));
        EXPECT_EQ(bitsOf(a.optimal[i].inefficiency),
                  bitsOf(b.optimal[i].inefficiency));
    }
    ASSERT_EQ(a.clusters.size(), b.clusters.size());
    for (std::size_t i = 0; i < a.clusters.size(); ++i)
        EXPECT_EQ(a.clusters[i].settings, b.clusters[i].settings);
    ASSERT_EQ(a.regions.size(), b.regions.size());
    for (std::size_t i = 0; i < a.regions.size(); ++i) {
        EXPECT_EQ(a.regions[i].first, b.regions[i].first);
        EXPECT_EQ(a.regions[i].last, b.regions[i].last);
        EXPECT_EQ(a.regions[i].chosenSettingIndex,
                  b.regions[i].chosenSettingIndex);
    }
}

TEST(TuningDaemon, MatchesDirectServiceBitForBit)
{
    TuningDaemon daemon(fastConfig());
    DaemonResponse response = daemon.submit(tinyRequest()).get();
    ASSERT_TRUE(response.ok());
    ASSERT_NE(response.result.grid, nullptr);
    EXPECT_GT(response.totalNs, 0u);
    EXPECT_GT(response.gridNs, 0u);
    EXPECT_FALSE(response.result.cacheHit);

    svc::CharacterizationService direct(fastConfig());
    const svc::TuningResult expected = direct.submit(tinyRequest());
    expectResultsBitEqual(response.result, expected);
}

TEST(TuningDaemon, CompletesEveryAdmittedRequest)
{
    DaemonOptions options;
    options.service.jobs = 2;
    TuningDaemon daemon(fastConfig(), options);

    // Two distinct grids (different seeds), several budgets each; all
    // futures must resolve with a valid result.
    std::vector<std::future<DaemonResponse>> futures;
    for (int round = 0; round < 4; ++round) {
        for (double budget : {1.1, 1.3, 1.5, 2.0}) {
            futures.push_back(
                daemon.submit(tinyRequest("alpha", budget)));
            futures.push_back(
                daemon.submit(tinyRequest("beta", budget)));
        }
    }
    std::vector<DaemonResponse> responses;
    for (std::future<DaemonResponse> &future : futures)
        responses.push_back(future.get());
    for (const DaemonResponse &response : responses) {
        ASSERT_TRUE(response.ok());
        ASSERT_NE(response.result.grid, nullptr);
    }
    // Identical (workload, budget) submissions must agree exactly.
    expectResultsBitEqual(responses.front().result,
                          responses[8].result);
    // Whether requests coalesced in a batch, joined an in-flight
    // build, or hit the cache, each distinct grid characterizes
    // exactly once — every response shares that one grid object.
    for (std::size_t i = 0; i < responses.size(); ++i) {
        const std::size_t twin = i % 2;  // alpha at 0, beta at 1
        EXPECT_EQ(responses[i].result.grid.get(),
                  responses[twin].result.grid.get());
    }

    const DaemonStats stats = daemon.stats();
    EXPECT_EQ(stats.admitted, futures.size());
    EXPECT_EQ(stats.completed, futures.size());
    EXPECT_EQ(stats.shedQueueFull, 0u);
    EXPECT_GE(stats.batches, 1u);
}

TEST(TuningDaemon, ShedsWhenTheQueueIsFull)
{
    DaemonOptions options;
    options.queueCapacity = 2;
    options.maxBatch = 1;
    TuningDaemon daemon(fastConfig(), options);

    // A tight submit loop outpaces the batcher (which fingerprints
    // every request it dispatches), so the two-deep queue must
    // overflow quickly; bound the attempts so the test cannot hang.
    std::vector<std::future<DaemonResponse>> futures;
    const svc::TuningRequest request = tinyRequest();
    bool shed_seen = false;
    for (int i = 0; i < 100'000 && !shed_seen; ++i) {
        futures.push_back(daemon.submit(request));
        shed_seen = daemon.stats().shedQueueFull > 0;
    }
    EXPECT_TRUE(shed_seen);

    daemon.drain();
    std::uint64_t ok = 0;
    std::uint64_t shed = 0;
    for (std::future<DaemonResponse> &future : futures) {
        const DaemonResponse response = future.get();
        if (response.ok()) {
            ++ok;
            ASSERT_NE(response.result.grid, nullptr);
        } else {
            EXPECT_EQ(response.shed, ShedReason::QueueFull);
            EXPECT_EQ(response.result.grid, nullptr);
            ++shed;
        }
    }
    const DaemonStats stats = daemon.stats();
    EXPECT_EQ(ok, stats.completed);
    EXPECT_EQ(shed, stats.shedQueueFull);
    EXPECT_EQ(ok + shed, futures.size());
}

TEST(TuningDaemon, ShedsWithDrainingAfterDrain)
{
    TuningDaemon daemon(fastConfig());
    std::future<DaemonResponse> admitted = daemon.submit(tinyRequest());
    daemon.drain();

    // The admitted request completed; the late one is shed, not hung.
    EXPECT_TRUE(admitted.get().ok());
    const DaemonResponse late = daemon.submit(tinyRequest()).get();
    EXPECT_FALSE(late.ok());
    EXPECT_EQ(late.shed, ShedReason::Draining);
    EXPECT_EQ(daemon.stats().shedDraining, 1u);
    EXPECT_STREQ(daemon::shedReasonName(late.shed), "draining");

    daemon.drain();  // idempotent
}

TEST(TuningDaemon, WarmRestartAnswersFromTheSnapshotStore)
{
    const std::string dir = "daemon_warm_store";
    fs::remove_all(dir);
    DaemonOptions options;
    options.storeDir = dir;

    svc::TuningResult cold;
    {
        TuningDaemon daemon(fastConfig(), options);
        EXPECT_EQ(daemon.stats().warmGrids, 0u);
        DaemonResponse response = daemon.submit(tinyRequest()).get();
        ASSERT_TRUE(response.ok());
        EXPECT_FALSE(response.result.cacheHit);
        EXPECT_FALSE(response.result.analysisCacheHit);
        cold = response.result;
        daemon.drain();
        EXPECT_EQ(daemon.store()->stats().gridStores, 1u);
        EXPECT_EQ(daemon.store()->stats().analysisStores, 1u);
    }

    TuningDaemon restarted(fastConfig(), options);
    const DaemonStats stats = restarted.stats();
    EXPECT_EQ(stats.warmGrids, 1u);
    EXPECT_EQ(stats.warmAnalyses, 1u);

    DaemonResponse warm = restarted.submit(tinyRequest()).get();
    ASSERT_TRUE(warm.ok());
    // Both stages hit: the caches were primed from disk, and the
    // snapshot round trip is bit-identical, so warm equals cold
    // exactly.
    EXPECT_TRUE(warm.result.cacheHit);
    EXPECT_TRUE(warm.result.analysisCacheHit);
    expectResultsBitEqual(warm.result, cold);
    fs::remove_all(dir);
}

TEST(TuningDaemon, RejectsZeroSizing)
{
    DaemonOptions zero_queue;
    zero_queue.queueCapacity = 0;
    EXPECT_THROW(TuningDaemon(fastConfig(), zero_queue), FatalError);
    DaemonOptions zero_batch;
    zero_batch.maxBatch = 0;
    EXPECT_THROW(TuningDaemon(fastConfig(), zero_batch), FatalError);
}

} // namespace
} // namespace mcdvfs
