/**
 * @file
 * Golden tests pinning the serialized trace formats under schema
 * "mcdvfs-trace-v1": the Chrome trace_event JSON exporter (consumed by
 * Perfetto / chrome://tracing) and the decision-journal JSONL.  A diff
 * here means external consumers break — bump the schema string when
 * the format must change.
 */

#include <gtest/gtest.h>

#include "obs/journal.hh"
#include "obs/trace.hh"

namespace mcdvfs
{
namespace obs
{
namespace
{

TEST(TraceGolden, EmptySnapshotChromeJson)
{
    const std::string expected = "{\n"
        "  \"displayTimeUnit\": \"ns\",\n"
        "  \"otherData\": {\"schema\": \"mcdvfs-trace-v1\", "
        "\"dropped_events\": 0, \"torn_reads\": 0},\n"
        "  \"traceEvents\": []\n"
        "}\n";
    EXPECT_EQ(toChromeJson(TraceSnapshot{}), expected);
}

TEST(TraceGolden, ChromeJsonPinnedByteForByte)
{
    // Explicit timestamps keep the document fully deterministic.
    TraceCollector collector;
    collector.enable(16);
    collector.record('X', "svc.grid_build", /*ts_ns=*/1000,
                     /*dur_ns=*/500, /*arg=*/7);
    collector.record('i', "runtime.tuning.retune", /*ts_ns=*/2500,
                     /*dur_ns=*/0, /*arg=*/3);

    const std::string expected = "{\n"
        "  \"displayTimeUnit\": \"ns\",\n"
        "  \"otherData\": {\"schema\": \"mcdvfs-trace-v1\", "
        "\"dropped_events\": 0, \"torn_reads\": 0},\n"
        "  \"traceEvents\": [\n"
        "    {\"name\": \"svc.grid_build\", \"cat\": \"mcdvfs\", "
        "\"ph\": \"X\", \"ts\": 1.000, \"dur\": 0.500, \"pid\": 1, "
        "\"tid\": 0, \"args\": {\"v\": 7}},\n"
        "    {\"name\": \"runtime.tuning.retune\", \"cat\": \"mcdvfs\", "
        "\"ph\": \"i\", \"ts\": 2.500, \"s\": \"t\", \"pid\": 1, "
        "\"tid\": 0, \"args\": {\"v\": 3}}\n"
        "  ]\n"
        "}\n";
    EXPECT_EQ(toChromeJson(collector.snapshot()), expected);
}

TEST(TraceGolden, ChromeJsonReportsDrops)
{
    TraceCollector collector;
    collector.enable(2);
    for (std::uint64_t i = 0; i < 5; ++i)
        collector.record('i', "e", i * 1000, 0, i);

    const std::string json = toChromeJson(collector.snapshot());
    EXPECT_NE(json.find("\"dropped_events\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"schema\": \"mcdvfs-trace-v1\""),
              std::string::npos);
}

TEST(JournalGolden, JsonlPinnedByteForByte)
{
    DecisionJournal journal;
    DecisionRecord record;
    record.workload = "phased";
    record.policy = "oracle";
    record.sample = 4;
    record.cpi = 1.25;
    record.mpki = 12.5;
    record.cpuMhz = 1890;
    record.memMhz = 800;
    record.inefficiency = 1.27;
    record.budget = 1.3;
    record.inCluster = true;
    record.region = 2;
    record.retuned = true;
    record.transition = false;
    record.overheadNs = 500000;
    record.overheadNj = 30000;
    journal.append(record);

    record.policy = "every-sample";
    record.sample = 5;
    record.inCluster = false;
    record.region = -1;
    record.retuned = false;
    record.transition = true;
    journal.append(record);

    const std::string expected =
        "{\"schema\": \"mcdvfs-trace-v1\", \"kind\": \"journal\", "
        "\"records\": 2}\n"
        "{\"kind\": \"sample\", \"workload\": \"phased\", "
        "\"policy\": \"oracle\", \"sample\": 4, \"cpi\": 1.25, "
        "\"mpki\": 12.5, \"cpu_mhz\": 1890, \"mem_mhz\": 800, "
        "\"inefficiency\": 1.27, \"budget\": 1.3, "
        "\"in_cluster\": true, \"region\": 2, \"retune\": true, "
        "\"transition\": false, \"overhead_ns\": 500000, "
        "\"overhead_nj\": 30000}\n"
        "{\"kind\": \"sample\", \"workload\": \"phased\", "
        "\"policy\": \"every-sample\", \"sample\": 5, \"cpi\": 1.25, "
        "\"mpki\": 12.5, \"cpu_mhz\": 1890, \"mem_mhz\": 800, "
        "\"inefficiency\": 1.27, \"budget\": 1.3, "
        "\"in_cluster\": false, \"region\": -1, \"retune\": false, "
        "\"transition\": true, \"overhead_ns\": 500000, "
        "\"overhead_nj\": 30000}\n";
    EXPECT_EQ(journal.toJsonl(), expected);
}

TEST(JournalGolden, EmptyJournalHeaderOnly)
{
    const DecisionJournal journal;
    EXPECT_EQ(journal.toJsonl(),
              "{\"schema\": \"mcdvfs-trace-v1\", \"kind\": \"journal\", "
              "\"records\": 0}\n");
}

TEST(TraceGolden, FlowStampedEventsPinnedByteForByte)
{
    // Events recorded with a request id gain Perfetto flow binding
    // (bind_id in hex + flow_in/flow_out) and a request_id arg; the
    // 0-flow layout is pinned unchanged above.
    TraceCollector collector;
    collector.enable(16);
    collector.record('X', "daemon.analysis", /*ts_ns=*/1000,
                     /*dur_ns=*/500, /*arg=*/7, /*flow=*/42);
    collector.record('i', "daemon.submit", /*ts_ns=*/2500,
                     /*dur_ns=*/0, /*arg=*/3, /*flow=*/42);

    const std::string expected = "{\n"
        "  \"displayTimeUnit\": \"ns\",\n"
        "  \"otherData\": {\"schema\": \"mcdvfs-trace-v1\", "
        "\"dropped_events\": 0, \"torn_reads\": 0},\n"
        "  \"traceEvents\": [\n"
        "    {\"name\": \"daemon.analysis\", \"cat\": \"mcdvfs\", "
        "\"ph\": \"X\", \"ts\": 1.000, \"dur\": 0.500, "
        "\"bind_id\": \"0x2a\", \"flow_in\": true, "
        "\"flow_out\": true, \"pid\": 1, \"tid\": 0, "
        "\"args\": {\"v\": 7, \"request_id\": 42}},\n"
        "    {\"name\": \"daemon.submit\", \"cat\": \"mcdvfs\", "
        "\"ph\": \"i\", \"ts\": 2.500, \"s\": \"t\", "
        "\"bind_id\": \"0x2a\", \"flow_in\": true, "
        "\"flow_out\": true, \"pid\": 1, \"tid\": 0, "
        "\"args\": {\"v\": 3, \"request_id\": 42}}\n"
        "  ]\n"
        "}\n";
    EXPECT_EQ(toChromeJson(collector.snapshot()), expected);
}

TEST(TraceGolden, SpanStampsAmbientRequestContextAsFlow)
{
    if (!kTracingEnabled)
        GTEST_SKIP() << "tracing disabled in this build";

    TraceCollector &global = TraceCollector::global();
    global.reset();
    global.enable(16);
    {
        TraceContext context;
        context.requestId = 7;
        ScopedTraceContext scope(context);
        TraceSpan span("golden.request_span", 1);
        traceInstant("golden.request_instant", 2);
    }
    traceInstant("golden.unscoped_instant", 3);
    global.disable();

    const TraceSnapshot snap = global.snapshot();
    ASSERT_EQ(snap.events.size(), 3u);
    // Record order: the instant lands before the span's end() record.
    EXPECT_EQ(snap.events[0].flowId, 7u);
    EXPECT_EQ(snap.events[1].flowId, 7u);
    EXPECT_EQ(snap.events[2].flowId, 0u);
    global.reset();
}

TEST(JournalGolden, GpuAndRequestFieldsPinnedBothWays)
{
    // With hasGpu/requestId set, the sample line gains gpu_mhz and
    // request_id in pinned positions; the header counts requests only
    // when request records exist.  The 2-domain layout without them
    // is pinned byte-for-byte above.
    DecisionJournal journal;
    DecisionRecord record;
    record.workload = "glrender";
    record.policy = "oracle";
    record.sample = 1;
    record.requestId = 9;
    record.cpi = 1.5;
    record.mpki = 3.25;
    record.cpuMhz = 1890;
    record.memMhz = 800;
    record.hasGpu = true;
    record.gpuMhz = 450;
    record.inefficiency = 1.1;
    record.budget = 1.3;
    record.inCluster = true;
    record.region = 0;
    record.retuned = false;
    record.transition = false;
    record.overheadNs = 500000;
    record.overheadNj = 30000;
    journal.append(record);

    RequestRecord request;
    request.requestId = 9;
    request.classId = 1234;
    request.workload = "glrender";
    request.budget = 1.3;
    request.threshold = 0.03;
    request.shed = false;
    request.cacheHit = true;
    request.analysisCacheHit = false;
    request.analysisResumed = true;
    request.queueWaitNs = 2000;
    request.requestNs = 150000;
    request.regions = 4;
    journal.appendRequest(request);

    const std::string expected =
        "{\"schema\": \"mcdvfs-trace-v1\", \"kind\": \"journal\", "
        "\"records\": 1, \"requests\": 1}\n"
        "{\"kind\": \"sample\", \"workload\": \"glrender\", "
        "\"policy\": \"oracle\", \"sample\": 1, \"request_id\": 9, "
        "\"cpi\": 1.5, \"mpki\": 3.25, \"cpu_mhz\": 1890, "
        "\"mem_mhz\": 800, \"gpu_mhz\": 450, "
        "\"inefficiency\": 1.1, \"budget\": 1.3, "
        "\"in_cluster\": true, \"region\": 0, \"retune\": false, "
        "\"transition\": false, \"overhead_ns\": 500000, "
        "\"overhead_nj\": 30000}\n"
        "{\"kind\": \"request\", \"request_id\": 9, "
        "\"class_id\": 1234, \"workload\": \"glrender\", "
        "\"budget\": 1.3, \"threshold\": 0.03, \"shed\": false, "
        "\"cache_hit\": true, \"analysis_cache_hit\": false, "
        "\"analysis_resumed\": true, \"queue_wait_ns\": 2000, "
        "\"request_ns\": 150000, \"regions\": 4}\n";
    EXPECT_EQ(journal.toJsonl(), expected);
}

} // namespace
} // namespace obs
} // namespace mcdvfs
