/**
 * @file
 * Property test for the unique-profile grid evaluation: grids built by
 * GridRunner's dedup path (repeated profiles evaluated once per unique
 * row, per-sample noise applied at scatter time) must be bit-identical
 * to the cell-at-a-time reference kernel across noise amplitudes,
 * two- and three-domain spaces, and serial vs pooled builds.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "exec/thread_pool.hh"
#include "sim/profile_cache.hh"
#include "sim/reference_kernel.hh"
#include "trace/workloads.hh"

namespace mcdvfs
{
namespace
{

/** Phase-keyed workload whose samples repeat a few distinct phases. */
WorkloadProfile
repeatingWorkload(std::size_t samples, std::size_t distinct, bool gpu)
{
    return WorkloadProfile(
        "dedup-prop", samples,
        [distinct, gpu](std::size_t s) {
            const std::size_t v = s % distinct;
            PhaseSpec spec;
            spec.name = "p" + std::to_string(v);
            spec.baseCpi = 0.8 + 0.05 * static_cast<double>(v);
            spec.hotFrac = 0.95 - 0.03 * static_cast<double>(v % 2);
            spec.warmFrac = 0.03;
            spec.coldSeqFrac = v % 2 ? 0.3 : 0.0;
            spec.mlp = 1.0 + 0.2 * static_cast<double>(v % 3);
            if (gpu) {
                spec.gpuKickFrac = 0.001 + 0.0005 * v;
                spec.gpuCyclesPerKick = 400.0;
                spec.gpuActivity = 0.5;
            }
            return spec;
        },
        11, /*jitter=*/0.0, WorkloadProfile::SeedMode::PerPhase);
}

/** Memoized characterization — the dedup path's natural input. */
std::vector<SampleProfile>
memoizedProfiles(const SystemConfig &config,
                 const WorkloadProfile &workload)
{
    ProfileCache cache(64);
    SampleSimulator simulator(config.sampler);
    simulator.setProfileCache(&cache);
    return simulator.characterize(workload);
}

void
requireBitIdentical(const MeasuredGrid &a, const MeasuredGrid &b,
                    const std::string &what)
{
    ASSERT_EQ(a.sampleCount(), b.sampleCount()) << what;
    ASSERT_EQ(a.settingCount(), b.settingCount()) << what;
    for (std::size_t s = 0; s < a.sampleCount(); ++s) {
        for (std::size_t k = 0; k < a.settingCount(); ++k) {
            ASSERT_EQ(a.secondsAt(s, k), b.secondsAt(s, k))
                << what << " sample " << s << " setting " << k;
            ASSERT_EQ(a.cpuEnergyAt(s, k), b.cpuEnergyAt(s, k))
                << what << " sample " << s << " setting " << k;
            ASSERT_EQ(a.memEnergyAt(s, k), b.memEnergyAt(s, k))
                << what << " sample " << s << " setting " << k;
            ASSERT_EQ(a.gpuEnergyAt(s, k), b.gpuEnergyAt(s, k))
                << what << " sample " << s << " setting " << k;
            ASSERT_EQ(a.busyFracAt(s, k), b.busyFracAt(s, k))
                << what << " sample " << s << " setting " << k;
            ASSERT_EQ(a.bwUtilAt(s, k), b.bwUtilAt(s, k))
                << what << " sample " << s << " setting " << k;
        }
    }
}

TEST(ProfileDedupProperty, MatchesReferenceAcrossNoiseSpacesAndPools)
{
    const double noise_amplitudes[] = {0.0, 0.002, 0.01};
    const struct
    {
        const char *name;
        bool gpu;
    } spaces[] = {{"coarse", false}, {"coarse3", true}};

    for (const double noise : noise_amplitudes) {
        for (const auto &shape : spaces) {
            SystemConfig config = SystemConfig::paperDefault();
            config.sampler.simInstructionsPerSample = 10'000;
            config.sampler.warmupInstructions = 20'000;
            config.sampler.profileWarmupInstructions = 20'000;
            config.measurementNoise = noise;
            const SettingsSpace space = shape.gpu
                                            ? SettingsSpace::coarse3()
                                            : SettingsSpace::coarse();
            const WorkloadProfile workload =
                repeatingWorkload(/*samples=*/12, /*distinct=*/3,
                                  shape.gpu);
            const std::vector<SampleProfile> profiles =
                memoizedProfiles(config, workload);
            const Count ips = workload.modeledInstructionsPerSample();
            const std::string what = std::string(shape.name) +
                                     " noise " + std::to_string(noise);

            const MeasuredGrid reference = referenceGridWithProfiles(
                config, workload.name(), profiles, space, ips);

            GridRunner runner(config);
            requireBitIdentical(
                runner.runWithProfiles(workload.name(), profiles, space,
                                       ips),
                reference, what + " serial");

            exec::ThreadPool pool(3);
            GridRunner pooled(config);
            pooled.setThreadPool(&pool);
            requireBitIdentical(
                pooled.runWithProfiles(workload.name(), profiles, space,
                                       ips),
                reference, what + " pooled");
        }
    }
}

TEST(ProfileDedupProperty, UniqueProfilesTakeTheSamePath)
{
    // All-distinct profiles (per-sample seeds) must also match the
    // reference — the dedup grouping degrades to the historical
    // per-sample loop when nothing repeats.
    SystemConfig config = SystemConfig::paperDefault();
    config.sampler.simInstructionsPerSample = 10'000;
    config.sampler.warmupInstructions = 20'000;
    const WorkloadProfile workload(
        "all-unique", 8,
        [](std::size_t s) {
            PhaseSpec spec;
            spec.name = "u" + std::to_string(s);
            spec.baseCpi = 0.7 + 0.02 * static_cast<double>(s);
            spec.hotFrac = 0.9;
            spec.warmFrac = 0.05;
            return spec;
        },
        5, /*jitter=*/0.0);

    SampleSimulator simulator(config.sampler);
    const std::vector<SampleProfile> profiles =
        simulator.characterize(workload);
    const Count ips = workload.modeledInstructionsPerSample();
    const SettingsSpace space = SettingsSpace::coarse();

    GridRunner runner(config);
    requireBitIdentical(
        runner.runWithProfiles(workload.name(), profiles, space, ips),
        referenceGridWithProfiles(config, workload.name(), profiles,
                                  space, ips),
        "all-unique serial");
}

TEST(ProfileDedupProperty, NoiseStaysPerSampleAfterDedup)
{
    // With noise on, two samples sharing one profile row must still
    // get *different* cells (noise is seeded per sample, applied at
    // scatter time) — dedup must not collapse the noise.
    SystemConfig config = SystemConfig::paperDefault();
    config.sampler.simInstructionsPerSample = 10'000;
    config.sampler.warmupInstructions = 20'000;
    config.sampler.profileWarmupInstructions = 20'000;
    config.measurementNoise = 0.002;
    const WorkloadProfile workload =
        repeatingWorkload(/*samples=*/6, /*distinct=*/1, /*gpu=*/false);
    const std::vector<SampleProfile> profiles =
        memoizedProfiles(config, workload);

    GridRunner runner(config);
    const MeasuredGrid grid = runner.runWithProfiles(
        workload.name(), profiles, SettingsSpace::coarse(),
        workload.modeledInstructionsPerSample());
    bool any_differ = false;
    for (std::size_t k = 0; k < grid.settingCount(); ++k) {
        if (grid.secondsAt(0, k) != grid.secondsAt(1, k))
            any_differ = true;
    }
    EXPECT_TRUE(any_differ)
        << "per-sample noise was lost in the dedup scatter";
}

TEST(ProfileDedupProperty, RebuildIsDeterministic)
{
    SystemConfig config = SystemConfig::paperDefault();
    config.sampler.simInstructionsPerSample = 10'000;
    config.sampler.warmupInstructions = 20'000;
    config.sampler.profileWarmupInstructions = 20'000;
    const WorkloadProfile workload =
        repeatingWorkload(/*samples=*/9, /*distinct=*/3, /*gpu=*/false);
    const std::vector<SampleProfile> profiles =
        memoizedProfiles(config, workload);
    const Count ips = workload.modeledInstructionsPerSample();

    GridRunner runner(config);
    const MeasuredGrid first = runner.runWithProfiles(
        workload.name(), profiles, SettingsSpace::coarse(), ips);
    requireBitIdentical(runner.runWithProfiles(workload.name(), profiles,
                                               SettingsSpace::coarse(),
                                               ips),
                        first, "rebuild");
}

} // namespace
} // namespace mcdvfs
