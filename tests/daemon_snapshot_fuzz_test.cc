/**
 * @file
 * Randomized robustness tests for the daemon's SnapshotStore.
 *
 * The store's contract is stricter than the grid loader's: a daemon
 * must survive any on-disk state, so every malformed snapshot —
 * truncated at any byte, or with any single byte corrupted — degrades
 * to a counted cache miss (nullptr + stats().loadErrors), never to an
 * exception escaping loadGrid(), and never to UB.  The sanitize script
 * runs this binary under ASan/UBSan so the "never UB" half is
 * machine-checked.
 */

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "daemon/snapshot_store.hh"
#include "sim/grid_io.hh"
#include "svc/characterization_service.hh"
#include "test_grid.hh"

namespace mcdvfs
{
namespace
{

namespace fs = std::filesystem;
using daemon::SnapshotStore;

std::string
freshDir(const std::string &name)
{
    const std::string dir = "snapfuzz_" + name;
    fs::remove_all(dir);
    return dir;
}

svc::GridKey
gridKey(std::uint64_t workload)
{
    svc::GridKey key;
    key.workload = workload;
    key.space = 11;
    key.config = 22;
    return key;
}

/** The single .snap file in @c dir. */
std::string
onlySnapshotPath(const std::string &dir)
{
    std::string found;
    for (const fs::directory_entry &entry : fs::directory_iterator(dir)) {
        EXPECT_TRUE(found.empty());
        found = entry.path().string();
    }
    EXPECT_FALSE(found.empty());
    return found;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void
fuzzStoredGrid(const MeasuredGrid &grid, const std::string &tag,
               std::uint64_t seed)
{
    const std::string dir = freshDir(tag);
    const svc::GridKey key = gridKey(1);
    {
        SnapshotStore store(dir);
        store.storeGrid(key, grid);
    }
    const std::string path = onlySnapshotPath(dir);
    const std::string pristine = readFile(path);
    ASSERT_GT(pristine.size(), 64u);

    SnapshotStore store(dir);
    std::uint64_t expected_errors = store.stats().loadErrors;

    const auto expectMiss = [&](const std::string &bytes,
                                const char *what) {
        writeFile(path, bytes);
        std::shared_ptr<const MeasuredGrid> loaded;
        // The store API is noexcept-in-practice: a bad file is a
        // counted miss, not an escaping exception.
        EXPECT_NO_THROW(loaded = store.loadGrid(key)) << what;
        EXPECT_EQ(loaded, nullptr) << what;
        ++expected_errors;
        EXPECT_EQ(store.stats().loadErrors, expected_errors) << what;
        // Bulk warm-restart loads must skip it the same way.
        EXPECT_TRUE(store.loadAllGrids().empty()) << what;
        ++expected_errors;
        EXPECT_EQ(store.stats().loadErrors, expected_errors) << what;
    };

    Rng rng(seed);

    // Truncation at every header byte and at sampled payload lengths.
    for (std::size_t len = 0; len < 64; ++len)
        expectMiss(pristine.substr(0, len), "header truncation");
    for (int i = 0; i < 128; ++i) {
        const std::size_t len = 64 + rng.uniformInt(pristine.size() - 64);
        expectMiss(pristine.substr(0, len), "payload truncation");
    }

    // Single-byte corruption at sampled offsets (container header,
    // embedded key, inner grid snapshot and payload all covered).
    for (int i = 0; i < 128; ++i) {
        std::string corrupt = pristine;
        const std::size_t pos = rng.uniformInt(corrupt.size());
        corrupt[pos] = static_cast<char>(
            corrupt[pos] ^
            static_cast<char>(1 + rng.uniformInt(255)));
        expectMiss(corrupt, "single-byte corruption");
    }

    // The pristine bytes still load bit-identically: every rejection
    // above was about the file, and the reader holds no residue.
    writeFile(path, pristine);
    const auto loaded = store.loadGrid(key);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(saveGridBinaryToString(*loaded),
              saveGridBinaryToString(grid));
    EXPECT_EQ(store.stats().loadErrors, expected_errors);
    fs::remove_all(dir);
}

TEST(SnapshotStoreFuzz, TwoDomainGridDegradesToCountedMisses)
{
    fuzzStoredGrid(test::phasedGrid(), "grid2", 0x57AB1);
}

TEST(SnapshotStoreFuzz, ThreeDomainGridDegradesToCountedMisses)
{
    GridRunner runner(test::fastSystemConfig());
    const MeasuredGrid grid =
        runner.run(test::steadyWorkload(), SettingsSpace::coarse3());
    fuzzStoredGrid(grid, "grid3", 0x57AB2);
}

TEST(SnapshotStoreFuzz, AnalysisSnapshotDegradesToCountedMisses)
{
    const std::string dir = freshDir("analysis");
    svc::AnalysisKey key;
    key.grid = 7;
    key.budget = 1.3;
    key.threshold = 0.03;

    svc::AnalysisResult analysis;
    {
        svc::CharacterizationService service(test::fastSystemConfig());
        const svc::TuningResult tuned = service.submit(
            svc::TuningRequest{test::phasedWorkload(),
                               SettingsSpace::coarse(), 1.3, 0.03});
        analysis.optimal = tuned.optimal;
        analysis.clusters = tuned.clusters;
        analysis.regions = tuned.regions;
    }
    {
        SnapshotStore store(dir);
        store.storeAnalysis(key, analysis);
    }
    const std::string path = onlySnapshotPath(dir);
    const std::string pristine = readFile(path);

    SnapshotStore store(dir);
    std::uint64_t expected_errors = 0;
    Rng rng(0x57AB3);
    for (int i = 0; i < 96; ++i) {
        std::string bytes = pristine;
        if (i % 2 == 0) {
            bytes = bytes.substr(0, rng.uniformInt(bytes.size()));
        } else {
            const std::size_t pos = rng.uniformInt(bytes.size());
            bytes[pos] = static_cast<char>(
                bytes[pos] ^
                static_cast<char>(1 + rng.uniformInt(255)));
        }
        writeFile(path, bytes);
        std::shared_ptr<const svc::AnalysisResult> loaded;
        EXPECT_NO_THROW(loaded = store.loadAnalysis(key));
        EXPECT_EQ(loaded, nullptr);
        ++expected_errors;
        EXPECT_EQ(store.stats().loadErrors, expected_errors);
    }

    writeFile(path, pristine);
    EXPECT_NE(store.loadAnalysis(key), nullptr);
    EXPECT_EQ(store.stats().loadErrors, expected_errors);
    fs::remove_all(dir);
}

} // namespace
} // namespace mcdvfs
