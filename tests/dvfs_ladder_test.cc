/**
 * @file
 * Unit tests for the frequency ladders.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "dvfs/frequency_ladder.hh"

namespace mcdvfs
{
namespace
{

TEST(FrequencyLadder, PaperCoarseLadders)
{
    // §III-C: CPU 100-1000 MHz, memory 200-800 MHz, 100 MHz steps.
    const FrequencyLadder cpu = FrequencyLadder::cpuCoarse();
    EXPECT_EQ(cpu.size(), 10u);
    EXPECT_DOUBLE_EQ(cpu.lowest(), megaHertz(100));
    EXPECT_DOUBLE_EQ(cpu.highest(), megaHertz(1000));

    const FrequencyLadder mem = FrequencyLadder::memCoarse();
    EXPECT_EQ(mem.size(), 7u);
    EXPECT_DOUBLE_EQ(mem.lowest(), megaHertz(200));
    EXPECT_DOUBLE_EQ(mem.highest(), megaHertz(800));
}

TEST(FrequencyLadder, PaperFineLaddersGive496Settings)
{
    // §III-C: 30 MHz CPU and 40 MHz memory steps, 496 settings total.
    const FrequencyLadder cpu = FrequencyLadder::cpuFine();
    const FrequencyLadder mem = FrequencyLadder::memFine();
    EXPECT_EQ(cpu.size(), 31u);
    EXPECT_EQ(mem.size(), 16u);
    EXPECT_EQ(cpu.size() * mem.size(), 496u);
    EXPECT_DOUBLE_EQ(cpu.highest(), megaHertz(1000));
    EXPECT_DOUBLE_EQ(mem.highest(), megaHertz(800));
}

TEST(FrequencyLadder, StepsAscending)
{
    const FrequencyLadder ladder = FrequencyLadder::cpuFine();
    for (std::size_t i = 1; i < ladder.size(); ++i)
        EXPECT_GT(ladder.at(i), ladder.at(i - 1));
}

TEST(FrequencyLadder, ClosestIndex)
{
    const FrequencyLadder ladder = FrequencyLadder::cpuCoarse();
    EXPECT_EQ(ladder.closestIndex(megaHertz(100)), 0u);
    EXPECT_EQ(ladder.closestIndex(megaHertz(1000)), 9u);
    EXPECT_EQ(ladder.closestIndex(megaHertz(540)), 4u);  // -> 500
    EXPECT_EQ(ladder.closestIndex(megaHertz(560)), 5u);  // -> 600
    EXPECT_EQ(ladder.closestIndex(megaHertz(5000)), 9u);
}

TEST(FrequencyLadder, ExplicitStepList)
{
    const FrequencyLadder ladder(
        std::vector<Hertz>{megaHertz(300), megaHertz(600)});
    EXPECT_EQ(ladder.size(), 2u);
    EXPECT_DOUBLE_EQ(ladder.at(1), megaHertz(600));
}

TEST(FrequencyLadder, Validation)
{
    EXPECT_THROW(FrequencyLadder(0.0, megaHertz(100), megaHertz(10)),
                 FatalError);
    EXPECT_THROW(
        FrequencyLadder(megaHertz(200), megaHertz(100), megaHertz(10)),
        FatalError);
    EXPECT_THROW(
        FrequencyLadder(megaHertz(100), megaHertz(200), 0.0),
        FatalError);
    EXPECT_THROW(FrequencyLadder(std::vector<Hertz>{}), FatalError);
    EXPECT_THROW(FrequencyLadder(std::vector<Hertz>{megaHertz(500),
                                                    megaHertz(100)}),
                 FatalError);
}

TEST(FrequencyLadder, SingleStepRange)
{
    const FrequencyLadder ladder(megaHertz(500), megaHertz(500),
                                 megaHertz(100));
    EXPECT_EQ(ladder.size(), 1u);
    EXPECT_DOUBLE_EQ(ladder.at(0), megaHertz(500));
}

} // namespace
} // namespace mcdvfs
