/**
 * @file
 * AnalysisCache tests: hit/miss/eviction accounting, LRU order, key
 * identity over the (grid, budget, threshold) triple, and the
 * characterization service serving repeated tuning requests from the
 * analysis cache.
 */

#include <gtest/gtest.h>

#include <memory>

#include "svc/analysis_cache.hh"
#include "svc/characterization_service.hh"
#include "test_grid.hh"

namespace mcdvfs
{
namespace
{

std::shared_ptr<const svc::AnalysisResult>
dummyResult(std::size_t samples)
{
    auto result = std::make_shared<svc::AnalysisResult>();
    result->optimal.resize(samples);
    return result;
}

svc::AnalysisKey
keyOf(std::uint64_t grid, double budget = 1.3, double threshold = 0.03)
{
    return svc::AnalysisKey{grid, budget, threshold};
}

TEST(AnalysisCache, MissThenHit)
{
    svc::AnalysisCache cache(4);
    EXPECT_EQ(cache.find(keyOf(1)), nullptr);
    cache.insert(keyOf(1), dummyResult(3));
    const auto found = cache.find(keyOf(1));
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->optimal.size(), 3u);

    const svc::AnalysisCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.evictions, 0u);
    EXPECT_EQ(stats.entries, 1u);
}

TEST(AnalysisCache, KeyCoversEveryComponent)
{
    svc::AnalysisCache cache(8);
    cache.insert(keyOf(1, 1.3, 0.03), dummyResult(1));
    EXPECT_EQ(cache.find(keyOf(2, 1.3, 0.03)), nullptr);  // other grid
    EXPECT_EQ(cache.find(keyOf(1, 1.6, 0.03)), nullptr);  // other budget
    EXPECT_EQ(cache.find(keyOf(1, 1.3, 0.05)), nullptr);  // other threshold
    EXPECT_NE(cache.find(keyOf(1, 1.3, 0.03)), nullptr);
}

TEST(AnalysisCache, EvictsLeastRecentlyUsed)
{
    // One shard so the LRU order is global and deterministic.
    svc::AnalysisCache cache(2, /*shards=*/1);
    cache.insert(keyOf(1), dummyResult(1));
    cache.insert(keyOf(2), dummyResult(2));
    // Touch key 1 so key 2 becomes the eviction victim.
    ASSERT_NE(cache.find(keyOf(1)), nullptr);
    cache.insert(keyOf(3), dummyResult(3));

    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.find(keyOf(2)), nullptr);  // evicted
    EXPECT_NE(cache.find(keyOf(1)), nullptr);  // survived the touch
    EXPECT_NE(cache.find(keyOf(3)), nullptr);
    EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(AnalysisCache, EvictionNeverInvalidatesHeldResults)
{
    svc::AnalysisCache cache(1, /*shards=*/1);
    cache.insert(keyOf(1), dummyResult(7));
    const auto held = cache.find(keyOf(1));
    ASSERT_NE(held, nullptr);
    cache.insert(keyOf(2), dummyResult(9));  // evicts key 1
    EXPECT_EQ(cache.find(keyOf(1)), nullptr);
    EXPECT_EQ(held->optimal.size(), 7u);  // still valid
}

TEST(AnalysisCache, ClearDropsEntriesKeepsCounters)
{
    svc::AnalysisCache cache(4);
    cache.insert(keyOf(1), dummyResult(1));
    ASSERT_NE(cache.find(keyOf(1)), nullptr);
    cache.clear();
    EXPECT_EQ(cache.stats().entries, 0u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.find(keyOf(1)), nullptr);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(AnalysisCache, InvalidSizingFatal)
{
    EXPECT_THROW(svc::AnalysisCache(0), FatalError);
    EXPECT_THROW(svc::AnalysisCache(4, 0), FatalError);
    svc::AnalysisCache cache(2, /*shards=*/16);
    EXPECT_LE(cache.shardCount(), 2u);
}

TEST(AnalysisService, RepeatedRequestHitsAnalysisCache)
{
    svc::ServiceOptions options;
    options.jobs = 2;
    svc::CharacterizationService service(test::fastSystemConfig(),
                                         options);
    svc::TuningRequest request{test::steadyWorkload(),
                               SettingsSpace::coarse(), 1.3, 0.03};

    const svc::TuningResult first = service.submit(request);
    EXPECT_FALSE(first.analysisCacheHit);
    const svc::TuningResult second = service.submit(request);
    EXPECT_TRUE(second.cacheHit);          // grid cache
    EXPECT_TRUE(second.analysisCacheHit);  // analysis cache

    // The cached analysis is the same analysis.
    ASSERT_EQ(second.clusters.size(), first.clusters.size());
    for (std::size_t s = 0; s < first.clusters.size(); ++s) {
        EXPECT_EQ(second.clusters[s].settings,
                  first.clusters[s].settings);
        EXPECT_EQ(second.optimal[s].settingIndex,
                  first.optimal[s].settingIndex);
    }
    ASSERT_EQ(second.regions.size(), first.regions.size());

    const svc::AnalysisCache::Stats stats = service.analysisStats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
}

TEST(AnalysisService, DifferentPointMissesAnalysisCache)
{
    svc::ServiceOptions options;
    options.jobs = 2;
    svc::CharacterizationService service(test::fastSystemConfig(),
                                         options);
    svc::TuningRequest request{test::steadyWorkload(),
                               SettingsSpace::coarse(), 1.3, 0.03};
    service.submit(request);

    request.threshold = 0.05;  // same grid, new analysis point
    const svc::TuningResult other = service.submit(request);
    EXPECT_TRUE(other.cacheHit);
    EXPECT_FALSE(other.analysisCacheHit);
    EXPECT_EQ(service.analysisStats().misses, 2u);
}

} // namespace
} // namespace mcdvfs
