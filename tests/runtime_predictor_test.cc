/**
 * @file
 * Unit tests for the Isci-style run-length stability predictor.
 */

#include <gtest/gtest.h>

#include "runtime/stability_predictor.hh"

namespace mcdvfs
{
namespace
{

TEST(StabilityPredictor, NoHistoryPredictsZero)
{
    StabilityPredictor predictor;
    EXPECT_EQ(predictor.predictRemainingStable(), 0u);
    predictor.observe(true);
    // Still no *completed* run.
    EXPECT_EQ(predictor.predictRemainingStable(), 0u);
}

TEST(StabilityPredictor, LearnsConstantRunLength)
{
    StabilityPredictor predictor;
    // Runs of exactly 6 stable samples, repeatedly.
    for (int rep = 0; rep < 5; ++rep) {
        for (int i = 0; i < 6; ++i)
            predictor.observe(true);
        predictor.observe(false);
    }
    EXPECT_NEAR(predictor.expectedRunLength(), 7.0, 1.0);
    // At the start of a fresh run most of it should be predicted.
    EXPECT_GE(predictor.predictRemainingStable(), 4u);
}

TEST(StabilityPredictor, PredictionShrinksAsRunAges)
{
    StabilityPredictor predictor;
    for (int rep = 0; rep < 5; ++rep) {
        for (int i = 0; i < 8; ++i)
            predictor.observe(true);
        predictor.observe(false);
    }
    const std::size_t fresh = predictor.predictRemainingStable();
    for (int i = 0; i < 5; ++i)
        predictor.observe(true);
    const std::size_t aged = predictor.predictRemainingStable();
    EXPECT_LT(aged, fresh);
}

TEST(StabilityPredictor, LowConfidenceOnErraticHistory)
{
    StabilityPredictor predictor;
    // Alternate very short and very long runs: high variance.
    for (int rep = 0; rep < 6; ++rep) {
        const int len = rep % 2 ? 1 : 15;
        for (int i = 0; i < len; ++i)
            predictor.observe(true);
        predictor.observe(false);
    }
    EXPECT_EQ(predictor.predictRemainingStable(), 0u);
}

TEST(StabilityPredictor, PredictionCapped)
{
    StabilityPredictorParams params;
    params.maxPrediction = 4;
    StabilityPredictor predictor(params);
    for (int rep = 0; rep < 5; ++rep) {
        for (int i = 0; i < 50; ++i)
            predictor.observe(true);
        predictor.observe(false);
    }
    EXPECT_LE(predictor.predictRemainingStable(), 4u);
}

TEST(StabilityPredictor, CountsRunsAndCurrentLength)
{
    StabilityPredictor predictor;
    predictor.observe(true);
    predictor.observe(true);
    EXPECT_EQ(predictor.currentRunLength(), 2u);
    EXPECT_EQ(predictor.completedRuns(), 0u);
    predictor.observe(false);
    EXPECT_EQ(predictor.currentRunLength(), 0u);
    EXPECT_EQ(predictor.completedRuns(), 1u);
}

TEST(StabilityPredictor, ImmediateChangeCountsAsLengthOneRun)
{
    StabilityPredictor predictor;
    predictor.observe(false);
    EXPECT_EQ(predictor.completedRuns(), 1u);
    EXPECT_NEAR(predictor.expectedRunLength(), 1.0, 1e-9);
}

} // namespace
} // namespace mcdvfs
