/**
 * @file
 * ProfileCache unit tests: LRU/shard mechanics and stats, phase
 * fingerprints, PerPhase seed sharing, and the canonical-
 * characterization determinism that makes memoized profiles safe to
 * share across workloads and build orders.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/profile_cache.hh"
#include "sim/sample_simulator.hh"
#include "trace/phase.hh"
#include "trace/workloads.hh"

namespace mcdvfs
{
namespace
{

PhaseSpec
cpuPhase(double base_cpi = 0.8)
{
    PhaseSpec spec;
    spec.name = "cpu";
    spec.baseCpi = base_cpi;
    spec.hotFrac = 0.97;
    spec.warmFrac = 0.02;
    return spec;
}

PhaseSpec
memPhase()
{
    PhaseSpec spec;
    spec.name = "mem";
    spec.baseCpi = 1.1;
    spec.hotFrac = 0.82;
    spec.warmFrac = 0.10;
    spec.coldSeqFrac = 0.25;
    spec.mlp = 1.4;
    return spec;
}

SampleProfile
profileStub(double base_cpi)
{
    SampleProfile profile;
    profile.baseCpi = base_cpi;
    return profile;
}

void
expectSameProfile(const SampleProfile &a, const SampleProfile &b)
{
    EXPECT_EQ(a.baseCpi, b.baseCpi);
    EXPECT_EQ(a.activity, b.activity);
    EXPECT_EQ(a.mlp, b.mlp);
    EXPECT_EQ(a.l1Mpki, b.l1Mpki);
    EXPECT_EQ(a.l2Mpki, b.l2Mpki);
    EXPECT_EQ(a.l2PerInstr, b.l2PerInstr);
    EXPECT_EQ(a.dramReadsPerInstr, b.dramReadsPerInstr);
    EXPECT_EQ(a.dramWritesPerInstr, b.dramWritesPerInstr);
    EXPECT_EQ(a.dramPrefetchPerInstr, b.dramPrefetchPerInstr);
    EXPECT_EQ(a.rowHitFrac, b.rowHitFrac);
    EXPECT_EQ(a.rowClosedFrac, b.rowClosedFrac);
    EXPECT_EQ(a.rowConflictFrac, b.rowConflictFrac);
}

TEST(ProfileCache, LruEvictsOldestWithinCapacity)
{
    ProfileCache cache(2, /*shards=*/1);
    const ProfileKey k1{1, 0, 0, 0};
    const ProfileKey k2{2, 0, 0, 0};
    const ProfileKey k3{3, 0, 0, 0};
    cache.insert(k1, profileStub(1.0));
    cache.insert(k2, profileStub(2.0));
    cache.insert(k3, profileStub(3.0));  // evicts k1

    EXPECT_EQ(cache.find(k1), nullptr);
    ASSERT_NE(cache.find(k2), nullptr);
    ASSERT_NE(cache.find(k3), nullptr);

    const ProfileCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.evictions, 1u);
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.hits, 2u);
    EXPECT_EQ(stats.misses, 1u);
}

TEST(ProfileCache, FindRefreshesLruPosition)
{
    ProfileCache cache(2, /*shards=*/1);
    const ProfileKey k1{1, 0, 0, 0};
    const ProfileKey k2{2, 0, 0, 0};
    const ProfileKey k3{3, 0, 0, 0};
    cache.insert(k1, profileStub(1.0));
    cache.insert(k2, profileStub(2.0));
    ASSERT_NE(cache.find(k1), nullptr);  // k2 is now the LRU entry
    cache.insert(k3, profileStub(3.0));

    EXPECT_NE(cache.find(k1), nullptr);
    EXPECT_EQ(cache.find(k2), nullptr);
    EXPECT_NE(cache.find(k3), nullptr);
}

TEST(ProfileCache, KeyDistinguishesEveryComponent)
{
    const ProfileKey base{10, 20, 30, 40};
    const ProfileKey by_phase{11, 20, 30, 40};
    const ProfileKey by_seed{10, 21, 30, 40};
    const ProfileKey by_instr{10, 20, 31, 40};
    const ProfileKey by_config{10, 20, 30, 41};
    EXPECT_NE(base.combined(), by_phase.combined());
    EXPECT_NE(base.combined(), by_seed.combined());
    EXPECT_NE(base.combined(), by_instr.combined());
    EXPECT_NE(base.combined(), by_config.combined());

    ProfileCache cache(8, /*shards=*/2);
    cache.insert(base, profileStub(1.0));
    EXPECT_EQ(cache.find(by_phase), nullptr);
    EXPECT_EQ(cache.find(by_seed), nullptr);
    EXPECT_NE(cache.find(base), nullptr);
}

TEST(ProfileCache, ClearDropsEntriesKeepsCounters)
{
    ProfileCache cache(4, /*shards=*/2);
    cache.insert(ProfileKey{1, 0, 0, 0}, profileStub(1.0));
    cache.insert(ProfileKey{2, 0, 0, 0}, profileStub(2.0));
    ASSERT_NE(cache.find(ProfileKey{1, 0, 0, 0}), nullptr);
    cache.clear();
    EXPECT_EQ(cache.find(ProfileKey{1, 0, 0, 0}), nullptr);
    const ProfileCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.entries, 0u);
    EXPECT_EQ(stats.hits, 1u);
}

TEST(PhaseFingerprint, SensitiveToEveryField)
{
    const PhaseSpec base = cpuPhase();
    EXPECT_EQ(base.fingerprint(), cpuPhase().fingerprint());

    PhaseSpec renamed = base;
    renamed.name = "cpu2";
    EXPECT_NE(base.fingerprint(), renamed.fingerprint());

    PhaseSpec retuned = base;
    retuned.baseCpi += 0.01;
    EXPECT_NE(base.fingerprint(), retuned.fingerprint());

    PhaseSpec regpu = base;
    regpu.gpuActivity += 0.05;
    EXPECT_NE(base.fingerprint(), regpu.fingerprint());

    EXPECT_NE(cpuPhase().fingerprint(), memPhase().fingerprint());
    EXPECT_NE(base.fingerprint(1), base.fingerprint(2));
}

TEST(SeedMode, PerPhaseSharesSeedsAcrossRepeatsAndWorkloads)
{
    const auto script = [](std::size_t s) {
        return s % 2 ? memPhase() : cpuPhase();
    };
    const WorkloadProfile a("a", 6, script, 1, /*jitter=*/0.0,
                            WorkloadProfile::SeedMode::PerPhase);
    const WorkloadProfile b("b", 6, script, 999, /*jitter=*/0.0,
                            WorkloadProfile::SeedMode::PerPhase);

    // Repeats of one phase share a seed within and across workloads,
    // regardless of the workload seed; distinct phases do not.
    EXPECT_EQ(a.traceSeedFor(0), a.traceSeedFor(2));
    EXPECT_EQ(a.traceSeedFor(1), a.traceSeedFor(3));
    EXPECT_NE(a.traceSeedFor(0), a.traceSeedFor(1));
    EXPECT_EQ(a.traceSeedFor(0), b.traceSeedFor(0));
    EXPECT_EQ(a.traceSeedFor(1), b.traceSeedFor(5));
}

TEST(SeedMode, PerSampleStaysTheHistoricalDefault)
{
    const auto script = [](std::size_t s) {
        return s % 2 ? memPhase() : cpuPhase();
    };
    const WorkloadProfile legacy("w", 4, script, 7, /*jitter=*/0.0);
    const WorkloadProfile explicit_mode(
        "w", 4, script, 7, /*jitter=*/0.0,
        WorkloadProfile::SeedMode::PerSample);
    for (std::size_t s = 0; s < 4; ++s)
        EXPECT_EQ(legacy.traceSeedFor(s),
                  explicit_mode.traceSeedFor(s));
    // Per-sample seeds are all distinct even for repeated phases.
    EXPECT_NE(legacy.traceSeedFor(0), legacy.traceSeedFor(2));
}

TEST(SeedMode, JitterKeepsPerPhaseSamplesDistinct)
{
    const auto script = [](std::size_t) { return cpuPhase(); };
    const WorkloadProfile jittered("w", 4, script, 7, /*jitter=*/0.05,
                                   WorkloadProfile::SeedMode::PerPhase);
    // Jitter perturbs each sample's phase content, so the post-jitter
    // fingerprints (and with them the trace seeds) diverge.
    EXPECT_NE(jittered.traceSeedFor(0), jittered.traceSeedFor(1));
}

TEST(MemoizedCharacterization, HitsCountAndProfilesMatch)
{
    SampleSimulatorConfig config;
    config.simInstructionsPerSample = 10'000;
    config.warmupInstructions = 20'000;
    config.profileWarmupInstructions = 20'000;

    const auto script = [](std::size_t s) {
        return s % 2 ? memPhase() : cpuPhase();
    };
    const WorkloadProfile workload(
        "w", 8, script, 3, /*jitter=*/0.0,
        WorkloadProfile::SeedMode::PerPhase);

    ProfileCache cache(32);
    SampleSimulator sim(config);
    sim.setProfileCache(&cache);
    const std::vector<SampleProfile> first = sim.characterize(workload);
    EXPECT_EQ(sim.lastCharacterizeStats().cacheMisses, 2u);
    EXPECT_EQ(sim.lastCharacterizeStats().cacheHits, 6u);

    const std::vector<SampleProfile> second = sim.characterize(workload);
    EXPECT_EQ(sim.lastCharacterizeStats().cacheMisses, 0u);
    EXPECT_EQ(sim.lastCharacterizeStats().cacheHits, 8u);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t s = 0; s < first.size(); ++s)
        expectSameProfile(first[s], second[s]);

    // Repeated phases memoize to byte-identical profiles.
    expectSameProfile(first[0], first[2]);
    expectSameProfile(first[1], first[3]);
}

TEST(MemoizedCharacterization, DeterministicAcrossBuildOrder)
{
    // Canonical characterization is a pure function of the key: two
    // services characterizing shared phases in opposite workload
    // orders must produce byte-identical profiles.
    SampleSimulatorConfig config;
    config.simInstructionsPerSample = 10'000;
    config.warmupInstructions = 20'000;
    config.profileWarmupInstructions = 20'000;

    const auto script_a = [](std::size_t s) {
        return s % 2 ? memPhase() : cpuPhase();
    };
    const auto script_b = [](std::size_t s) {
        return s % 2 ? cpuPhase() : memPhase();  // same phases, swapped
    };
    const WorkloadProfile a("a", 4, script_a, 1, 0.0,
                            WorkloadProfile::SeedMode::PerPhase);
    const WorkloadProfile b("b", 4, script_b, 2, 0.0,
                            WorkloadProfile::SeedMode::PerPhase);

    ProfileCache cache_ab(32);
    SampleSimulator sim_ab(config);
    sim_ab.setProfileCache(&cache_ab);
    const std::vector<SampleProfile> a_first = sim_ab.characterize(a);
    sim_ab.characterize(b);

    ProfileCache cache_ba(32);
    SampleSimulator sim_ba(config);
    sim_ba.setProfileCache(&cache_ba);
    sim_ba.characterize(b);
    const std::vector<SampleProfile> a_second = sim_ba.characterize(a);

    ASSERT_EQ(a_first.size(), a_second.size());
    for (std::size_t s = 0; s < a_first.size(); ++s)
        expectSameProfile(a_first[s], a_second[s]);
    // The second pass hit the cache for every sample (both phases were
    // already characterized through workload b).
    EXPECT_EQ(sim_ba.lastCharacterizeStats().cacheMisses, 0u);
}

TEST(MemoizedCharacterization, DetachedModeIsUntouched)
{
    // Without a cache the historical warm-state pass runs; two
    // simulators over the same workload agree with each other (the
    // golden grids depend on this staying byte-stable).
    SampleSimulatorConfig config;
    config.simInstructionsPerSample = 10'000;
    config.warmupInstructions = 20'000;

    const auto script = [](std::size_t s) {
        return s % 2 ? memPhase() : cpuPhase();
    };
    const WorkloadProfile workload("w", 4, script, 3, 0.0);

    SampleSimulator sim1(config);
    SampleSimulator sim2(config);
    const std::vector<SampleProfile> p1 = sim1.characterize(workload);
    const std::vector<SampleProfile> p2 = sim2.characterize(workload);
    ASSERT_EQ(p1.size(), p2.size());
    for (std::size_t s = 0; s < p1.size(); ++s)
        expectSameProfile(p1[s], p2[s]);
    EXPECT_EQ(sim1.lastCharacterizeStats().cacheHits, 0u);
    EXPECT_EQ(sim1.lastCharacterizeStats().cacheMisses, 0u);
}

TEST(ProfileFingerprint, ConfigChangesChangeTheKey)
{
    SampleSimulatorConfig a;
    SampleSimulatorConfig b = a;
    EXPECT_EQ(a.profileFingerprint(), b.profileFingerprint());

    b.profileWarmupInstructions *= 2;
    EXPECT_NE(a.profileFingerprint(), b.profileFingerprint());

    SampleSimulatorConfig c;
    c.hierarchy.nextLinePrefetch = !c.hierarchy.nextLinePrefetch;
    EXPECT_NE(a.profileFingerprint(), c.profileFingerprint());

    SampleSimulatorConfig d;
    d.simInstructionsPerSample += 1;
    // The instruction count travels in the key itself, not the config
    // fingerprint.
    EXPECT_EQ(a.profileFingerprint(), d.profileFingerprint());
}

} // namespace
} // namespace mcdvfs
