/**
 * @file
 * Unit tests for the CoScale-style baseline.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

#include "baselines/coscale.hh"
#include "test_grid.hh"

namespace mcdvfs
{
namespace
{

TEST(CoScale, NegativeSlackThrows)
{
    EXPECT_THROW(CoScaleSearch(test::phasedGrid(), -0.1), FatalError);
}

TEST(CoScale, ConstraintHonoredEverySample)
{
    const MeasuredGrid &grid = test::phasedGrid();
    const double slack = 0.10;
    CoScaleSearch coscale(grid, slack);
    for (const CoScaleResult &result :
         {coscale.runFromMax(), coscale.runWarmStart()}) {
        EXPECT_LE(result.worstSlowdownPct, slack * 100.0 + 1e-6);
        const std::size_t max_idx =
            grid.space().indexOf(grid.space().maxSetting());
        for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
            ASSERT_LE(
                grid.cell(s, result.settingPerSample[s]).seconds,
                grid.cell(s, max_idx).seconds * (1.0 + slack) + 1e-15);
        }
    }
}

TEST(CoScale, ZeroSlackPinsMaxSettings)
{
    const MeasuredGrid &grid = test::phasedGrid();
    CoScaleSearch coscale(grid, 0.0);
    const CoScaleResult result = coscale.runFromMax();
    const std::size_t max_idx =
        grid.space().indexOf(grid.space().maxSetting());
    for (const std::size_t k : result.settingPerSample) {
        // Only settings exactly as fast as max qualify; max itself
        // always does.
        ASSERT_LE(grid.cell(0, k).seconds,
                  grid.cell(0, max_idx).seconds * (1.0 + 1e-12));
    }
}

TEST(CoScale, SavesEnergyVersusMaxSettings)
{
    const MeasuredGrid &grid = test::phasedGrid();
    CoScaleSearch coscale(grid, 0.10);
    const CoScaleResult result = coscale.runFromMax();
    const std::size_t max_idx =
        grid.space().indexOf(grid.space().maxSetting());
    EXPECT_LE(result.energy, grid.totalEnergy(max_idx) + 1e-12);
}

TEST(CoScale, WarmStartEvaluatesFewerCandidates)
{
    // §VI-A: restarting the search from the maximum settings every
    // interval is wasteful versus warm-starting.
    CoScaleSearch coscale(test::phasedGrid(), 0.10);
    EXPECT_LT(coscale.runWarmStart().settingsEvaluated,
              coscale.runFromMax().settingsEvaluated);
}

TEST(CoScale, ResultsCoverAllSamples)
{
    const MeasuredGrid &grid = test::phasedGrid();
    CoScaleSearch coscale(grid, 0.05);
    const CoScaleResult result = coscale.runWarmStart();
    EXPECT_EQ(result.settingPerSample.size(), grid.sampleCount());
    EXPECT_GT(result.time, 0.0);
    EXPECT_GT(result.energy, 0.0);
    EXPECT_GE(result.achievedInefficiency, 1.0);
}

TEST(CoScale, LooserSlackSavesMoreEnergy)
{
    CoScaleSearch tight(test::phasedGrid(), 0.02);
    CoScaleSearch loose(test::phasedGrid(), 0.20);
    EXPECT_LE(loose.runFromMax().energy,
              tight.runFromMax().energy + 1e-12);
}

} // namespace
} // namespace mcdvfs
