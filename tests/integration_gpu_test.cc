/**
 * @file
 * End-to-end tests for three-domain (CPU x mem x GPU) spaces: the
 * 560-setting coarse3 cross product — past the inline SettingMask
 * tier — characterized through the service and the daemon, with the
 * cluster/region chain pinned bit-identical to the scalar reference
 * analysis, and the two-domain goldens untouched alongside.
 */

#include <cstdint>
#include <cstring>
#include <filesystem>

#include <gtest/gtest.h>

#include "core/reference_analysis.hh"
#include "daemon/tuning_daemon.hh"
#include "sim/grid_io.hh"
#include "svc/characterization_service.hh"
#include "test_grid.hh"

namespace mcdvfs
{
namespace
{

namespace fs = std::filesystem;

/** The GPU render workload over the 560-setting space, built once. */
const MeasuredGrid &
renderGrid()
{
    static const MeasuredGrid grid = [] {
        GridRunner runner(test::fastSystemConfig());
        return runner.run(makeGlrender(), SettingsSpace::coarse3());
    }();
    return grid;
}

std::uint64_t
bitsOf(double value)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

TEST(ThreeDomain, GridCarriesAMeaningfulGpuColumn)
{
    const MeasuredGrid &grid = renderGrid();
    ASSERT_TRUE(grid.space().hasGpu());
    ASSERT_EQ(grid.space().size(), 560u);
    ASSERT_GT(grid.space().size(), SettingMask::kCapacity);

    // Every cell of a GPU workload burns GPU energy, and the column
    // responds to the GPU frequency: at fixed CPU/mem, the fastest
    // GPU step differs from the slowest (shorter busy time, different
    // idle window).
    const SettingsSpace &space = grid.space();
    const std::size_t gpu_steps = space.gpuLadder().size();
    for (std::size_t s = 0; s < grid.sampleCount(); s += 7) {
        for (std::size_t k = 0; k < space.size(); k += 13)
            EXPECT_GT(grid.cell(s, k).gpuEnergy, 0.0);
        const double slow = grid.cell(s, 0).gpuEnergy;
        const double fast = grid.cell(s, gpu_steps - 1).gpuEnergy;
        EXPECT_NE(bitsOf(slow), bitsOf(fast)) << "sample " << s;
    }
}

TEST(ThreeDomain, ServiceMatchesReferenceAnalysisBitForBit)
{
    // The full service pipeline over the 560-setting space, pinned to
    // the scalar reference chain (core/reference_analysis) — the same
    // oracle the two-domain goldens use.
    svc::CharacterizationService service(test::fastSystemConfig());
    const svc::TuningResult result = service.submit(svc::TuningRequest{
        makeGlrender(), SettingsSpace::coarse3(), 1.3, 0.03});
    ASSERT_NE(result.grid, nullptr);
    ASSERT_TRUE(result.grid->space().hasGpu());

    InefficiencyAnalysis analysis(*result.grid);
    OptimalSettingsFinder finder(analysis);
    const std::vector<PerformanceCluster> reference =
        referenceClusters(finder, 1.3, 0.03);
    ASSERT_EQ(result.clusters.size(), reference.size());
    for (std::size_t s = 0; s < reference.size(); ++s) {
        const PerformanceCluster &got = result.clusters[s];
        const PerformanceCluster &want = reference[s];
        ASSERT_EQ(got.optimal.settingIndex, want.optimal.settingIndex);
        EXPECT_EQ(bitsOf(got.optimal.setting.gpu),
                  bitsOf(want.optimal.setting.gpu));
        EXPECT_EQ(bitsOf(got.optimal.speedup),
                  bitsOf(want.optimal.speedup));
        EXPECT_EQ(bitsOf(got.optimal.inefficiency),
                  bitsOf(want.optimal.inefficiency));
        ASSERT_EQ(got.settings, want.settings) << "sample " << s;
    }

    const std::vector<StableRegion> want_regions =
        referenceStableRegions(result.grid->space(), reference);
    ASSERT_EQ(result.regions.size(), want_regions.size());
    for (std::size_t i = 0; i < want_regions.size(); ++i) {
        EXPECT_EQ(result.regions[i].first, want_regions[i].first);
        EXPECT_EQ(result.regions[i].last, want_regions[i].last);
        EXPECT_EQ(result.regions[i].availableSettings,
                  want_regions[i].availableSettings);
        EXPECT_EQ(result.regions[i].chosenSettingIndex,
                  want_regions[i].chosenSettingIndex);
    }

    // Every reported optimum is internally consistent: its index
    // resolves (through the three-domain flat indexing) to exactly
    // the setting it carries, GPU coordinate included.
    const SettingsSpace &space = result.grid->space();
    for (const OptimalChoice &choice : result.optimal) {
        const FrequencySetting at = space.at(choice.settingIndex);
        EXPECT_EQ(bitsOf(at.cpu), bitsOf(choice.setting.cpu));
        EXPECT_EQ(bitsOf(at.mem), bitsOf(choice.setting.mem));
        EXPECT_EQ(bitsOf(at.gpu), bitsOf(choice.setting.gpu));
        EXPECT_EQ(space.indexOf(choice.setting), choice.settingIndex);
    }
}

TEST(ThreeDomain, DaemonRoundTripsThreeDomainSnapshots)
{
    const std::string dir = "daemon_gpu_store";
    fs::remove_all(dir);

    const svc::TuningRequest request{
        makeGlrender(), SettingsSpace::coarse3(), 1.3, 0.03};
    std::string first_bytes;
    {
        daemon::TuningDaemon::Options options;
        options.storeDir = dir;
        daemon::TuningDaemon daemon(test::fastSystemConfig(), options);
        daemon::DaemonResponse response =
            daemon.submit(request).get();
        ASSERT_TRUE(response.ok());
        ASSERT_NE(response.result.grid, nullptr);
        EXPECT_FALSE(response.result.cacheHit);
        first_bytes = saveGridBinaryToString(*response.result.grid);
        daemon.drain();
    }
    {
        // A restarted daemon warm-loads the persisted v2 snapshot and
        // serves the same request from cache, bit-identically.
        daemon::TuningDaemon::Options options;
        options.storeDir = dir;
        daemon::TuningDaemon daemon(test::fastSystemConfig(), options);
        daemon::DaemonResponse response =
            daemon.submit(request).get();
        ASSERT_TRUE(response.ok());
        EXPECT_TRUE(response.result.cacheHit);
        EXPECT_EQ(saveGridBinaryToString(*response.result.grid),
                  first_bytes);
        daemon.drain();
    }
    fs::remove_all(dir);
}

TEST(ThreeDomain, TwoDomainGridsStillSerializeAsV1)
{
    // The GPU extension must not disturb two-domain artifacts: their
    // binary snapshots keep the v1 version word (byte 8) and their
    // text header stays "mcdvfs-grid v1".
    const std::string bytes =
        saveGridBinaryToString(test::phasedGrid());
    EXPECT_EQ(bytes[8], 1);
    EXPECT_EQ(saveGridToString(test::phasedGrid()).substr(0, 14),
              "mcdvfs-grid v1");

    const std::string gpu_bytes = saveGridBinaryToString(renderGrid());
    EXPECT_EQ(gpu_bytes[8], 2);
    EXPECT_EQ(saveGridToString(renderGrid()).substr(0, 14),
              "mcdvfs-grid v2");
}

} // namespace
} // namespace mcdvfs
