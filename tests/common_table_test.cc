/**
 * @file
 * Unit tests for the table/CSV renderer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "common/table.hh"

namespace mcdvfs
{
namespace
{

TEST(Table, RendersHeadersAndRows)
{
    Table table({"name", "value"});
    table.addRow({"alpha", "1"});
    table.addRow({"b", "22"});
    std::ostringstream os;
    table.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(Table, TitlePrinted)
{
    Table table({"x"});
    table.setTitle("my title");
    std::ostringstream os;
    table.print(os);
    EXPECT_NE(os.str().find("# my title"), std::string::npos);
}

TEST(Table, ColumnsAligned)
{
    Table table({"a", "b"});
    table.addRow({"xxxxxx", "1"});
    table.addRow({"y", "2"});
    std::ostringstream os;
    table.print(os);
    std::istringstream is(os.str());
    std::string header;
    std::string rule;
    std::string row1;
    std::string row2;
    std::getline(is, header);
    std::getline(is, rule);
    std::getline(is, row1);
    std::getline(is, row2);
    // The second column starts at the same offset in both rows.
    EXPECT_EQ(row1.find('1'), row2.find('2'));
}

TEST(Table, RowArityMismatchThrows)
{
    Table table({"a", "b"});
    EXPECT_THROW(table.addRow({"only one"}), FatalError);
    EXPECT_THROW(table.addRow({"1", "2", "3"}), FatalError);
}

TEST(Table, CsvFormat)
{
    Table table({"a", "b"});
    table.addRow({"1", "2"});
    std::ostringstream os;
    table.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(3.14159, 0), "3");
    EXPECT_EQ(Table::num(static_cast<long long>(-42)), "-42");
}

TEST(Table, RowCountTracked)
{
    Table table({"a"});
    EXPECT_EQ(table.rows(), 0u);
    table.addRow({"x"});
    table.addRow({"y"});
    EXPECT_EQ(table.rows(), 2u);
}

} // namespace
} // namespace mcdvfs
