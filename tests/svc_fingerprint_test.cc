/**
 * @file
 * Fingerprint regression tests.
 *
 * The cache keys on content hashes of (workload, space, config);
 * any collision serves the wrong grid.  The historical space
 * fingerprint hashed the flattened cross product, which collides for
 * domain splits sharing the same frequency sequence — in particular a
 * three-domain space and a two-domain space sharing a CPU x mem
 * prefix.  These tests pin the domain-list hashing that fixes it, and
 * that the GPU additions (phase channel, power params) are covered.
 */

#include <gtest/gtest.h>

#include "svc/fingerprint.hh"
#include "test_grid.hh"

namespace mcdvfs
{
namespace
{

FrequencyLadder
ladder(std::initializer_list<double> mhz)
{
    std::vector<Hertz> steps;
    for (const double m : mhz)
        steps.push_back(megaHertz(m));
    return FrequencyLadder(std::move(steps));
}

TEST(Fingerprint, ThreeDomainSpaceNeverCollidesWithItsPrefix)
{
    // The regression: a CPU x mem space and a CPU x mem x GPU space
    // sharing the CPU and memory ladders must key differently — even
    // with a one-step GPU ladder, whose cross product repeats the
    // two-domain settings with one extra coordinate.
    const SettingsSpace two(FrequencyLadder::cpuCoarse(),
                            FrequencyLadder::memCoarse());
    const SettingsSpace three(FrequencyLadder::cpuCoarse(),
                              FrequencyLadder::memCoarse(),
                              ladder({300}));
    EXPECT_NE(svc::fingerprintSpace(two), svc::fingerprintSpace(three));

    // Equal spaces built independently still key identically.
    const SettingsSpace three_again(FrequencyLadder::cpuCoarse(),
                                    FrequencyLadder::memCoarse(),
                                    ladder({300}));
    EXPECT_EQ(svc::fingerprintSpace(three),
              svc::fingerprintSpace(three_again));
}

TEST(Fingerprint, SpaceHashCoversTheDomainSplit)
{
    // Same flattened frequency sequence, different ladder boundary: a
    // flattened-cross-product hash cannot tell these apart.
    const SettingsSpace a(ladder({100, 200}), ladder({300}));
    const SettingsSpace b(ladder({100}), ladder({200, 300}));
    EXPECT_NE(svc::fingerprintSpace(a), svc::fingerprintSpace(b));
}

TEST(Fingerprint, SpaceHashCoversTheGpuLadder)
{
    const SettingsSpace a(FrequencyLadder::cpuCoarse(),
                          FrequencyLadder::memCoarse(),
                          FrequencyLadder::gpuCoarse());
    const SettingsSpace b(FrequencyLadder::cpuCoarse(),
                          FrequencyLadder::memCoarse(),
                          FrequencyLadder::gpuFine());
    EXPECT_NE(svc::fingerprintSpace(a), svc::fingerprintSpace(b));
}

TEST(Fingerprint, WorkloadHashCoversTheGpuChannel)
{
    const auto workload_with = [](double kick_frac) {
        PhaseSpec spec;
        spec.name = "render";
        spec.hotFrac = 0.9;
        spec.warmFrac = 0.05;
        spec.gpuKickFrac = kick_frac;
        spec.gpuCyclesPerKick = 4000.0;
        spec.gpuActivity = 0.7;
        return WorkloadProfile(
            "render", 4, [spec](std::size_t) { return spec; }, 7,
            /*jitter=*/0.0);
    };
    EXPECT_EQ(svc::fingerprintWorkload(workload_with(0.001)),
              svc::fingerprintWorkload(workload_with(0.001)));
    EXPECT_NE(svc::fingerprintWorkload(workload_with(0.001)),
              svc::fingerprintWorkload(workload_with(0.002)));
}

TEST(Fingerprint, ConfigHashCoversTheGpuPowerParams)
{
    const SystemConfig base = test::fastSystemConfig();
    SystemConfig hotter = base;
    hotter.gpuPower.peakDynamic += 0.05;
    EXPECT_EQ(svc::fingerprintConfig(base),
              svc::fingerprintConfig(test::fastSystemConfig()));
    EXPECT_NE(svc::fingerprintConfig(base),
              svc::fingerprintConfig(hotter));
}

} // namespace
} // namespace mcdvfs
