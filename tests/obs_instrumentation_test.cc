/**
 * @file
 * End-to-end instrumentation tests: every counter, gauge and
 * histogram the library registers is exercised here through the real
 * code path that owns it, asserting before/after deltas against the
 * process-wide registry.  The catalog lives in docs/OBSERVABILITY.md;
 * a metric nobody can move here is a metric that should not exist.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <condition_variable>
#include <filesystem>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "daemon/tuning_daemon.hh"
#include "exec/thread_pool.hh"
#include "obs/metrics.hh"
#include "repro/analyses.hh"
#include "runtime/budget_arbiter.hh"
#include "runtime/tuning_loop.hh"
#include "sched/scheduler.hh"
#include "sim/reference_kernel.hh"
#include "svc/characterization_service.hh"
#include "svc/grid_cache.hh"
#include "test_grid.hh"

namespace mcdvfs
{
namespace
{

#define REQUIRE_METRICS_ON()                                           \
    if (!obs::kMetricsEnabled)                                         \
    GTEST_SKIP() << "metrics disabled in this build"

/** Reads of the global registry by name (registration idempotent). */
std::uint64_t
counterValue(const char *name)
{
    return obs::MetricsRegistry::global().counter(name).value();
}

std::int64_t
gaugeValue(const char *name)
{
    return obs::MetricsRegistry::global().gauge(name).value();
}

std::uint64_t
histogramCount(const char *name)
{
    return obs::MetricsRegistry::global()
        .histogram(name, obs::MetricsRegistry::latencyBucketsNs())
        .count();
}

TEST(ObsInstrumentation, ThreadPoolSubmitAndWorkerGauges)
{
    REQUIRE_METRICS_ON();
    const std::uint64_t submitted0 =
        counterValue("exec.pool.tasks_submitted");
    const std::uint64_t executed0 =
        counterValue("exec.pool.tasks_executed");
    const std::uint64_t waits0 = histogramCount("exec.pool.queue_wait_ns");
    const std::uint64_t runs0 = histogramCount("exec.pool.task_run_ns");
    const std::int64_t workers0 = gaugeValue("exec.pool.workers");

    {
        exec::ThreadPool pool(2);
        EXPECT_EQ(gaugeValue("exec.pool.workers"), workers0 + 2);
        std::vector<std::future<int>> futures;
        for (int i = 0; i < 4; ++i)
            futures.push_back(pool.submit([i] { return i; }));
        for (int i = 0; i < 4; ++i)
            EXPECT_EQ(futures[i].get(), i);
    }

    EXPECT_EQ(counterValue("exec.pool.tasks_submitted"), submitted0 + 4);
    EXPECT_EQ(counterValue("exec.pool.tasks_executed"), executed0 + 4);
    EXPECT_EQ(histogramCount("exec.pool.queue_wait_ns"), waits0 + 4);
    EXPECT_EQ(histogramCount("exec.pool.task_run_ns"), runs0 + 4);
    EXPECT_EQ(gaugeValue("exec.pool.workers"), workers0);
    EXPECT_EQ(gaugeValue("exec.pool.active_workers"), 0);
}

TEST(ObsInstrumentation, ThreadPoolInlineSubmitCounts)
{
    REQUIRE_METRICS_ON();
    const std::uint64_t submitted0 =
        counterValue("exec.pool.tasks_submitted");
    const std::uint64_t executed0 =
        counterValue("exec.pool.tasks_executed");

    exec::ThreadPool pool(0);
    EXPECT_EQ(pool.submit([] { return 9; }).get(), 9);

    EXPECT_EQ(counterValue("exec.pool.tasks_submitted"), submitted0 + 1);
    EXPECT_EQ(counterValue("exec.pool.tasks_executed"), executed0 + 1);
}

TEST(ObsInstrumentation, ThreadPoolParallelForLoopAndChunkCounts)
{
    REQUIRE_METRICS_ON();
    const std::uint64_t loops0 =
        counterValue("exec.pool.parallel_for_loops");
    const std::uint64_t chunks0 =
        counterValue("exec.pool.parallel_for_chunks");

    exec::ThreadPool pool(2);
    std::atomic<std::size_t> touched{0};
    pool.parallelFor(0, 10, [&](std::size_t) { ++touched; },
                     /*grain=*/3);
    EXPECT_EQ(touched.load(), 10u);

    EXPECT_EQ(counterValue("exec.pool.parallel_for_loops"), loops0 + 1);
    // ceil(10 / 3) = 4 chunks.
    EXPECT_EQ(counterValue("exec.pool.parallel_for_chunks"),
              chunks0 + 4);
}

TEST(ObsInstrumentation, GridCacheCountersAndEntriesGauge)
{
    REQUIRE_METRICS_ON();
    const std::uint64_t hits0 = counterValue("svc.cache.hits");
    const std::uint64_t misses0 = counterValue("svc.cache.misses");
    const std::uint64_t evictions0 = counterValue("svc.cache.evictions");
    const std::uint64_t inserts0 = counterValue("svc.cache.inserts");
    const std::int64_t entries0 = gaugeValue("svc.cache.entries");

    auto grid = std::make_shared<const MeasuredGrid>(
        "g", SettingsSpace::coarse(), 4, 10'000'000);
    {
        svc::GridCache cache(1, /*shards=*/1);
        EXPECT_EQ(cache.find(svc::GridKey{1, 1, 1}), nullptr);  // miss
        cache.insert(svc::GridKey{1, 1, 1}, grid);
        EXPECT_NE(cache.find(svc::GridKey{1, 1, 1}), nullptr);  // hit
        cache.insert(svc::GridKey{2, 1, 1}, grid);              // evicts
        EXPECT_EQ(gaugeValue("svc.cache.entries"), entries0 + 1);
    }

    EXPECT_EQ(counterValue("svc.cache.hits"), hits0 + 1);
    EXPECT_EQ(counterValue("svc.cache.misses"), misses0 + 1);
    EXPECT_EQ(counterValue("svc.cache.evictions"), evictions0 + 1);
    EXPECT_EQ(counterValue("svc.cache.inserts"), inserts0 + 2);
    // The destructor returns resident entries to the gauge.
    EXPECT_EQ(gaugeValue("svc.cache.entries"), entries0);
}

TEST(ObsInstrumentation, ServiceRequestBatchAndBuildCounters)
{
    REQUIRE_METRICS_ON();
    const std::uint64_t requests0 = counterValue("svc.service.requests");
    const std::uint64_t batches0 = counterValue("svc.service.batches");
    const std::uint64_t builds0 =
        counterValue("svc.service.grid_builds");
    const std::uint64_t hits0 = counterValue("svc.cache.hits");
    const std::uint64_t submits0 =
        histogramCount("svc.service.submit_ns");
    const std::uint64_t buildNs0 = histogramCount("svc.service.build_ns");

    svc::CharacterizationService service(test::fastSystemConfig());
    const svc::TuningRequest request{test::steadyWorkload(),
                                     SettingsSpace::coarse(), 1.3, 0.03};
    service.submit(request);
    service.submit(request);  // same fingerprint: cache hit
    service.submitBatch({request, request});

    EXPECT_EQ(counterValue("svc.service.requests"), requests0 + 4);
    EXPECT_EQ(counterValue("svc.service.batches"), batches0 + 1);
    EXPECT_EQ(counterValue("svc.service.grid_builds"), builds0 + 1);
    EXPECT_EQ(counterValue("svc.cache.hits"), hits0 + 2);
    EXPECT_EQ(histogramCount("svc.service.submit_ns"), submits0 + 4);
    EXPECT_EQ(histogramCount("svc.service.build_ns"), buildNs0 + 1);
    EXPECT_EQ(gaugeValue("svc.service.inflight_builds"), 0);
}

TEST(ObsInstrumentation, ServiceCoalescesConcurrentIdenticalBuilds)
{
    REQUIRE_METRICS_ON();
    const std::uint64_t builds0 =
        counterValue("svc.service.grid_builds");
    const std::uint64_t hits0 = counterValue("svc.cache.hits");
    const std::uint64_t coalesced0 =
        counterValue("svc.service.coalesced_waits");

    svc::CharacterizationService service(test::fastSystemConfig(),
                                         svc::ServiceOptions{4, 32, 8});
    constexpr std::size_t kThreads = 8;
    std::mutex mutex;
    std::condition_variable gate;
    std::size_t arrived = 0;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            {
                // Barrier: maximize the chance of concurrent lookups.
                std::unique_lock<std::mutex> lock(mutex);
                if (++arrived == kThreads)
                    gate.notify_all();
                else
                    gate.wait(lock,
                              [&] { return arrived == kThreads; });
            }
            EXPECT_NE(service.grid(test::steadyWorkload(),
                                   SettingsSpace::coarse()),
                      nullptr);
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    // Exactly one build; the other seven either hit the cache (build
    // already inserted) or coalesced onto the in-flight future.
    EXPECT_EQ(counterValue("svc.service.grid_builds"), builds0 + 1);
    EXPECT_EQ((counterValue("svc.cache.hits") - hits0) +
                  (counterValue("svc.service.coalesced_waits") -
                   coalesced0),
              kThreads - 1);
    EXPECT_EQ(gaugeValue("svc.service.inflight_builds"), 0);
}

TEST(ObsInstrumentation, GridRunnerBuildAndCellCounters)
{
    REQUIRE_METRICS_ON();
    const std::uint64_t builds0 = counterValue("sim.grid.builds");
    const std::uint64_t samples0 =
        counterValue("sim.grid.samples_evaluated");
    const std::uint64_t cells0 =
        counterValue("sim.grid.cells_evaluated");
    const std::uint64_t iters0 =
        counterValue("sim.grid.fixed_point_iterations");
    const std::uint64_t buildNs0 = histogramCount("sim.grid.build_ns");

    GridRunner runner(test::fastSystemConfig());
    const SettingsSpace space = SettingsSpace::coarse();
    const MeasuredGrid grid =
        runner.run(test::phasedWorkload(), space);

    EXPECT_EQ(counterValue("sim.grid.builds"), builds0 + 1);
    EXPECT_EQ(counterValue("sim.grid.samples_evaluated"),
              samples0 + grid.sampleCount());
    EXPECT_EQ(counterValue("sim.grid.cells_evaluated"),
              cells0 + grid.sampleCount() * space.size());
    // The phased workload misses in DRAM and the default timing model
    // iterates the bandwidth fixed point, so iterations accumulate.
    EXPECT_GT(counterValue("sim.grid.fixed_point_iterations"), iters0);
    EXPECT_EQ(histogramCount("sim.grid.build_ns"), buildNs0 + 1);
}

TEST(ObsInstrumentation, ReferenceKernelCounters)
{
    REQUIRE_METRICS_ON();
    const std::uint64_t builds0 = counterValue("sim.reference.builds");
    const std::uint64_t cells0 =
        counterValue("sim.reference.cells_evaluated");
    const std::uint64_t buildNs0 =
        histogramCount("sim.reference.build_ns");

    const SystemConfig config = test::fastSystemConfig();
    const WorkloadProfile workload = test::steadyWorkload();
    SampleSimulator simulator(config.sampler);
    const std::vector<SampleProfile> profiles =
        simulator.characterize(workload);
    const SettingsSpace space = SettingsSpace::coarse();
    const MeasuredGrid grid = referenceGridWithProfiles(
        config, workload.name(), profiles, space,
        workload.modeledInstructionsPerSample());

    EXPECT_EQ(counterValue("sim.reference.builds"), builds0 + 1);
    EXPECT_EQ(counterValue("sim.reference.cells_evaluated"),
              cells0 + grid.sampleCount() * space.size());
    EXPECT_EQ(histogramCount("sim.reference.build_ns"), buildNs0 + 1);
}

TEST(ObsInstrumentation, TuningLoopOverheadLedger)
{
    REQUIRE_METRICS_ON();
    const std::uint64_t evals0 =
        counterValue("runtime.tuning.evaluations");
    const std::uint64_t events0 = counterValue("runtime.tuning.events");
    const std::uint64_t transitions0 =
        counterValue("runtime.tuning.transitions");
    const std::uint64_t timeNs0 =
        counterValue("runtime.tuning.overhead_time_ns");
    const std::uint64_t energyNj0 =
        counterValue("runtime.tuning.overhead_energy_nj");
    const std::uint64_t violations0 =
        counterValue("runtime.tuning.budget_violations");

    GridAnalyses analyses(test::phasedGrid());
    const TuningCostModel cost{TuningCostParams{}};
    const TuningLoop loop(analyses.clusters, analyses.regions, cost);
    const TuningLoopResult result = loop.runEverySample(1.3, 0.03);

    EXPECT_EQ(counterValue("runtime.tuning.evaluations"), evals0 + 1);
    EXPECT_EQ(counterValue("runtime.tuning.events"),
              events0 + result.tuningEvents);
    EXPECT_EQ(counterValue("runtime.tuning.transitions"),
              transitions0 + result.transitions);
    // The ledger accumulates the charged overhead (500 us + 30 uJ per
    // event by default) in integer nano-units.
    ASSERT_GT(result.tuningEvents, 0u);
    EXPECT_NEAR(static_cast<double>(
                    counterValue("runtime.tuning.overhead_time_ns") -
                    timeNs0),
                (result.timeWithOverhead - result.time) * 1e9, 100.0);
    EXPECT_NEAR(static_cast<double>(
                    counterValue("runtime.tuning.overhead_energy_nj") -
                    energyNj0),
                (result.energyWithOverhead - result.energy) * 1e9,
                100.0);
    const auto violations = static_cast<std::uint64_t>(std::llround(
        result.budgetViolationFrac *
        static_cast<double>(test::phasedGrid().sampleCount())));
    EXPECT_EQ(counterValue("runtime.tuning.budget_violations"),
              violations0 + violations);
}

TEST(ObsInstrumentation, BudgetArbiterDecisionCounters)
{
    REQUIRE_METRICS_ON();
    const std::uint64_t decisions0 =
        counterValue("runtime.arbiter.decisions");
    const std::uint64_t kept0 = counterValue("runtime.arbiter.kept");
    const std::uint64_t retunes0 =
        counterValue("runtime.arbiter.retunes");
    const std::uint64_t capped0 = counterValue("runtime.arbiter.capped");
    const std::uint64_t switches0 =
        counterValue("runtime.arbiter.row_switches");

    const MeasuredGrid &grid = test::phasedGrid();
    GridAnalyses analyses(grid);
    const FrequencySetting min = grid.space().minSetting();
    runtime::CapRow tight;
    tight.budget = 1.0;
    tight.cpuPriority = {min.cpu, min.mem, megaHertz(900)};
    tight.gpuPriority = tight.cpuPriority;
    runtime::CapRow roomy;
    roomy.budget = 2.0;
    roomy.cpuPriority = {megaHertz(1000), megaHertz(800),
                         megaHertz(900)};
    roomy.gpuPriority = roomy.cpuPriority;
    runtime::BudgetArbiter arbiter(analyses.clusters, 1.3, 0.03,
                                   {tight, roomy});

    // Half the run at the default (unconstrained) budget on the roomy
    // row, then the budget drops below the first row: one row switch,
    // and the tight caps — min setting only — force capped decisions.
    FrequencySetting current = arbiter.decide(nullptr);
    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        if (s == grid.sampleCount() / 2)
            arbiter.setSystemBudget(0.5);
        SampleObservation obs;
        obs.sampleIndex = s;
        obs.setting = current;
        current = arbiter.decide(&obs);
    }

    EXPECT_EQ(counterValue("runtime.arbiter.decisions") - decisions0,
              arbiter.decisions());
    EXPECT_EQ(counterValue("runtime.arbiter.kept") - kept0,
              arbiter.keptSetting());
    EXPECT_EQ(counterValue("runtime.arbiter.retunes") - retunes0,
              arbiter.retuned());
    EXPECT_EQ(counterValue("runtime.arbiter.capped") - capped0,
              arbiter.capped());
    EXPECT_EQ(counterValue("runtime.arbiter.row_switches") - switches0,
              1u);
    EXPECT_EQ(arbiter.decisions(), grid.sampleCount() + 1);
    EXPECT_GT(arbiter.capped(), 0u);
}

TEST(ObsInstrumentation, DaemonPipelineAndSnapshotCounters)
{
    REQUIRE_METRICS_ON();
    const std::uint64_t admitted0 = counterValue("daemon.admitted");
    const std::uint64_t completed0 = counterValue("daemon.completed");
    const std::uint64_t batches0 = counterValue("daemon.batches");
    const std::uint64_t drainShed0 =
        counterValue("daemon.shed_draining");
    const std::uint64_t queueWaits0 =
        histogramCount("daemon.queue_wait_ns");
    const std::uint64_t gridStages0 =
        histogramCount("daemon.grid_stage_ns");
    const std::uint64_t analysisStages0 =
        histogramCount("daemon.analysis_stage_ns");
    const std::uint64_t requests0 = histogramCount("daemon.request_ns");
    const std::uint64_t gridStores0 =
        counterValue("daemon.snapshot.grid_stores");
    const std::uint64_t gridLoads0 =
        counterValue("daemon.snapshot.grid_loads");
    const std::uint64_t analysisStores0 =
        counterValue("daemon.snapshot.analysis_stores");
    const std::uint64_t analysisLoads0 =
        counterValue("daemon.snapshot.analysis_loads");
    const std::uint64_t loadErrors0 =
        counterValue("daemon.snapshot.load_errors");
    const std::uint64_t storeNs0 =
        histogramCount("daemon.snapshot.store_ns");
    const std::uint64_t loadNs0 =
        histogramCount("daemon.snapshot.load_ns");

    const std::string dir = "obs_daemon_store";
    std::filesystem::remove_all(dir);
    daemon::DaemonOptions options;
    options.service.jobs = 2;
    options.storeDir = dir;
    const svc::TuningRequest request{test::steadyWorkload(),
                                     SettingsSpace::coarse(), 1.3, 0.03};
    {
        daemon::TuningDaemon server(test::fastSystemConfig(), options);
        std::future<daemon::DaemonResponse> first =
            server.submit(request);
        std::future<daemon::DaemonResponse> second =
            server.submit(request);
        EXPECT_TRUE(first.get().ok());
        EXPECT_TRUE(second.get().ok());
        server.drain();
        EXPECT_EQ(server.submit(request).get().shed,
                  daemon::ShedReason::Draining);
    }

    EXPECT_EQ(counterValue("daemon.admitted"), admitted0 + 2);
    EXPECT_EQ(counterValue("daemon.completed"), completed0 + 2);
    EXPECT_EQ(counterValue("daemon.shed_draining"), drainShed0 + 1);
    // The two identical requests land in one or two batches/groups
    // depending on batcher timing; either way both complete.
    EXPECT_GE(counterValue("daemon.batches"), batches0 + 1);
    EXPECT_GE(histogramCount("daemon.grid_stage_ns"), gridStages0 + 1);
    EXPECT_EQ(histogramCount("daemon.queue_wait_ns"), queueWaits0 + 2);
    EXPECT_EQ(histogramCount("daemon.analysis_stage_ns"),
              analysisStages0 + 2);
    EXPECT_EQ(histogramCount("daemon.request_ns"), requests0 + 2);
    EXPECT_EQ(gaugeValue("daemon.queue_depth"), 0);
    // One grid fingerprint, one analysis key: each persisted once.
    EXPECT_EQ(counterValue("daemon.snapshot.grid_stores"),
              gridStores0 + 1);
    EXPECT_EQ(counterValue("daemon.snapshot.analysis_stores"),
              analysisStores0 + 1);
    EXPECT_EQ(histogramCount("daemon.snapshot.store_ns"), storeNs0 + 2);

    // A warm restart over the same store loads both snapshots back.
    {
        daemon::TuningDaemon restarted(test::fastSystemConfig(),
                                       options);
        const daemon::DaemonStats stats = restarted.stats();
        EXPECT_EQ(stats.warmGrids, 1u);
        EXPECT_EQ(stats.warmAnalyses, 1u);
    }
    EXPECT_EQ(counterValue("daemon.snapshot.grid_loads"),
              gridLoads0 + 1);
    EXPECT_EQ(counterValue("daemon.snapshot.analysis_loads"),
              analysisLoads0 + 1);
    EXPECT_EQ(counterValue("daemon.snapshot.load_errors"), loadErrors0);
    EXPECT_EQ(histogramCount("daemon.snapshot.load_ns"), loadNs0 + 2);
    std::filesystem::remove_all(dir);
}

TEST(ObsInstrumentation, SchedulerTransitionLedger)
{
    REQUIRE_METRICS_ON();
    const std::uint64_t runs0 = counterValue("sched.runs");
    const std::uint64_t samples0 =
        counterValue("sched.samples_executed");
    const std::uint64_t switches0 =
        counterValue("sched.context_switches");
    const std::uint64_t transitions0 =
        counterValue("sched.frequency_transitions");
    const std::uint64_t timeNs0 =
        counterValue("sched.transition_time_ns");
    const std::uint64_t energyNj0 =
        counterValue("sched.transition_energy_nj");

    AppTask a;
    a.name = "phased";
    a.grid = &test::phasedGrid();
    AppTask b;
    b.name = "steady";
    b.grid = &test::steadyGrid();
    const BudgetScheduler scheduler;
    const ScheduleResult result =
        scheduler.run({a, b}, SchedPolicy::RoundRobin);

    EXPECT_EQ(counterValue("sched.runs"), runs0 + 1);
    EXPECT_EQ(counterValue("sched.samples_executed"),
              samples0 + test::phasedGrid().sampleCount() +
                  test::steadyGrid().sampleCount());
    EXPECT_EQ(counterValue("sched.context_switches"),
              switches0 + result.contextSwitches);
    EXPECT_EQ(counterValue("sched.frequency_transitions"),
              transitions0 + result.frequencyTransitions);
    ASSERT_GT(result.frequencyTransitions, 0u);
    EXPECT_NEAR(static_cast<double>(
                    counterValue("sched.transition_time_ns") - timeNs0),
                result.transitionLatency * 1e9, 100.0);
    EXPECT_GT(counterValue("sched.transition_energy_nj"), energyNj0);
}

TEST(ObsInstrumentation, LabeledCounterFamiliesSumToUnlabeledTotals)
{
    REQUIRE_METRICS_ON();
    // Each test runs in its own process, so the global registry holds
    // only what this body produced.  Drive the daemon across two
    // workloads plus a draining shed, then check the dimensional
    // invariant: every `base{...}` family sums exactly to its
    // unlabeled base counter (sites bump both).
    daemon::DaemonOptions options;
    options.service.jobs = 2;
    const svc::TuningRequest phased{test::phasedWorkload(),
                                    SettingsSpace::coarse(), 1.3, 0.03};
    const svc::TuningRequest steady{test::steadyWorkload(),
                                    SettingsSpace::coarse(), 1.1, 0.05};
    {
        daemon::TuningDaemon server(test::fastSystemConfig(), options);
        std::future<daemon::DaemonResponse> first =
            server.submit(phased);
        std::future<daemon::DaemonResponse> second =
            server.submit(steady);
        EXPECT_TRUE(first.get().ok());
        EXPECT_TRUE(second.get().ok());
        server.drain();
        EXPECT_EQ(server.submit(phased).get().shed,
                  daemon::ShedReason::Draining);
    }
    // The daemon drives grids/analyses directly; the front-door
    // service path owns svc.service.requests{wl}.
    {
        svc::CharacterizationService service(test::fastSystemConfig());
        service.submit(phased);
        service.submit(steady);
    }

    const obs::MetricsSnapshot snap =
        obs::MetricsRegistry::global().snapshot();
    std::map<std::string, std::uint64_t> base;
    std::map<std::string, std::uint64_t> labeledSum;
    for (const auto &[name, value] : snap.counters) {
        const std::size_t brace = name.find('{');
        if (brace == std::string::npos) {
            base[name] = value;
        } else if (name.find("overflow=true") == std::string::npos) {
            labeledSum[name.substr(0, brace)] += value;
        }
    }
    std::size_t families = 0;
    for (const auto &[family, sum] : labeledSum) {
        const auto it = base.find(family);
        ASSERT_NE(it, base.end()) << family << " has no base counter";
        EXPECT_EQ(it->second, sum) << family;
        ++families;
    }
    // The run above must have produced the three labeled families the
    // daemon path owns (arbiter capping only fires with a GPU domain).
    EXPECT_GE(families, 3u);
    EXPECT_EQ(labeledSum.count("daemon.completed"), 1u);
    EXPECT_EQ(labeledSum.count("daemon.shed"), 1u);
    EXPECT_EQ(labeledSum.count("svc.service.requests"), 1u);
}

} // namespace
} // namespace mcdvfs
