/**
 * @file
 * Unit and property tests for the mechanistic timing model.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

#include "sim/timing_model.hh"

namespace mcdvfs
{
namespace
{

SampleProfile
cpuOnlyProfile()
{
    SampleProfile profile;
    profile.baseCpi = 1.2;
    profile.l2PerInstr = 0.0;
    profile.dramReadsPerInstr = 0.0;
    profile.dramWritesPerInstr = 0.0;
    return profile;
}

SampleProfile
memoryProfile()
{
    SampleProfile profile;
    profile.baseCpi = 1.0;
    profile.l2PerInstr = 0.02;
    profile.dramReadsPerInstr = 0.01;
    profile.dramWritesPerInstr = 0.004;
    profile.rowHitFrac = 0.5;
    profile.rowClosedFrac = 0.1;
    profile.rowConflictFrac = 0.4;
    profile.mlp = 2.0;
    return profile;
}

constexpr Count kInstr = 10'000'000;

TEST(TimingModel, CpuOnlyIsExactlyCoreCycles)
{
    const TimingModel model;
    const SampleTiming timing = model.evaluate(
        cpuOnlyProfile(), {megaHertz(500), megaHertz(400)}, kInstr);
    EXPECT_NEAR(timing.total, kInstr * 1.2 / megaHertz(500), 1e-12);
    EXPECT_EQ(timing.stall, 0.0);
    EXPECT_EQ(timing.bwUtil, 0.0);
    EXPECT_DOUBLE_EQ(timing.busy, timing.total);
}

TEST(TimingModel, CpuOnlyInverseInCpuFrequency)
{
    const TimingModel model;
    const Seconds at250 = model.evaluate(
        cpuOnlyProfile(), {megaHertz(250), megaHertz(400)}, kInstr)
                              .total;
    const Seconds at1000 = model.evaluate(
        cpuOnlyProfile(), {megaHertz(1000), megaHertz(400)}, kInstr)
                               .total;
    EXPECT_NEAR(at250 / at1000, 4.0, 1e-9);
}

TEST(TimingModel, CpuOnlyIgnoresMemoryFrequency)
{
    const TimingModel model;
    const Seconds lo = model.evaluate(
        cpuOnlyProfile(), {megaHertz(500), megaHertz(200)}, kInstr)
                           .total;
    const Seconds hi = model.evaluate(
        cpuOnlyProfile(), {megaHertz(500), megaHertz(800)}, kInstr)
                           .total;
    EXPECT_DOUBLE_EQ(lo, hi);
}

TEST(TimingModel, L2LatencyPartiallyExposed)
{
    const TimingModel model;
    SampleProfile profile = cpuOnlyProfile();
    profile.l2PerInstr = 0.05;
    const SampleTiming timing = model.evaluate(
        profile, {megaHertz(500), megaHertz(400)}, kInstr);
    const double expected_cpi =
        1.2 + 0.05 * model.params().l2LatencyCycles *
                  model.params().l2StallExposure;
    EXPECT_NEAR(timing.total, kInstr * expected_cpi / megaHertz(500),
                1e-12);
}

TEST(TimingModel, MemoryTimeDecreasesWithMemFrequency)
{
    const TimingModel model;
    const Seconds at200 = model.evaluate(
        memoryProfile(), {megaHertz(800), megaHertz(200)}, kInstr)
                              .total;
    const Seconds at800 = model.evaluate(
        memoryProfile(), {megaHertz(800), megaHertz(800)}, kInstr)
                              .total;
    EXPECT_GT(at200, at800 * 1.05);
}

TEST(TimingModel, BusyPlusStallEqualsTotal)
{
    const TimingModel model;
    const SampleTiming timing = model.evaluate(
        memoryProfile(), {megaHertz(600), megaHertz(400)}, kInstr);
    EXPECT_NEAR(timing.busy + timing.stall, timing.total, 1e-12);
    EXPECT_GT(timing.stall, 0.0);
}

TEST(TimingModel, BandwidthFloorHolds)
{
    // An extremely memory-hungry profile cannot beat the usable
    // bandwidth no matter the CPU frequency.
    const TimingModel model;
    SampleProfile profile = memoryProfile();
    profile.dramReadsPerInstr = 0.05;
    profile.dramWritesPerInstr = 0.02;
    profile.mlp = 8.0;
    const FrequencySetting setting{megaHertz(1000), megaHertz(200)};
    const SampleTiming timing =
        model.evaluate(profile, setting, kInstr);
    const double bytes = static_cast<double>(kInstr) * 0.07 * 64.0;
    const double usable = model.params().dramTiming.usableBandwidth(
        setting.mem, model.params().dramConfig);
    EXPECT_GE(timing.total, bytes / usable * 0.999);
    EXPECT_LE(timing.bwUtil, 1.0);
}

TEST(TimingModel, HigherMlpHidesLatency)
{
    const TimingModel model;
    SampleProfile low = memoryProfile();
    low.mlp = 1.0;
    SampleProfile high = memoryProfile();
    high.mlp = 4.0;
    const FrequencySetting setting{megaHertz(800), megaHertz(600)};
    EXPECT_GT(model.evaluate(low, setting, kInstr).total,
              model.evaluate(high, setting, kInstr).total);
}

TEST(TimingModel, CpiHelper)
{
    SampleTiming timing;
    timing.total = 0.02;
    EXPECT_NEAR(timing.cpi(kInstr, megaHertz(1000)), 2.0, 1e-12);
    EXPECT_EQ(timing.cpi(0, megaHertz(1000)), 0.0);
}

TEST(TimingModel, InvalidInputs)
{
    const TimingModel model;
    EXPECT_THROW(
        model.evaluate(memoryProfile(), {0.0, megaHertz(400)}, kInstr),
        FatalError);
    EXPECT_THROW(
        model.evaluate(memoryProfile(), {megaHertz(400), -1.0}, kInstr),
        FatalError);

    TimingParams params;
    params.bwUtilizationCap = 1.5;
    EXPECT_THROW(TimingModel{params}, FatalError);
    params = TimingParams{};
    params.fixedPointIterations = 0;
    EXPECT_THROW(TimingModel{params}, FatalError);
}

/**
 * Property (the grid's key invariant): execution time is monotone
 * non-increasing in both frequencies, across profiles.
 */
class TimingMonotonicity
    : public ::testing::TestWithParam<double /*mlp*/>
{
};

TEST_P(TimingMonotonicity, NonIncreasingInBothFrequencies)
{
    const TimingModel model;
    SampleProfile profile = memoryProfile();
    profile.mlp = GetParam();

    const SettingsSpace space = SettingsSpace::coarse();
    const std::size_t mem_steps = space.memLadder().size();
    for (std::size_t c = 0; c < space.cpuLadder().size(); ++c) {
        for (std::size_t m = 0; m < mem_steps; ++m) {
            const FrequencySetting here{space.cpuLadder().at(c),
                                        space.memLadder().at(m)};
            const Seconds t_here =
                model.evaluate(profile, here, kInstr).total;
            if (c + 1 < space.cpuLadder().size()) {
                const FrequencySetting up{space.cpuLadder().at(c + 1),
                                          here.mem};
                EXPECT_LE(model.evaluate(profile, up, kInstr).total,
                          t_here * (1.0 + 1e-9));
            }
            if (m + 1 < mem_steps) {
                const FrequencySetting up{here.cpu,
                                          space.memLadder().at(m + 1)};
                EXPECT_LE(model.evaluate(profile, up, kInstr).total,
                          t_here * (1.0 + 1e-9));
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(MlpSweep, TimingMonotonicity,
                         ::testing::Values(1.0, 1.5, 2.5, 4.0));

} // namespace
} // namespace mcdvfs
