/**
 * @file
 * Unit tests for the Fig. 1 system stack: frequency drivers, the
 * DVFS controller device, and PMU counters.
 */

#include <gtest/gtest.h>

#include "dvfs/dvfs_controller.hh"

namespace mcdvfs
{
namespace
{

TEST(FrequencyDriver, StartsAtHighestStep)
{
    FrequencyDriver driver("cpufreq", FrequencyLadder::cpuCoarse(),
                           microSeconds(60), microJoules(12));
    EXPECT_DOUBLE_EQ(driver.current(), megaHertz(1000));
    EXPECT_EQ(driver.transitions(), 0u);
}

TEST(FrequencyDriver, SnapsToNearestStep)
{
    FrequencyDriver driver("cpufreq", FrequencyLadder::cpuCoarse(),
                           microSeconds(60), microJoules(12));
    driver.set(megaHertz(472));
    EXPECT_DOUBLE_EQ(driver.current(), megaHertz(500));
    driver.set(megaHertz(449));
    EXPECT_DOUBLE_EQ(driver.current(), megaHertz(400));
}

TEST(FrequencyDriver, NoOpChangeIsFree)
{
    FrequencyDriver driver("memfreq", FrequencyLadder::memCoarse(),
                           microSeconds(40), microJoules(8));
    const TransitionCost cost = driver.set(megaHertz(800));
    EXPECT_EQ(cost.latency, 0.0);
    EXPECT_EQ(cost.energy, 0.0);
    EXPECT_EQ(driver.transitions(), 0u);
}

TEST(FrequencyDriver, ChargesPerActualChange)
{
    FrequencyDriver driver("memfreq", FrequencyLadder::memCoarse(),
                           microSeconds(40), microJoules(8));
    const TransitionCost cost = driver.set(megaHertz(400));
    EXPECT_DOUBLE_EQ(cost.latency, microSeconds(40));
    EXPECT_DOUBLE_EQ(cost.energy, microJoules(8));
    EXPECT_EQ(driver.transitions(), 1u);
}

TEST(DvfsController, ProgramsBothDomains)
{
    DvfsController controller(SettingsSpace::coarse());
    const FrequencySetting target{megaHertz(500), megaHertz(400)};
    controller.set(target);
    EXPECT_TRUE(controller.current() == target);
}

TEST(DvfsController, CostOnlyForChangedDomains)
{
    const TransitionParams params;
    DvfsController controller(SettingsSpace::coarse(), params);
    controller.set({megaHertz(500), megaHertz(400)});
    // Change only memory.
    const TransitionCost cost =
        controller.set({megaHertz(500), megaHertz(600)});
    EXPECT_DOUBLE_EQ(cost.latency, params.memLatency);
    EXPECT_DOUBLE_EQ(cost.energy, params.memEnergy);
    EXPECT_EQ(controller.cpuDriver().transitions(), 1u);
    EXPECT_EQ(controller.memDriver().transitions(), 2u);
}

TEST(DvfsController, AccumulatesTotals)
{
    const TransitionParams params;
    DvfsController controller(SettingsSpace::coarse(), params);
    controller.set({megaHertz(500), megaHertz(400)});
    controller.set({megaHertz(600), megaHertz(500)});
    EXPECT_NEAR(controller.totalTransitionLatency(),
                2.0 * params.cpuLatency + 2.0 * params.memLatency,
                1e-12);
    EXPECT_NEAR(controller.totalTransitionEnergy(),
                2.0 * params.cpuEnergy + 2.0 * params.memEnergy,
                1e-15);
}

TEST(DvfsController, LogsTransitions)
{
    DvfsController controller(SettingsSpace::coarse());
    controller.set({megaHertz(500), megaHertz(400)});
    controller.set({megaHertz(500), megaHertz(400)});  // no-op
    controller.set({megaHertz(700), megaHertz(400)});
    ASSERT_EQ(controller.log().size(), 2u);
    EXPECT_DOUBLE_EQ(controller.log()[0].to.cpu, megaHertz(500));
    EXPECT_DOUBLE_EQ(controller.log()[1].from.cpu, megaHertz(500));
    EXPECT_DOUBLE_EQ(controller.log()[1].to.cpu, megaHertz(700));
    // The no-op still advanced the decision sequence number.
    EXPECT_EQ(controller.log()[1].sequence, 2u);
}

TEST(DvfsController, PmuCountersAccumulate)
{
    DvfsController controller(SettingsSpace::coarse());
    PmuCounters delta;
    delta.instructions = 1000;
    delta.cycles = 1500;
    delta.l1Misses = 20;
    controller.updateCounters(delta);
    controller.updateCounters(delta);
    EXPECT_EQ(controller.counters().instructions, 2000u);
    EXPECT_EQ(controller.counters().cycles, 3000u);
    EXPECT_EQ(controller.counters().l1Misses, 40u);
    EXPECT_DOUBLE_EQ(controller.counters().cpi(), 1.5);
}

TEST(PmuCounters, CpiOfIdleCountersIsZero)
{
    EXPECT_EQ(PmuCounters{}.cpi(), 0.0);
}

} // namespace
} // namespace mcdvfs
