/**
 * @file
 * Hand-computed verification of the §V/§VI algorithms.
 *
 * A tiny 3-sample x 6-setting grid (CPU {400,700,1000} x mem
 * {300,600} MHz) is filled with hand-picked times and energies, and
 * every analysis result is checked against values worked out by hand
 * — complementing the invariant/property tests with exact expected
 * outputs.
 *
 * Grid design (time in ms, energy in mJ), settings indexed
 * k = cpu_idx * 2 + mem_idx:
 *
 *   k : (cpu,mem)   s0: t,E      s1: t,E      s2: t,E
 *   0 : (400,300)   10, 10      12, 10      10, 10
 *   1 : (400,600)   10,  12     9,  12      10, 12
 *   2 : (700,300)   6,  11     8,  13      6,  11
 *   3 : (700,600)   6,  13     5.95, 15    6,  13
 *   4 : (1000,300)  4,  14     7,  18      4.6, 14
 *   5 : (1000,600)  4.02, 16   5,  20      4.59, 16.5
 *
 * Hand results used below:
 *  - Emin per sample: 10 everywhere (k0 for s0/s2, k0/k1 tie broken
 *    by value: s1 Emin = 10 at k0).
 *  - At budget 1.405 (E <= ~14; 1.405 keeps the hand value 14/10 feasible despite floating-point rounding of the stored energies):
 *      s0 feasible {0,1,2,3,4}, fastest k4 (4ms); k5 infeasible (16).
 *      s1 feasible {0,1,2}, fastest k2 (8ms).
 *      s2 feasible {0,1,2,4}, fastest k4 (4.6ms).
 *  - Noise window 0.5% at s0: k4 = 4ms; no other feasible setting
 *    within 0.5%, so optimum = k4.
 *  - Clusters at budget 1.4, threshold 50% (generous, for hand
 *    math): s0 speedup(k) = 12/t... see individual tests.
 */

#include <gtest/gtest.h>

#include "core/pareto.hh"
#include "core/search_strategies.hh"
#include "core/stable_regions.hh"

namespace mcdvfs
{
namespace
{

SettingsSpace
tinySpace()
{
    return SettingsSpace(
        FrequencyLadder(std::vector<Hertz>{megaHertz(400),
                                           megaHertz(700),
                                           megaHertz(1000)}),
        FrequencyLadder(std::vector<Hertz>{megaHertz(300),
                                           megaHertz(600)}));
}

MeasuredGrid
handGrid()
{
    MeasuredGrid grid("hand", tinySpace(), 3, 1'000'000);
    const double t[3][6] = {
        {10.0, 10.0, 6.0, 6.0, 4.0, 4.02},
        {12.0, 9.0, 8.0, 5.95, 7.0, 5.0},
        {10.0, 10.0, 6.0, 6.0, 4.6, 4.59},
    };
    const double e[3][6] = {
        {10.0, 12.0, 11.0, 13.0, 14.0, 16.0},
        {10.0, 12.0, 13.0, 15.0, 18.0, 20.0},
        {10.0, 12.0, 11.0, 13.0, 14.0, 16.5},
    };
    for (std::size_t s = 0; s < 3; ++s) {
        for (std::size_t k = 0; k < 6; ++k) {
            grid.cell(s, k).seconds = t[s][k] * 1e-3;
            grid.cell(s, k).cpuEnergy = e[s][k] * 1e-3 * 0.8;
            grid.cell(s, k).memEnergy = e[s][k] * 1e-3 * 0.2;
        }
    }
    return grid;
}

TEST(HandGrid, EminAndSlowest)
{
    const MeasuredGrid grid = handGrid();
    InefficiencyAnalysis analysis(grid);
    for (std::size_t s = 0; s < 3; ++s)
        EXPECT_NEAR(analysis.sampleEmin(s), 10e-3, 1e-12);
    // Slowest per sample: s0 10ms, s1 12ms, s2 10ms.
    EXPECT_NEAR(analysis.sampleSpeedup(0, 4), 10.0 / 4.0, 1e-12);
    EXPECT_NEAR(analysis.sampleSpeedup(1, 2), 12.0 / 8.0, 1e-12);
}

TEST(HandGrid, InefficiencyValues)
{
    const MeasuredGrid grid = handGrid();
    InefficiencyAnalysis analysis(grid);
    EXPECT_NEAR(analysis.sampleInefficiency(0, 0), 1.0, 1e-12);
    EXPECT_NEAR(analysis.sampleInefficiency(0, 5), 1.6, 1e-12);
    EXPECT_NEAR(analysis.sampleInefficiency(1, 3), 1.5, 1e-12);
}

TEST(HandGrid, OptimalAtBudget1405)
{
    const MeasuredGrid grid = handGrid();
    InefficiencyAnalysis analysis(grid);
    OptimalSettingsFinder finder(analysis);

    // s0: feasible {0..4}; fastest k4 (4.0ms); k5 (4.02ms) infeasible.
    EXPECT_EQ(finder.optimalForSample(0, 1.405).settingIndex, 4u);
    // s1: feasible {0,1,2} (E<=14); fastest k2 at 8ms.
    EXPECT_EQ(finder.optimalForSample(1, 1.405).settingIndex, 2u);
    // s2: feasible {0,1,2,4}; fastest k4 at 4.6ms.
    EXPECT_EQ(finder.optimalForSample(2, 1.405).settingIndex, 4u);
}

TEST(HandGrid, NoiseTieBreakPrefersHighCpuThenMem)
{
    const MeasuredGrid grid = handGrid();
    InefficiencyAnalysis analysis(grid);
    // With a 1% window at unbounded budget, s0's k4 (4.0) and k5
    // (4.02, 0.5% slower) tie; the tie-break picks the higher MEMORY
    // frequency at the same CPU: k5.
    OptimalSettingsFinder finder(analysis, /*noise=*/0.01);
    EXPECT_EQ(finder.optimalForSample(0, kUnboundedBudget).settingIndex,
              5u);
    // With a 0.1% window they no longer tie: k4 wins on speed.
    OptimalSettingsFinder tight(analysis, /*noise=*/0.001);
    EXPECT_EQ(tight.optimalForSample(0, kUnboundedBudget).settingIndex,
              4u);
}

TEST(HandGrid, ClusterMembersAtGenerousThreshold)
{
    const MeasuredGrid grid = handGrid();
    InefficiencyAnalysis analysis(grid);
    OptimalSettingsFinder finder(analysis, /*noise=*/0.001);
    ClusterFinder clusters(finder);

    // s0 at budget 1.405: optimum k4 (4ms, speedup 2.5).  Threshold 40%
    // admits feasible settings with speedup >= 1.5, i.e. time <=
    // 6.67ms: k2 (6), k3 (6), k4 (4).
    const PerformanceCluster cluster =
        clusters.clusterForSample(0, 1.405, 0.40);
    EXPECT_EQ(cluster.settings.size(), 3u);
    EXPECT_TRUE(cluster.contains(2));
    EXPECT_TRUE(cluster.contains(3));
    EXPECT_TRUE(cluster.contains(4));
    EXPECT_FALSE(cluster.contains(5));  // infeasible
    EXPECT_FALSE(cluster.contains(0));  // too slow
}

TEST(HandGrid, StableRegionsFromHandClusters)
{
    const MeasuredGrid grid = handGrid();
    InefficiencyAnalysis analysis(grid);
    OptimalSettingsFinder finder(analysis, 0.001);
    ClusterFinder clusters(finder);
    StableRegionFinder regions(clusters);

    // At budget 1.405 / threshold 40%:
    //  s0 cluster {2,3,4}; s1: optimum k2 (8ms, speedup 1.5),
    //  threshold 40% admits time <= 13.33ms & feasible {0,1,2};
    //  s2 cluster: optimum k4 (4.6ms), time <= 7.67ms: {2,3,4}.
    //  Intersection s0∩s1 = {2}; extending to s2 keeps {2}.
    const auto region_list = regions.find(1.405, 0.40);
    ASSERT_EQ(region_list.size(), 1u);
    EXPECT_EQ(region_list[0].first, 0u);
    EXPECT_EQ(region_list[0].last, 2u);
    ASSERT_EQ(region_list[0].availableSettings.size(), 1u);
    EXPECT_EQ(region_list[0].chosenSettingIndex, 2u);
}

TEST(HandGrid, RegionsBreakAtTightThreshold)
{
    const MeasuredGrid grid = handGrid();
    InefficiencyAnalysis analysis(grid);
    OptimalSettingsFinder finder(analysis, 0.001);
    ClusterFinder clusters(finder);
    StableRegionFinder regions(clusters);

    // At threshold 1% the clusters are near-singletons around k4/k2/
    // k4 and share nothing: three regions.
    const auto region_list = regions.find(1.405, 0.01);
    ASSERT_EQ(region_list.size(), 3u);
    EXPECT_EQ(region_list[0].chosenSettingIndex, 4u);
    EXPECT_EQ(region_list[1].chosenSettingIndex, 2u);
    EXPECT_EQ(region_list[2].chosenSettingIndex, 4u);
}

TEST(HandGrid, ParetoFrontierByHand)
{
    const MeasuredGrid grid = handGrid();
    InefficiencyAnalysis analysis(grid);
    ParetoAnalysis pareto(analysis);
    // Whole-run totals: t = {32,29,20,17.95,15.6,13.61},
    //                   E = {30,36,35,41,46,52.5}.
    // k0 (32,30): k1 is slower-comparison... k1 (29,36) doesn't
    // dominate k0 (more E).  Nothing has both t<=32 and E<=30 except
    // itself -> k0 on frontier.  k1 (29,36): k2 (20,35) dominates
    // (faster AND cheaper) -> k1 off.  k2 on (E 35 only beaten by k0
    // which is slower).  k3 (17.95,41): k4? (15.6,46) no (E higher);
    // nothing faster with E<=41 -> on.  k4 (15.6,46): k5 (13.61,52.5)
    // no -> on.  k5 fastest -> on.
    const auto frontier = pareto.runFrontier();
    ASSERT_EQ(frontier.size(), 5u);
    EXPECT_EQ(frontier[0].settingIndex, 5u);  // sorted fastest first
    EXPECT_EQ(frontier[4].settingIndex, 0u);
    EXPECT_NEAR(pareto.dominatedFraction(), 1.0 / 6.0, 1e-12);
}

TEST(HandGrid, WarmClimbFindsHandOptima)
{
    const MeasuredGrid grid = handGrid();
    InefficiencyAnalysis analysis(grid);
    SettingsSearch search(analysis);
    const SearchTrajectory warm = search.runWarmClimb(1.405);
    EXPECT_EQ(warm.perSample[0].settingIndex, 4u);
    EXPECT_EQ(warm.perSample[1].settingIndex, 2u);
    EXPECT_EQ(warm.perSample[2].settingIndex, 4u);
    EXPECT_NEAR(warm.optimalityGapPct, 0.0, 1e-9);
}

} // namespace
} // namespace mcdvfs
