/**
 * @file
 * Concurrency stress tests for the trace collector (ctest label
 * "stress"; part of the TSan subset in scripts/sanitize.sh): many
 * writer threads hammering their rings, with and without a snapshot
 * reader running concurrently.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "obs/trace.hh"

namespace mcdvfs
{
namespace obs
{
namespace
{

constexpr std::size_t kThreads = 8;
constexpr std::size_t kEventsPerThread = 5000;
constexpr std::size_t kRingCapacity = 1024;

TEST(TraceStress, ConcurrentWritersKeepExactAccounting)
{
    TraceCollector collector;
    collector.enable(kRingCapacity);

    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        writers.emplace_back([&collector, t] {
            for (std::size_t i = 0; i < kEventsPerThread; ++i) {
                collector.record('i', "stress.event",
                                 /*ts_ns=*/i, /*dur_ns=*/0,
                                 /*arg=*/t * kEventsPerThread + i);
            }
        });
    }
    for (std::thread &writer : writers)
        writer.join();

    // Writers are quiescent, so every retained slot is stable: full
    // rings, exact drop counts, zero torn reads.
    const TraceSnapshot snap = collector.snapshot();
    EXPECT_EQ(snap.events.size(), kThreads * kRingCapacity);
    EXPECT_EQ(snap.droppedEvents,
              kThreads * (kEventsPerThread - kRingCapacity));
    EXPECT_EQ(snap.tornReads, 0u);

    std::vector<std::size_t> per_tid(kThreads, 0);
    for (const TraceEventView &event : snap.events) {
        ASSERT_LT(event.tid, kThreads);
        ++per_tid[event.tid];
        // Each ring retains exactly the newest kRingCapacity events.
        EXPECT_GE(event.tsNs, kEventsPerThread - kRingCapacity);
    }
    for (std::size_t t = 0; t < kThreads; ++t)
        EXPECT_EQ(per_tid[t], kRingCapacity) << "tid " << t;
}

TEST(TraceStress, SnapshotWhileWritersRunSeesOnlyConsistentEvents)
{
    TraceCollector collector;
    collector.enable(kRingCapacity);

    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    writers.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        writers.emplace_back([&collector, &stop] {
            std::uint64_t i = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                collector.record(i % 2 ? 'i' : 'X', "stress.live", i,
                                 i % 2 ? 0 : 10, i);
                ++i;
            }
        });
    }

    // Under a loaded machine the writers may take a while to get
    // scheduled; wait until at least one event is visible so the
    // snapshot rounds actually race live writers.
    while (collector.snapshot().events.empty())
        std::this_thread::yield();

    // Race snapshots against the writers; every event a snapshot
    // returns must be fully consistent (the seqlock rejects the rest).
    std::uint64_t total_events = 0;
    for (int round = 0; round < 200; ++round) {
        const TraceSnapshot snap = collector.snapshot();
        total_events += snap.events.size();
        for (const TraceEventView &event : snap.events) {
            ASSERT_NE(event.name, nullptr);
            ASSERT_STREQ(event.name, "stress.live");
            ASSERT_TRUE(event.phase == 'i' || event.phase == 'X');
            if (event.phase == 'i')
                ASSERT_EQ(event.durNs, 0u);
            else
                ASSERT_EQ(event.durNs, 10u);
            ASSERT_EQ(event.tsNs, event.arg);
        }
    }
    stop.store(true, std::memory_order_relaxed);
    for (std::thread &writer : writers)
        writer.join();

    EXPECT_GT(total_events, 0u);
}

} // namespace
} // namespace obs
} // namespace mcdvfs
