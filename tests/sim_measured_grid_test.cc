/**
 * @file
 * Unit tests for the MeasuredGrid container.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

#include "sim/measured_grid.hh"

namespace mcdvfs
{
namespace
{

MeasuredGrid
handGrid()
{
    // 2 samples x 70 settings, filled with a recognizable pattern.
    MeasuredGrid grid("hand", SettingsSpace::coarse(), 2, 1'000'000);
    for (std::size_t s = 0; s < 2; ++s) {
        for (std::size_t k = 0; k < grid.settingCount(); ++k) {
            GridCellRef cell = grid.cell(s, k);
            cell.seconds = 1.0 + static_cast<double>(k) * 0.01 +
                           static_cast<double>(s);
            cell.cpuEnergy = 2.0 - static_cast<double>(k) * 0.01;
            cell.memEnergy = 0.5;
        }
    }
    return grid;
}

TEST(MeasuredGrid, Dimensions)
{
    const MeasuredGrid grid = handGrid();
    EXPECT_EQ(grid.sampleCount(), 2u);
    EXPECT_EQ(grid.settingCount(), 70u);
    EXPECT_EQ(grid.instructionsPerSample(), 1'000'000u);
    EXPECT_EQ(grid.totalInstructions(), 2'000'000u);
    EXPECT_EQ(grid.workload(), "hand");
}

TEST(MeasuredGrid, CellRoundTrip)
{
    MeasuredGrid grid = handGrid();
    grid.cell(1, 3).seconds = 42.0;
    EXPECT_DOUBLE_EQ(grid.cell(1, 3).seconds, 42.0);
    EXPECT_NE(grid.cell(0, 3).seconds, 42.0);
}

TEST(MeasuredGrid, EnergyIsCpuPlusMem)
{
    const MeasuredGrid grid = handGrid();
    const GridCell &cell = grid.cell(0, 0);
    EXPECT_DOUBLE_EQ(cell.energy(), cell.cpuEnergy + cell.memEnergy);
}

TEST(MeasuredGrid, SampleAggregates)
{
    const MeasuredGrid grid = handGrid();
    // Energy decreases with k, so Emin is at the last setting.
    EXPECT_DOUBLE_EQ(grid.sampleEmin(0),
                     grid.cell(0, 69).energy());
    // Time increases with k, so the slowest is the last setting.
    EXPECT_DOUBLE_EQ(grid.sampleSlowest(0),
                     grid.cell(0, 69).seconds);
    EXPECT_DOUBLE_EQ(grid.sampleFastest(0), grid.cell(0, 0).seconds);
}

TEST(MeasuredGrid, RunAggregates)
{
    const MeasuredGrid grid = handGrid();
    EXPECT_DOUBLE_EQ(grid.totalTime(5), grid.cell(0, 5).seconds +
                                            grid.cell(1, 5).seconds);
    EXPECT_DOUBLE_EQ(grid.totalEnergy(5),
                     grid.cell(0, 5).energy() +
                         grid.cell(1, 5).energy());
    EXPECT_DOUBLE_EQ(grid.eminTotal(), grid.totalEnergy(69));
    EXPECT_DOUBLE_EQ(grid.slowestTotal(), grid.totalTime(69));
}

TEST(MeasuredGrid, ProfileAttachment)
{
    MeasuredGrid grid = handGrid();
    EXPECT_FALSE(grid.hasProfiles());
    std::vector<SampleProfile> profiles(2);
    profiles[1].l1Mpki = 33.0;
    grid.setProfiles(profiles);
    EXPECT_TRUE(grid.hasProfiles());
    EXPECT_DOUBLE_EQ(grid.profile(1).l1Mpki, 33.0);
}

TEST(MeasuredGrid, ProfileCountMismatchThrows)
{
    MeasuredGrid grid = handGrid();
    EXPECT_THROW(grid.setProfiles(std::vector<SampleProfile>(3)),
                 FatalError);
}

TEST(MeasuredGrid, ConstructorValidation)
{
    EXPECT_THROW(MeasuredGrid("x", SettingsSpace::coarse(), 0, 100),
                 FatalError);
    EXPECT_THROW(MeasuredGrid("x", SettingsSpace::coarse(), 2, 0),
                 FatalError);
}

TEST(MeasuredGrid, ColumnAccessorsMatchCells)
{
    const MeasuredGrid grid = handGrid();
    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        for (std::size_t k = 0; k < grid.settingCount(); ++k) {
            const GridCell cell = grid.cell(s, k);
            EXPECT_DOUBLE_EQ(grid.secondsAt(s, k), cell.seconds);
            EXPECT_DOUBLE_EQ(grid.cpuEnergyAt(s, k), cell.cpuEnergy);
            EXPECT_DOUBLE_EQ(grid.memEnergyAt(s, k), cell.memEnergy);
            EXPECT_DOUBLE_EQ(grid.energyAt(s, k), cell.energy());
            EXPECT_DOUBLE_EQ(grid.busyFracAt(s, k), cell.busyFrac);
            EXPECT_DOUBLE_EQ(grid.bwUtilAt(s, k), cell.bwUtil);
        }
    }
}

TEST(MeasuredGrid, CellAssignmentFromValue)
{
    MeasuredGrid grid = handGrid();
    GridCell value;
    value.seconds = 7.0;
    value.cpuEnergy = 8.0;
    value.memEnergy = 9.0;
    value.busyFrac = 0.25;
    value.bwUtil = 0.75;
    grid.cell(1, 2) = value;
    const GridCell back = grid.cell(1, 2);
    EXPECT_DOUBLE_EQ(back.seconds, 7.0);
    EXPECT_DOUBLE_EQ(back.cpuEnergy, 8.0);
    EXPECT_DOUBLE_EQ(back.memEnergy, 9.0);
    EXPECT_DOUBLE_EQ(back.busyFrac, 0.25);
    EXPECT_DOUBLE_EQ(back.bwUtil, 0.75);
}

TEST(MeasuredGrid, MutationInvalidatesAggregateCache)
{
    MeasuredGrid grid = handGrid();
    const Seconds before = grid.sampleSlowest(0);
    // Writing through a mutable cell view must invalidate the cached
    // per-sample aggregates.
    grid.cell(0, 0).seconds = before + 100.0;
    EXPECT_DOUBLE_EQ(grid.sampleSlowest(0), before + 100.0);
    const Joules emin_before = grid.sampleEmin(0);
    grid.cell(0, 10).cpuEnergy = -5.0;
    EXPECT_LT(grid.sampleEmin(0), emin_before);
}

TEST(MeasuredGrid, FillRowMatchesCellWrites)
{
    MeasuredGrid a("x", SettingsSpace::coarse(), 1, 1000);
    MeasuredGrid b("x", SettingsSpace::coarse(), 1, 1000);
    MeasuredGrid::RowView row = a.fillRow(0);
    for (std::size_t k = 0; k < a.settingCount(); ++k) {
        const double v = static_cast<double>(k);
        row.seconds[k] = v;
        row.cpuEnergy[k] = v * 2.0;
        row.memEnergy[k] = v * 3.0;
        row.busyFrac[k] = 0.5;
        row.bwUtil[k] = 0.1;
        GridCellRef cell = b.cell(0, k);
        cell.seconds = v;
        cell.cpuEnergy = v * 2.0;
        cell.memEnergy = v * 3.0;
        cell.busyFrac = 0.5;
        cell.bwUtil = 0.1;
    }
    a.updateSampleAggregates(0);
    a.sealAggregates();
    for (std::size_t k = 0; k < a.settingCount(); ++k) {
        EXPECT_DOUBLE_EQ(a.secondsAt(0, k), b.secondsAt(0, k));
        EXPECT_DOUBLE_EQ(a.energyAt(0, k), b.energyAt(0, k));
    }
    EXPECT_DOUBLE_EQ(a.sampleEmin(0), b.sampleEmin(0));
    EXPECT_DOUBLE_EQ(a.sampleSlowest(0), b.sampleSlowest(0));
    EXPECT_DOUBLE_EQ(a.sampleFastest(0), b.sampleFastest(0));
}

TEST(MeasuredGridDeathTest, OutOfRangePanics)
{
    const MeasuredGrid grid = handGrid();
    EXPECT_DEATH(grid.cell(2, 0), "sample index");
    EXPECT_DEATH(grid.cell(0, 70), "setting index");
}

} // namespace
} // namespace mcdvfs
