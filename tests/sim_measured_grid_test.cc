/**
 * @file
 * Unit tests for the MeasuredGrid container.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

#include "sim/measured_grid.hh"

namespace mcdvfs
{
namespace
{

MeasuredGrid
handGrid()
{
    // 2 samples x 70 settings, filled with a recognizable pattern.
    MeasuredGrid grid("hand", SettingsSpace::coarse(), 2, 1'000'000);
    for (std::size_t s = 0; s < 2; ++s) {
        for (std::size_t k = 0; k < grid.settingCount(); ++k) {
            GridCell &cell = grid.cell(s, k);
            cell.seconds = 1.0 + static_cast<double>(k) * 0.01 +
                           static_cast<double>(s);
            cell.cpuEnergy = 2.0 - static_cast<double>(k) * 0.01;
            cell.memEnergy = 0.5;
        }
    }
    return grid;
}

TEST(MeasuredGrid, Dimensions)
{
    const MeasuredGrid grid = handGrid();
    EXPECT_EQ(grid.sampleCount(), 2u);
    EXPECT_EQ(grid.settingCount(), 70u);
    EXPECT_EQ(grid.instructionsPerSample(), 1'000'000u);
    EXPECT_EQ(grid.totalInstructions(), 2'000'000u);
    EXPECT_EQ(grid.workload(), "hand");
}

TEST(MeasuredGrid, CellRoundTrip)
{
    MeasuredGrid grid = handGrid();
    grid.cell(1, 3).seconds = 42.0;
    EXPECT_DOUBLE_EQ(grid.cell(1, 3).seconds, 42.0);
    EXPECT_NE(grid.cell(0, 3).seconds, 42.0);
}

TEST(MeasuredGrid, EnergyIsCpuPlusMem)
{
    const MeasuredGrid grid = handGrid();
    const GridCell &cell = grid.cell(0, 0);
    EXPECT_DOUBLE_EQ(cell.energy(), cell.cpuEnergy + cell.memEnergy);
}

TEST(MeasuredGrid, SampleAggregates)
{
    const MeasuredGrid grid = handGrid();
    // Energy decreases with k, so Emin is at the last setting.
    EXPECT_DOUBLE_EQ(grid.sampleEmin(0),
                     grid.cell(0, 69).energy());
    // Time increases with k, so the slowest is the last setting.
    EXPECT_DOUBLE_EQ(grid.sampleSlowest(0),
                     grid.cell(0, 69).seconds);
    EXPECT_DOUBLE_EQ(grid.sampleFastest(0), grid.cell(0, 0).seconds);
}

TEST(MeasuredGrid, RunAggregates)
{
    const MeasuredGrid grid = handGrid();
    EXPECT_DOUBLE_EQ(grid.totalTime(5), grid.cell(0, 5).seconds +
                                            grid.cell(1, 5).seconds);
    EXPECT_DOUBLE_EQ(grid.totalEnergy(5),
                     grid.cell(0, 5).energy() +
                         grid.cell(1, 5).energy());
    EXPECT_DOUBLE_EQ(grid.eminTotal(), grid.totalEnergy(69));
    EXPECT_DOUBLE_EQ(grid.slowestTotal(), grid.totalTime(69));
}

TEST(MeasuredGrid, ProfileAttachment)
{
    MeasuredGrid grid = handGrid();
    EXPECT_FALSE(grid.hasProfiles());
    std::vector<SampleProfile> profiles(2);
    profiles[1].l1Mpki = 33.0;
    grid.setProfiles(profiles);
    EXPECT_TRUE(grid.hasProfiles());
    EXPECT_DOUBLE_EQ(grid.profile(1).l1Mpki, 33.0);
}

TEST(MeasuredGrid, ProfileCountMismatchThrows)
{
    MeasuredGrid grid = handGrid();
    EXPECT_THROW(grid.setProfiles(std::vector<SampleProfile>(3)),
                 FatalError);
}

TEST(MeasuredGrid, ConstructorValidation)
{
    EXPECT_THROW(MeasuredGrid("x", SettingsSpace::coarse(), 0, 100),
                 FatalError);
    EXPECT_THROW(MeasuredGrid("x", SettingsSpace::coarse(), 2, 0),
                 FatalError);
}

TEST(MeasuredGridDeathTest, OutOfRangePanics)
{
    const MeasuredGrid grid = handGrid();
    EXPECT_DEATH(grid.cell(2, 0), "sample index");
    EXPECT_DEATH(grid.cell(0, 70), "setting index");
}

} // namespace
} // namespace mcdvfs
