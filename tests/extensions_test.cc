/**
 * @file
 * Unit tests for the opt-in extension features: next-line prefetch,
 * DRAM power-down, the bandwidth-model ablation flag, and the
 * extended workload set.
 */

#include <gtest/gtest.h>

#include "power/dram_power.hh"
#include "sim/sample_simulator.hh"
#include "sim/timing_model.hh"
#include "trace/workloads.hh"

namespace mcdvfs
{
namespace
{

PhaseSpec
streamingPhase()
{
    PhaseSpec spec;
    spec.name = "stream";
    spec.loadFrac = 0.30;
    spec.storeFrac = 0.05;
    spec.hotFrac = 0.55;
    spec.warmFrac = 0.0;
    spec.coldSeqFrac = 1.0;
    spec.coldBytes = 64ull << 20;
    return spec;
}

WorkloadProfile
streamingWorkload()
{
    const PhaseSpec spec = streamingPhase();
    return WorkloadProfile("stream", 3,
                           [spec](std::size_t) { return spec; }, 77,
                           0.0);
}

TEST(Prefetcher, CutsDemandMissesOnStreams)
{
    SampleSimulatorConfig off;
    off.simInstructionsPerSample = 20'000;
    off.warmupInstructions = 40'000;
    SampleSimulatorConfig on = off;
    on.hierarchy.nextLinePrefetch = true;

    SampleSimulator without(off);
    SampleSimulator with(on);
    const auto base = without.characterize(streamingWorkload());
    const auto pf = with.characterize(streamingWorkload());

    // Sequential streams: degree-1 next-line prefetch converts every
    // other demand miss into an L2 hit (the classic halving).
    EXPECT_LT(pf[2].l2Mpki, base[2].l2Mpki * 0.6);
    EXPECT_GT(pf[2].dramPrefetchPerInstr, 0.0);
    EXPECT_EQ(base[2].dramPrefetchPerInstr, 0.0);
}

TEST(Prefetcher, TrafficIsConserved)
{
    // Prefetching doesn't reduce total bus traffic on a pure stream —
    // every line still crosses the bus once (as prefetch instead of
    // demand).
    SampleSimulatorConfig off;
    off.simInstructionsPerSample = 20'000;
    off.warmupInstructions = 40'000;
    SampleSimulatorConfig on = off;
    on.hierarchy.nextLinePrefetch = true;

    SampleSimulator without(off);
    SampleSimulator with(on);
    const auto base = without.characterize(streamingWorkload());
    const auto pf = with.characterize(streamingWorkload());
    EXPECT_NEAR(pf[2].trafficPerInstr(), base[2].trafficPerInstr(),
                base[2].trafficPerInstr() * 0.25);
}

TEST(Prefetcher, SpeedsUpStreamingInTheTimingModel)
{
    SampleSimulatorConfig off;
    off.simInstructionsPerSample = 20'000;
    off.warmupInstructions = 40'000;
    SampleSimulatorConfig on = off;
    on.hierarchy.nextLinePrefetch = true;

    SampleSimulator without(off);
    SampleSimulator with(on);
    const auto base = without.characterize(streamingWorkload());
    const auto pf = with.characterize(streamingWorkload());

    const TimingModel model;
    const FrequencySetting setting{megaHertz(1000), megaHertz(400)};
    const Seconds t_base =
        model.evaluate(base[2], setting, 10'000'000).total;
    const Seconds t_pf =
        model.evaluate(pf[2], setting, 10'000'000).total;
    EXPECT_LT(t_pf, t_base);
}

TEST(Prefetcher, SurvivesWorstCaseWritebackStorm)
{
    // Regression: with prefetch on, one access can generate up to
    // five DRAM requests (two L2 writebacks, the demand fill, a
    // prefetch-victim writeback and the prefetch fill).  Tiny caches
    // plus store-heavy random traffic exercise that path; the
    // outcome buffer must hold them all.
    PhaseSpec spec;
    spec.name = "storm";
    spec.loadFrac = 0.10;
    spec.storeFrac = 0.45;
    spec.hotFrac = 0.0;
    spec.warmFrac = 0.0;
    spec.coldSeqFrac = 0.4;
    spec.coldBytes = 32ull << 20;

    SampleSimulatorConfig config;
    config.simInstructionsPerSample = 30'000;
    config.warmupInstructions = 30'000;
    config.hierarchy.l1.sizeBytes = 1024;
    config.hierarchy.l1.associativity = 2;
    config.hierarchy.l2.sizeBytes = 4096;
    config.hierarchy.l2.associativity = 2;
    config.hierarchy.nextLinePrefetch = true;

    SampleSimulator simulator(config);
    const SampleProfile profile =
        simulator.characterizeOne(spec, 123, 30'000);
    EXPECT_GT(profile.dramWritesPerInstr, 0.0);
    EXPECT_GT(profile.dramPrefetchPerInstr, 0.0);
}

TEST(PowerDown, DisabledByDefault)
{
    const DramPowerModel model = DramPowerModel::paperDefault();
    EXPECT_DOUBLE_EQ(model.backgroundPower(megaHertz(800), 0.0),
                     model.backgroundPower(megaHertz(800)));
}

TEST(PowerDown, IdleChannelSavesBackgroundEnergy)
{
    DramPowerParams params;
    params.enablePowerDown = true;
    const DramPowerModel model(params, DramTiming{}, DramConfig{});
    const Watts idle = model.backgroundPower(megaHertz(800), 0.0);
    const Watts busy = model.backgroundPower(megaHertz(800), 1.0);
    EXPECT_LT(idle, busy * 0.8);
    // Saturated channel gets no power-down benefit.
    EXPECT_DOUBLE_EQ(busy, model.backgroundPower(megaHertz(800)));
}

TEST(PowerDown, SavingsScaleWithIdleness)
{
    DramPowerParams params;
    params.enablePowerDown = true;
    const DramPowerModel model(params, DramTiming{}, DramConfig{});
    const Watts at25 = model.backgroundPower(megaHertz(800), 0.25);
    const Watts at75 = model.backgroundPower(megaHertz(800), 0.75);
    EXPECT_LT(at25, at75);
}

TEST(PowerDown, EnergyPathUsesUtilization)
{
    DramPowerParams params;
    params.enablePowerDown = true;
    const DramPowerModel model(params, DramTiming{}, DramConfig{});
    const DramStats stats;
    const Joules idle =
        model.energy(stats, megaHertz(800), 1.0, 0.0).total();
    const Joules busy =
        model.energy(stats, megaHertz(800), 1.0, 1.0).total();
    EXPECT_LT(idle, busy);
}

TEST(BandwidthAblation, PureLatencyModelIgnoresSaturation)
{
    SampleProfile profile;
    profile.baseCpi = 1.0;
    profile.l2PerInstr = 0.02;
    profile.dramReadsPerInstr = 0.05;
    profile.dramWritesPerInstr = 0.02;
    profile.rowHitFrac = 1.0;
    profile.mlp = 8.0;

    TimingParams with_bw;
    TimingParams without_bw;
    without_bw.modelBandwidth = false;
    const TimingModel full(with_bw);
    const TimingModel latency_only(without_bw);

    // A bandwidth-saturating stream at low memory frequency: the full
    // model must be slower than the pure latency model.
    const FrequencySetting setting{megaHertz(1000), megaHertz(200)};
    const Seconds t_full =
        full.evaluate(profile, setting, 10'000'000).total;
    const Seconds t_lat =
        latency_only.evaluate(profile, setting, 10'000'000).total;
    EXPECT_GT(t_full, t_lat * 1.2);
}

TEST(BandwidthAblation, AgreesWhenFarFromSaturation)
{
    SampleProfile profile;
    profile.baseCpi = 1.0;
    profile.l2PerInstr = 0.001;
    profile.dramReadsPerInstr = 0.0005;
    profile.rowHitFrac = 1.0;
    profile.mlp = 2.0;

    TimingParams without_bw;
    without_bw.modelBandwidth = false;
    const TimingModel full;
    const TimingModel latency_only(without_bw);
    const FrequencySetting setting{megaHertz(500), megaHertz(800)};
    const Seconds t_full =
        full.evaluate(profile, setting, 10'000'000).total;
    const Seconds t_lat =
        latency_only.evaluate(profile, setting, 10'000'000).total;
    EXPECT_NEAR(t_full, t_lat, t_lat * 0.02);
}

TEST(ExtendedWorkloads, ThirteenBenchmarksAvailable)
{
    const auto all = extendedWorkloads();
    ASSERT_EQ(all.size(), 13u);
    EXPECT_EQ(workloadByName("mcf").name(), "mcf");
    EXPECT_EQ(workloadByName("soplex").name(), "soplex");
    EXPECT_EQ(workloadByName("glrender").name(), "glrender");
}

TEST(ExtendedWorkloads, GlrenderCarriesGpuKicks)
{
    const WorkloadProfile gl = workloadByName("glrender");
    const PhaseSpec submit = gl.phaseFor(0);
    EXPECT_GT(submit.gpuKickFrac, 0.0);
    EXPECT_GT(submit.gpuCyclesPerKick, 0.0);
    EXPECT_GT(submit.gpuActivity, 0.0);
    EXPECT_NO_THROW(submit.validate());
}

TEST(ExtendedWorkloads, AllPhasesValidate)
{
    for (const auto &workload : extendedWorkloads()) {
        for (std::size_t s = 0; s < workload.sampleCount(); s += 11)
            EXPECT_NO_THROW(workload.phaseFor(s).validate())
                << workload.name();
    }
}

TEST(ExtendedWorkloads, McfIsMemoryBoundWithLowMlp)
{
    const WorkloadProfile mcf = workloadByName("mcf");
    const PhaseSpec spec = mcf.phaseFor(0);
    EXPECT_GT(spec.coldFrac(), 0.1);
    EXPECT_LT(spec.mlp, 1.5);
}

TEST(ExtendedWorkloads, HmmerIsCpuBound)
{
    const WorkloadProfile hmmer = workloadByName("hmmer");
    const PhaseSpec spec = hmmer.phaseFor(0);
    EXPECT_GT(spec.hotFrac, 0.97);
    EXPECT_LT(spec.baseCpi, 0.8);
}

} // namespace
} // namespace mcdvfs
