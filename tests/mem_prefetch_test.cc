/**
 * @file
 * Functional tests for the next-line L2 prefetcher and the probe
 * primitive it relies on.
 */

#include <gtest/gtest.h>

#include "mem/cache_hierarchy.hh"

namespace mcdvfs
{
namespace
{

HierarchyConfig
prefetchConfig()
{
    HierarchyConfig config;
    config.l1.sizeBytes = 512;
    config.l1.associativity = 2;
    config.l1.lineBytes = 64;
    config.l2.sizeBytes = 4096;
    config.l2.associativity = 2;
    config.l2.lineBytes = 64;
    config.nextLinePrefetch = true;
    return config;
}

TEST(CacheProbe, DoesNotPerturbState)
{
    Cache cache(CacheConfig{"p", 1024, 2, 64, 1});
    EXPECT_FALSE(cache.probe(0x1000));
    cache.access(0x1000, false);
    EXPECT_TRUE(cache.probe(0x1000));
    // Probing neither counts as an access nor touches LRU: fill two
    // conflicting lines, probe the older one many times, then insert
    // a third — the probed-but-not-accessed line is still the LRU
    // victim.
    Cache lru(CacheConfig{"q", 1024, 2, 64, 1});
    const std::uint64_t stride = 8 * 64;
    lru.access(0 * stride, false);
    lru.access(1 * stride, false);
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(lru.probe(0 * stride));
    lru.access(2 * stride, false);  // evicts line 0 despite probes
    EXPECT_FALSE(lru.probe(0 * stride));
    EXPECT_EQ(lru.stats().accesses(), 3u);
}

TEST(Prefetcher, DemandMissTriggersNextLineFetch)
{
    CacheHierarchy hierarchy(prefetchConfig());
    const HierarchyOutcome outcome = hierarchy.access(0x10000, false);
    EXPECT_EQ(outcome.level, ServiceLevel::Dram);
    // Demand fill + prefetch of the next line.
    ASSERT_EQ(outcome.dramCount, 2u);
    EXPECT_FALSE(outcome.dram[0].isPrefetch);
    EXPECT_TRUE(outcome.dram[1].isPrefetch);
    EXPECT_EQ(outcome.dram[1].addr, 0x10040u);
    EXPECT_EQ(hierarchy.prefetches(), 1u);
}

TEST(Prefetcher, PrefetchedLineServesFromL2)
{
    CacheHierarchy hierarchy(prefetchConfig());
    hierarchy.access(0x10000, false);  // prefetches 0x10040 into L2
    const HierarchyOutcome outcome = hierarchy.access(0x10040, false);
    EXPECT_EQ(outcome.level, ServiceLevel::L2);
}

TEST(Prefetcher, NoDuplicatePrefetchWhenLinePresent)
{
    CacheHierarchy hierarchy(prefetchConfig());
    hierarchy.access(0x10040, false);  // next line resident already
    const HierarchyOutcome outcome = hierarchy.access(0x10000, false);
    // 0x10040 is in L2: only the demand fill goes to DRAM.
    bool prefetched = false;
    for (std::uint8_t d = 0; d < outcome.dramCount; ++d)
        prefetched |= outcome.dram[d].isPrefetch;
    EXPECT_FALSE(prefetched);
}

TEST(Prefetcher, DisabledByDefault)
{
    HierarchyConfig config = prefetchConfig();
    config.nextLinePrefetch = false;
    CacheHierarchy hierarchy(config);
    const HierarchyOutcome outcome = hierarchy.access(0x10000, false);
    EXPECT_EQ(outcome.dramCount, 1u);
    EXPECT_EQ(hierarchy.prefetches(), 0u);
}

TEST(Prefetcher, ResetClearsCounter)
{
    CacheHierarchy hierarchy(prefetchConfig());
    hierarchy.access(0x10000, false);
    EXPECT_EQ(hierarchy.prefetches(), 1u);
    hierarchy.reset();
    EXPECT_EQ(hierarchy.prefetches(), 0u);
}

TEST(Prefetcher, VictimWritebacksAreOrderedBeforePrefetch)
{
    // Fill L2 sets with dirty lines, then trigger a prefetch into a
    // conflicting set: the outcome must carry the dirty victim as a
    // write and the prefetch as a read, all within capacity.
    CacheHierarchy hierarchy(prefetchConfig());
    // L2: 4096/2/64 = 32 sets; stride of 32 lines conflicts.
    const std::uint64_t stride = 32 * 64;
    for (int i = 0; i < 6; ++i)
        hierarchy.access(0x40000 + i * stride, true);
    const HierarchyOutcome outcome =
        hierarchy.access(0x40000 + 6 * stride - 64, false);
    ASSERT_LE(outcome.dramCount, HierarchyOutcome::kMaxDram);
    // At least the demand fill is present and flags are coherent.
    bool saw_demand_read = false;
    for (std::uint8_t d = 0; d < outcome.dramCount; ++d) {
        const DramRequest &req = outcome.dram[d];
        if (!req.isWrite && !req.isPrefetch)
            saw_demand_read = true;
        if (req.isPrefetch)
            EXPECT_FALSE(req.isWrite);
    }
    EXPECT_TRUE(saw_demand_read);
}

} // namespace
} // namespace mcdvfs
