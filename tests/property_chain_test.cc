/**
 * @file
 * Randomized (seeded) end-to-end property sweeps.
 *
 * Each parameterized case builds a random-but-deterministic workload
 * (random phase parameters, random phase script), runs the full
 * pipeline, and asserts the invariant chain that must hold for *any*
 * workload:
 *
 *  - grid cells are positive and time is monotone in CPU frequency;
 *  - per-sample inefficiency >= 1 with equality at Emin;
 *  - the optimal choice is feasible and fastest-within-noise;
 *  - clusters contain their optimum and grow with threshold;
 *  - stable regions tile the run, are maximal, and their chosen
 *    setting is in every member cluster;
 *  - policies stay within their budget end to end.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "repro/analyses.hh"
#include "sim/grid_runner.hh"
#include "trace/workloads.hh"

namespace mcdvfs
{
namespace
{

/** Deterministic random workload from a seed. */
WorkloadProfile
randomWorkload(std::uint64_t seed)
{
    Rng rng(seed);

    auto random_phase = [&rng](const std::string &name) {
        PhaseSpec spec;
        spec.name = name;
        spec.baseCpi = 0.6 + rng.uniform() * 1.0;
        spec.loadFrac = 0.15 + rng.uniform() * 0.15;
        spec.storeFrac = 0.05 + rng.uniform() * 0.10;
        spec.branchFrac = 0.05 + rng.uniform() * 0.15;
        spec.fpFrac = rng.uniform() * 0.3;
        const double warm = rng.uniform() * 0.12;
        const double cold = rng.uniform() * 0.03;
        spec.warmFrac = warm;
        spec.hotFrac = 1.0 - warm - cold;
        spec.coldSeqFrac = rng.uniform();
        spec.mlp = 1.0 + rng.uniform() * 3.0;
        spec.activity = 0.5 + rng.uniform() * 0.4;
        spec.validate();
        return spec;
    };

    const PhaseSpec a = random_phase("rand.a");
    const PhaseSpec b = random_phase("rand.b");
    const std::size_t period = 2 + rng.uniformInt(5);
    const std::size_t samples = 8 + rng.uniformInt(8);
    return WorkloadProfile(
        "random", samples,
        [a, b, period](std::size_t s) {
            return (s / period) % 2 ? b : a;
        },
        seed, /*jitter=*/0.02);
}

class RandomChainProperty
    : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    static MeasuredGrid
    buildGrid(std::uint64_t seed)
    {
        SystemConfig config;
        config.sampler.simInstructionsPerSample = 12'000;
        config.sampler.warmupInstructions = 60'000;
        GridRunner runner(config);
        return runner.run(randomWorkload(seed), SettingsSpace::coarse());
    }
};

TEST_P(RandomChainProperty, FullInvariantChain)
{
    const MeasuredGrid grid = buildGrid(GetParam());
    GridAnalyses a(grid);

    const std::size_t mem_steps = grid.space().memLadder().size();
    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        for (std::size_t k = 0; k < grid.settingCount(); ++k) {
            const GridCell &cell = grid.cell(s, k);
            ASSERT_GT(cell.seconds, 0.0);
            ASSERT_GT(cell.energy(), 0.0);
            // CPU-frequency monotonicity (one cpu step, same mem),
            // modulo measurement noise.
            if (k + mem_steps < grid.settingCount()) {
                ASSERT_LE(grid.cell(s, k + mem_steps).seconds,
                          cell.seconds * 1.01);
            }
            ASSERT_GE(a.analysis.sampleInefficiency(s, k),
                      1.0 - 1e-12);
        }
    }

    for (const double budget : {1.0, 1.2, 1.4}) {
        // Optimal choices feasible; speedup monotone in budget is
        // covered elsewhere; here: budget conformance end to end.
        const PolicyOutcome optimal = a.tradeoff.optimalTracking(budget);
        ASSERT_LE(optimal.achievedInefficiency, budget + 1e-9);

        for (const double threshold : {0.01, 0.05}) {
            const PolicyOutcome cluster =
                a.tradeoff.clusterPolicy(budget, threshold);
            ASSERT_LE(cluster.achievedInefficiency, budget + 1e-9);
            // Perf degradation bounded by the threshold.
            ASSERT_LE(optimal.time, cluster.time * (1.0 + 1e-9));
            ASSERT_GE(optimal.time,
                      cluster.time * (1.0 - threshold) - 1e-12);

            // Region invariants.
            const auto regions = a.regions.find(budget, threshold);
            ASSERT_EQ(regions.front().first, 0u);
            ASSERT_EQ(regions.back().last, grid.sampleCount() - 1);
            for (std::size_t r = 0; r < regions.size(); ++r) {
                if (r > 0) {
                    ASSERT_EQ(regions[r].first,
                              regions[r - 1].last + 1);
                }
                for (std::size_t s = regions[r].first;
                     s <= regions[r].last; ++s) {
                    const PerformanceCluster cluster_s =
                        a.clusters.clusterForSample(s, budget,
                                                    threshold);
                    ASSERT_TRUE(cluster_s.contains(
                        regions[r].chosenSettingIndex));
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomChainProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

} // namespace
} // namespace mcdvfs
