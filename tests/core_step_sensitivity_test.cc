/**
 * @file
 * Unit tests for the §VI-D step-size sensitivity analysis.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/step_sensitivity.hh"
#include "test_grid.hh"

namespace mcdvfs
{
namespace
{

TEST(StepSensitivity, IdenticalSpacesGiveIdenticalResults)
{
    GridRunner runner(test::fastSystemConfig());
    StepSensitivity sensitivity(runner);
    const StepSensitivityResult result = sensitivity.compare(
        test::phasedWorkload(), 1.3, 0.01, SettingsSpace::coarse(),
        SettingsSpace::coarse());
    EXPECT_EQ(result.coarse.settings, result.fine.settings);
    EXPECT_EQ(result.coarse.transitions, result.fine.transitions);
    EXPECT_DOUBLE_EQ(result.coarse.avgRegionLength,
                     result.fine.avgRegionLength);
    EXPECT_NEAR(result.finePerfImprovementPct(), 0.0, 1e-9);
}

TEST(StepSensitivity, FineGridHasMoreSettings)
{
    GridRunner runner(test::fastSystemConfig());
    StepSensitivity sensitivity(runner);
    const StepSensitivityResult result = sensitivity.compare(
        test::phasedWorkload(), 1.3, 0.01, SettingsSpace::coarse(),
        SettingsSpace::fine());
    EXPECT_EQ(result.coarse.settings, 70u);
    EXPECT_EQ(result.fine.settings, 496u);
}

TEST(StepSensitivity, FineGridPerfGainIsSmall)
{
    // §VI-D: "only a small improvement in performance (<1%) with an
    // increased number of frequency steps when tuning is free" —
    // allow a slightly wider band for the synthetic fixture.
    GridRunner runner(test::fastSystemConfig());
    StepSensitivity sensitivity(runner);
    const StepSensitivityResult result = sensitivity.compare(
        test::phasedWorkload(), 1.3, 0.01, SettingsSpace::coarse(),
        SettingsSpace::fine());
    EXPECT_LT(std::abs(result.finePerfImprovementPct()), 5.0);
}

TEST(StepSensitivity, FineGridClustersHaveMoreMembers)
{
    // More steps within the same frequency range means more settings
    // inside any performance band.
    GridRunner runner(test::fastSystemConfig());
    StepSensitivity sensitivity(runner);
    const StepSensitivityResult result = sensitivity.compare(
        test::phasedWorkload(), 1.3, 0.03, SettingsSpace::coarse(),
        SettingsSpace::fine());
    EXPECT_GT(result.fine.avgClusterSize,
              result.coarse.avgClusterSize);
}

TEST(StepSensitivity, CharacterizationSharedAcrossSpaces)
{
    // The comparison characterizes once; results must match grids
    // built independently from the same profiles.
    GridRunner runner(test::fastSystemConfig());
    StepSensitivity sensitivity(runner);
    const StepSensitivityResult a = sensitivity.compare(
        test::phasedWorkload(), 1.3, 0.01, SettingsSpace::coarse(),
        SettingsSpace::fine());
    const StepSensitivityResult b = sensitivity.compare(
        test::phasedWorkload(), 1.3, 0.01, SettingsSpace::coarse(),
        SettingsSpace::fine());
    EXPECT_DOUBLE_EQ(a.coarse.optimalTime, b.coarse.optimalTime);
    EXPECT_DOUBLE_EQ(a.fine.optimalTime, b.fine.optimalTime);
}

} // namespace
} // namespace mcdvfs
