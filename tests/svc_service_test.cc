/**
 * @file
 * CharacterizationService tests: tuning results, cache reuse across
 * submits, batch deduplication, and parallel/serial equivalence.
 */

#include <gtest/gtest.h>

#include "svc/characterization_service.hh"

namespace mcdvfs
{
namespace
{

WorkloadProfile
tinyWorkload(const std::string &name = "tiny")
{
    PhaseSpec cpu;
    cpu.name = "cpu";
    cpu.hotFrac = 0.98;
    cpu.warmFrac = 0.015;
    PhaseSpec mem;
    mem.name = "mem";
    mem.hotFrac = 0.80;
    mem.warmFrac = 0.10;
    mem.coldSeqFrac = 0.3;
    return WorkloadProfile(
        name, 6, [cpu, mem](std::size_t s) { return s % 2 ? mem : cpu; },
        5, /*jitter=*/0.0);
}

SystemConfig
fastConfig()
{
    SystemConfig config;
    config.sampler.simInstructionsPerSample = 20'000;
    config.sampler.warmupInstructions = 100'000;
    return config;
}

svc::TuningRequest
tinyRequest()
{
    return svc::TuningRequest{tinyWorkload(), SettingsSpace::coarse(),
                              1.3, 0.03};
}

TEST(CharacterizationService, SubmitProducesFullTuningResult)
{
    svc::CharacterizationService service(fastConfig());
    const svc::TuningResult result = service.submit(tinyRequest());

    ASSERT_NE(result.grid, nullptr);
    EXPECT_EQ(result.grid->sampleCount(), 6u);
    EXPECT_EQ(result.grid->settingCount(), 70u);
    EXPECT_EQ(result.optimal.size(), 6u);
    EXPECT_EQ(result.clusters.size(), 6u);
    ASSERT_FALSE(result.regions.empty());
    EXPECT_FALSE(result.cacheHit);
    EXPECT_EQ(result.budget, 1.3);

    // Regions tile the run.
    EXPECT_EQ(result.regions.front().first, 0u);
    EXPECT_EQ(result.regions.back().last, 5u);
    for (std::size_t r = 1; r < result.regions.size(); ++r)
        EXPECT_EQ(result.regions[r].first,
                  result.regions[r - 1].last + 1);

    // Every optimum respects the budget.
    for (const OptimalChoice &choice : result.optimal)
        EXPECT_LE(choice.inefficiency, 1.3 * (1.0 + 1e-12));
}

TEST(CharacterizationService, RepeatedSubmitHitsCacheAndSkipsRecharacterization)
{
    svc::CharacterizationService service(fastConfig());
    const svc::TuningResult first = service.submit(tinyRequest());
    EXPECT_FALSE(first.cacheHit);
    EXPECT_EQ(service.cacheStats().misses, 1u);
    EXPECT_EQ(service.cacheStats().hits, 0u);

    // Same workload content, different object; different budget — the
    // grid is keyed on content only, so this must be served from cache.
    svc::TuningRequest again = tinyRequest();
    again.budget = 1.5;
    const svc::TuningResult second = service.submit(again);
    EXPECT_TRUE(second.cacheHit);
    EXPECT_EQ(second.grid.get(), first.grid.get());
    EXPECT_EQ(service.cacheStats().misses, 1u);
    EXPECT_EQ(service.cacheStats().hits, 1u);
}

TEST(CharacterizationService, DistinctConfigsDoNotShareGrids)
{
    svc::CharacterizationService fast(fastConfig());
    SystemConfig other = fastConfig();
    other.measurementNoise = 0.0;
    svc::CharacterizationService noiseless(other);

    const auto a = fast.submit(tinyRequest());
    const auto b = noiseless.submit(tinyRequest());
    EXPECT_FALSE(b.cacheHit);
    EXPECT_NE(a.grid->cell(0, 0).seconds, b.grid->cell(0, 0).seconds);
}

TEST(CharacterizationService, BatchDeduplicatesIdenticalCharacterizations)
{
    svc::ServiceOptions options;
    options.jobs = 4;
    svc::CharacterizationService service(fastConfig(), options);

    svc::TuningRequest low = tinyRequest();
    svc::TuningRequest high = tinyRequest();
    high.budget = 1.6;
    svc::TuningRequest other{tinyWorkload("tiny2"),
                             SettingsSpace::coarse(), 1.3, 0.03};

    const std::vector<svc::TuningResult> results =
        service.submitBatch({low, high, other, low});
    ASSERT_EQ(results.size(), 4u);

    // Three requests share one characterization; only two grids were
    // ever built.
    EXPECT_EQ(results[0].grid.get(), results[1].grid.get());
    EXPECT_EQ(results[0].grid.get(), results[3].grid.get());
    EXPECT_NE(results[0].grid.get(), results[2].grid.get());
    EXPECT_EQ(service.cacheStats().misses, 2u);

    // Budgets were honored per request despite the shared grid.
    EXPECT_EQ(results[1].budget, 1.6);
    for (const OptimalChoice &choice : results[1].optimal)
        EXPECT_LE(choice.inefficiency, 1.6 * (1.0 + 1e-12));
}

TEST(CharacterizationService, ParallelServiceMatchesSerialBitForBit)
{
    svc::ServiceOptions serial_opts;
    serial_opts.jobs = 1;
    svc::ServiceOptions parallel_opts;
    parallel_opts.jobs = 8;
    svc::CharacterizationService serial(fastConfig(), serial_opts);
    svc::CharacterizationService parallel(fastConfig(), parallel_opts);

    const auto a = serial.submit(tinyRequest());
    const auto b = parallel.submit(tinyRequest());
    for (std::size_t s = 0; s < a.grid->sampleCount(); ++s) {
        for (std::size_t k = 0; k < a.grid->settingCount(); ++k) {
            const GridCell &ca = a.grid->cell(s, k);
            const GridCell &cb = b.grid->cell(s, k);
            ASSERT_EQ(ca.seconds, cb.seconds);
            ASSERT_EQ(ca.cpuEnergy, cb.cpuEnergy);
            ASSERT_EQ(ca.memEnergy, cb.memEnergy);
        }
    }
    // Identical grids imply identical analyses.
    ASSERT_EQ(a.regions.size(), b.regions.size());
    for (std::size_t r = 0; r < a.regions.size(); ++r) {
        EXPECT_EQ(a.regions[r].first, b.regions[r].first);
        EXPECT_EQ(a.regions[r].last, b.regions[r].last);
        EXPECT_EQ(a.regions[r].chosenSettingIndex,
                  b.regions[r].chosenSettingIndex);
    }
}

} // namespace
} // namespace mcdvfs
