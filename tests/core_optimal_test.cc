/**
 * @file
 * Unit and property tests for the §V optimal-settings search.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

#include <algorithm>

#include "core/optimal_settings.hh"
#include "test_grid.hh"

namespace mcdvfs
{
namespace
{

TEST(OptimalSettings, BudgetBelowOneThrows)
{
    InefficiencyAnalysis analysis(test::phasedGrid());
    OptimalSettingsFinder finder(analysis);
    EXPECT_THROW(finder.feasibleSettings(0, 0.9), FatalError);
    EXPECT_THROW(finder.optimalForSample(0, 0.5), FatalError);
}

TEST(OptimalSettings, NegativeNoiseThresholdThrows)
{
    InefficiencyAnalysis analysis(test::phasedGrid());
    EXPECT_THROW(OptimalSettingsFinder(analysis, -0.1), FatalError);
}

TEST(OptimalSettings, ChoiceIsAlwaysFeasible)
{
    InefficiencyAnalysis analysis(test::phasedGrid());
    OptimalSettingsFinder finder(analysis);
    for (const double budget : {1.0, 1.15, 1.3, 1.6}) {
        for (std::size_t s = 0;
             s < test::phasedGrid().sampleCount(); ++s) {
            const OptimalChoice choice =
                finder.optimalForSample(s, budget);
            ASSERT_LE(choice.inefficiency, budget + 1e-12);
        }
    }
}

TEST(OptimalSettings, BudgetOnePicksEminSetting)
{
    const MeasuredGrid &grid = test::phasedGrid();
    InefficiencyAnalysis analysis(grid);
    OptimalSettingsFinder finder(analysis);
    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        const OptimalChoice choice = finder.optimalForSample(s, 1.0);
        ASSERT_NEAR(grid.cell(s, choice.settingIndex).energy(),
                    grid.sampleEmin(s),
                    grid.sampleEmin(s) * 1e-9);
    }
}

TEST(OptimalSettings, UnboundedPicksMaxPerformance)
{
    const MeasuredGrid &grid = test::phasedGrid();
    InefficiencyAnalysis analysis(grid);
    OptimalSettingsFinder finder(analysis);
    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        const OptimalChoice choice =
            finder.optimalForSample(s, kUnboundedBudget);
        // Max setting is the fastest (monotone model) and wins the
        // tie-break.
        ASSERT_TRUE(choice.setting == grid.space().maxSetting());
    }
}

TEST(OptimalSettings, FeasibleSetsNestedInBudget)
{
    InefficiencyAnalysis analysis(test::phasedGrid());
    OptimalSettingsFinder finder(analysis);
    for (std::size_t s = 0; s < test::phasedGrid().sampleCount();
         s += 3) {
        const auto narrow = finder.feasibleSettings(s, 1.1);
        const auto wide = finder.feasibleSettings(s, 1.4);
        ASSERT_GE(wide.size(), narrow.size());
        for (const std::size_t k : narrow) {
            ASSERT_TRUE(std::find(wide.begin(), wide.end(), k) !=
                        wide.end());
        }
    }
}

TEST(OptimalSettings, SpeedupMonotoneInBudget)
{
    InefficiencyAnalysis analysis(test::phasedGrid());
    OptimalSettingsFinder finder(analysis);
    for (std::size_t s = 0; s < test::phasedGrid().sampleCount();
         ++s) {
        double prev = 0.0;
        for (const double budget : {1.0, 1.1, 1.2, 1.3, 1.6, 2.0}) {
            const double speedup =
                finder.optimalForSample(s, budget).speedup;
            ASSERT_GE(speedup, prev - 1e-12);
            prev = speedup;
        }
    }
}

TEST(OptimalSettings, TieBreakPrefersHighCpuThenMem)
{
    // With a huge noise window every feasible setting ties, so the
    // tie-break alone decides: highest CPU, then highest memory.
    const MeasuredGrid &grid = test::phasedGrid();
    InefficiencyAnalysis analysis(grid);
    OptimalSettingsFinder loose(analysis, /*noise_threshold=*/1.0);
    const OptimalChoice choice =
        loose.optimalForSample(0, kUnboundedBudget);
    EXPECT_TRUE(choice.setting == grid.space().maxSetting());
}

TEST(OptimalSettings, TrajectoryCoversAllSamples)
{
    const MeasuredGrid &grid = test::phasedGrid();
    InefficiencyAnalysis analysis(grid);
    OptimalSettingsFinder finder(analysis);
    const auto trajectory = finder.optimalTrajectory(1.3);
    ASSERT_EQ(trajectory.size(), grid.sampleCount());
    for (std::size_t s = 0; s < trajectory.size(); ++s) {
        ASSERT_DOUBLE_EQ(trajectory[s].speedup,
                         analysis.sampleSpeedup(
                             s, trajectory[s].settingIndex));
    }
}

TEST(OptimalSettings, PhasesGetDifferentOptima)
{
    // The fixture alternates cpu/mem phases every 3 samples; at a
    // binding budget the optima must differ across phases somewhere.
    InefficiencyAnalysis analysis(test::phasedGrid());
    OptimalSettingsFinder finder(analysis);
    const auto trajectory = finder.optimalTrajectory(1.0);
    bool differs = false;
    for (std::size_t s = 1; s < trajectory.size(); ++s)
        differs |= !(trajectory[s].setting == trajectory[0].setting);
    EXPECT_TRUE(differs);
}

/** Property sweep over budgets x noise thresholds. */
class OptimalProperty
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(OptimalProperty, OptimumIsBestFeasibleSpeedup)
{
    const auto [budget, noise] = GetParam();
    const MeasuredGrid &grid = test::phasedGrid();
    InefficiencyAnalysis analysis(grid);
    OptimalSettingsFinder finder(analysis, noise);
    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        const OptimalChoice choice = finder.optimalForSample(s, budget);
        double best = 0.0;
        for (const std::size_t k : finder.feasibleSettings(s, budget))
            best = std::max(best, analysis.sampleSpeedup(s, k));
        // Within the noise window of the best feasible speedup.
        ASSERT_GE(choice.speedup, best * (1.0 - noise) - 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OptimalProperty,
    ::testing::Values(std::make_pair(1.0, 0.005),
                      std::make_pair(1.2, 0.005),
                      std::make_pair(1.3, 0.0),
                      std::make_pair(1.6, 0.02),
                      std::make_pair(kUnboundedBudget, 0.005)));

} // namespace
} // namespace mcdvfs
