/**
 * @file
 * Unit and property tests for stable regions (§VI-B).
 *
 * The defining invariants: regions tile the run; every region has at
 * least one setting common to all its samples' clusters; the region
 * is maximal (extending it by one sample would empty the common set);
 * the chosen setting is the preferred (highest CPU, then memory)
 * common setting.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/stable_regions.hh"
#include "test_grid.hh"

namespace mcdvfs
{
namespace
{

struct Chain
{
    InefficiencyAnalysis analysis;
    OptimalSettingsFinder finder;
    ClusterFinder clusters;
    StableRegionFinder regions;

    explicit Chain(const MeasuredGrid &grid)
        : analysis(grid), finder(analysis), clusters(finder),
          regions(clusters)
    {
    }
};

TEST(StableRegions, TileTheRun)
{
    const MeasuredGrid &grid = test::phasedGrid();
    Chain chain(grid);
    const auto regions = chain.regions.find(1.3, 0.03);
    ASSERT_FALSE(regions.empty());
    EXPECT_EQ(regions.front().first, 0u);
    EXPECT_EQ(regions.back().last, grid.sampleCount() - 1);
    for (std::size_t r = 1; r < regions.size(); ++r)
        ASSERT_EQ(regions[r].first, regions[r - 1].last + 1);
}

TEST(StableRegions, ChosenSettingInEveryMemberCluster)
{
    const MeasuredGrid &grid = test::phasedGrid();
    Chain chain(grid);
    const double budget = 1.3;
    const double threshold = 0.05;
    for (const StableRegion &region :
         chain.regions.find(budget, threshold)) {
        for (std::size_t s = region.first; s <= region.last; ++s) {
            const PerformanceCluster cluster =
                chain.clusters.clusterForSample(s, budget, threshold);
            ASSERT_TRUE(cluster.contains(region.chosenSettingIndex))
                << "region [" << region.first << "," << region.last
                << "] setting not in cluster of sample " << s;
        }
    }
    (void)grid;
}

TEST(StableRegions, RegionsAreMaximal)
{
    const MeasuredGrid &grid = test::phasedGrid();
    Chain chain(grid);
    const double budget = 1.3;
    const double threshold = 0.03;
    const auto regions = chain.regions.find(budget, threshold);
    for (std::size_t r = 0; r + 1 < regions.size(); ++r) {
        // No available setting of region r is in the next sample's
        // cluster (otherwise the region would have been extended).
        const PerformanceCluster next = chain.clusters.clusterForSample(
            regions[r].last + 1, budget, threshold);
        for (const std::size_t k : regions[r].availableSettings)
            ASSERT_FALSE(next.contains(k));
    }
}

TEST(StableRegions, ChosenIsPreferredCommonSetting)
{
    const MeasuredGrid &grid = test::phasedGrid();
    Chain chain(grid);
    for (const StableRegion &region : chain.regions.find(1.3, 0.05)) {
        for (const std::size_t k : region.availableSettings) {
            ASSERT_FALSE(settingPreferred(
                grid.space().at(k),
                grid.space().at(region.chosenSettingIndex)));
        }
        ASSERT_TRUE(grid.space().at(region.chosenSettingIndex) ==
                    region.chosenSetting);
    }
}

TEST(StableRegions, SteadyWorkloadNeedsFewRegions)
{
    // A constant-phase workload with a tolerant threshold collapses
    // to very few regions.
    Chain chain(test::steadyGrid());
    const auto regions = chain.regions.find(1.3, 0.05);
    EXPECT_LE(regions.size(), 3u);
}

TEST(StableRegions, LengthAccessor)
{
    StableRegion region;
    region.first = 4;
    region.last = 9;
    EXPECT_EQ(region.length(), 6u);
}

TEST(StableRegions, FromClustersMatchesFind)
{
    Chain chain(test::phasedGrid());
    const auto direct = chain.regions.find(1.3, 0.03);
    const auto via = chain.regions.fromClusters(
        chain.clusters.clusters(1.3, 0.03));
    ASSERT_EQ(direct.size(), via.size());
    for (std::size_t r = 0; r < direct.size(); ++r) {
        EXPECT_EQ(direct[r].first, via[r].first);
        EXPECT_EQ(direct[r].last, via[r].last);
        EXPECT_EQ(direct[r].chosenSettingIndex,
                  via[r].chosenSettingIndex);
    }
}

/**
 * Property (§VI summary point 1): wider thresholds produce no more
 * regions than narrower ones on the same grid/budget.
 */
class RegionThresholdProperty
    : public ::testing::TestWithParam<double /*budget*/>
{
};

TEST_P(RegionThresholdProperty, RegionCountNonIncreasingInThreshold)
{
    Chain chain(test::phasedGrid());
    const double budget = GetParam();
    std::size_t prev = SIZE_MAX;
    for (const double threshold : {0.0, 0.01, 0.03, 0.05, 0.10}) {
        const std::size_t count =
            chain.regions.find(budget, threshold).size();
        ASSERT_LE(count, prev)
            << "threshold " << threshold << " at budget " << budget;
        prev = count;
    }
}

INSTANTIATE_TEST_SUITE_P(Budgets, RegionThresholdProperty,
                         ::testing::Values(1.0, 1.2, 1.3, 1.6,
                                           kUnboundedBudget));

} // namespace
} // namespace mcdvfs
