/**
 * @file
 * Unit tests for the Pareto-frontier analysis.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/pareto.hh"
#include "test_grid.hh"

namespace mcdvfs
{
namespace
{

TEST(Pareto, FrontierNonEmptyAndSorted)
{
    InefficiencyAnalysis analysis(test::phasedGrid());
    ParetoAnalysis pareto(analysis);
    const auto frontier = pareto.runFrontier();
    ASSERT_FALSE(frontier.empty());
    for (std::size_t i = 1; i < frontier.size(); ++i)
        EXPECT_GE(frontier[i].time, frontier[i - 1].time);
}

TEST(Pareto, FrontierPointsAreMutuallyNonDominated)
{
    InefficiencyAnalysis analysis(test::phasedGrid());
    ParetoAnalysis pareto(analysis);
    const auto frontier = pareto.runFrontier();
    for (const auto &a : frontier) {
        for (const auto &b : frontier) {
            if (a.settingIndex != b.settingIndex)
                EXPECT_FALSE(pareto.dominates(a.settingIndex,
                                              b.settingIndex));
        }
    }
}

TEST(Pareto, EveryNonFrontierPointIsDominated)
{
    const MeasuredGrid &grid = test::phasedGrid();
    InefficiencyAnalysis analysis(grid);
    ParetoAnalysis pareto(analysis);
    const auto frontier = pareto.runFrontier();
    auto on_frontier = [&frontier](std::size_t k) {
        return std::any_of(frontier.begin(), frontier.end(),
                           [k](const ParetoPoint &p) {
                               return p.settingIndex == k;
                           });
    };
    for (std::size_t k = 0; k < grid.settingCount(); ++k) {
        if (on_frontier(k))
            continue;
        bool dominated = false;
        for (std::size_t other = 0;
             other < grid.settingCount() && !dominated; ++other)
            dominated = other != k && pareto.dominates(other, k);
        EXPECT_TRUE(dominated) << "setting " << k;
    }
}

TEST(Pareto, FastestAndMostEfficientAreOnFrontier)
{
    const MeasuredGrid &grid = test::phasedGrid();
    InefficiencyAnalysis analysis(grid);
    ParetoAnalysis pareto(analysis);
    const auto frontier = pareto.runFrontier();

    // The fastest setting can't be dominated on time; Emin can't be
    // dominated on energy.
    double best_time = 1e18;
    double best_energy = 1e18;
    for (std::size_t k = 0; k < grid.settingCount(); ++k) {
        best_time = std::min(best_time, grid.totalTime(k));
        best_energy = std::min(best_energy, grid.totalEnergy(k));
    }
    EXPECT_NEAR(frontier.front().time, best_time, best_time * 1e-12);
    bool has_emin = false;
    for (const auto &point : frontier)
        has_emin |= point.energy <= best_energy * (1.0 + 1e-12);
    EXPECT_TRUE(has_emin);
}

TEST(Pareto, MostSettingsAreIncorrect)
{
    // The intro's warning quantified: the joint space is mostly
    // dominated settings.
    InefficiencyAnalysis analysis(test::phasedGrid());
    ParetoAnalysis pareto(analysis);
    EXPECT_GT(pareto.dominatedFraction(), 0.5);
    EXPECT_LT(pareto.dominatedFraction(), 1.0);
}

TEST(Pareto, SampleFrontiersExist)
{
    const MeasuredGrid &grid = test::phasedGrid();
    InefficiencyAnalysis analysis(grid);
    ParetoAnalysis pareto(analysis);
    for (std::size_t s = 0; s < grid.sampleCount(); s += 4) {
        const auto frontier = pareto.sampleFrontier(s);
        EXPECT_GE(frontier.size(), 2u);
        EXPECT_LT(frontier.size(), grid.settingCount());
    }
}

TEST(Pareto, FrontierInefficiencySpansFromOne)
{
    // Emin (I = 1) is always on the whole-run frontier.
    InefficiencyAnalysis analysis(test::phasedGrid());
    ParetoAnalysis pareto(analysis);
    double min_i = 1e18;
    for (const auto &point : pareto.runFrontier())
        min_i = std::min(min_i, point.inefficiency);
    EXPECT_NEAR(min_i, 1.0, 1e-9);
}

} // namespace
} // namespace mcdvfs
