/**
 * @file
 * Randomized robustness tests for the binary grid snapshot loader.
 *
 * A snapshot read off disk can be truncated (crash mid-copy) or
 * corrupted (bit rot, torn write) at any byte.  The loader's contract
 * is that every such input raises FatalError with a diagnostic — never
 * UB, never a silently partial grid.  These tests take pristine
 * two-domain (v1) and three-domain (v2) snapshots and replay them
 * through randomized truncation at every header byte plus sampled
 * payload lengths, and single-byte XOR corruption at sampled offsets;
 * the sanitize script runs this binary under ASan/UBSan so "never UB"
 * is machine-checked, not asserted.
 */

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "sim/grid_io.hh"
#include "test_grid.hh"

namespace mcdvfs
{
namespace
{

/** steadyWorkload over the 560-setting three-domain space. */
const MeasuredGrid &
gpuGrid()
{
    static const MeasuredGrid grid = [] {
        GridRunner runner(test::fastSystemConfig());
        return runner.run(test::steadyWorkload(),
                          SettingsSpace::coarse3());
    }();
    return grid;
}

/** Assert the loader throws (and only throws) on @c bytes. */
void
expectRejected(const std::string &bytes, const char *what)
{
    EXPECT_THROW(loadGridBinaryFromString(bytes), FatalError) << what;
}

void
fuzzSnapshot(const MeasuredGrid &grid, std::uint64_t seed)
{
    const std::string pristine = saveGridBinaryToString(grid);
    ASSERT_GT(pristine.size(), 64u);

    // The pristine bytes round-trip bit-identically (the baseline the
    // rejections below are measured against).
    EXPECT_EQ(saveGridBinaryToString(loadGridBinaryFromString(pristine)),
              pristine);

    // Truncation at every header byte: magic, version, length and
    // checksum words all live in the first 64 bytes.
    for (std::size_t len = 0; len < 64; ++len)
        expectRejected(pristine.substr(0, len), "header truncation");

    // Truncation at sampled payload lengths (every prefix would be
    // quadratic in snapshot size; 256 random cuts plus the last bytes
    // cover the interesting boundaries).
    Rng rng(seed);
    for (int i = 0; i < 256; ++i) {
        const std::size_t len = 64 + rng.uniformInt(pristine.size() - 64);
        expectRejected(pristine.substr(0, len), "payload truncation");
    }
    for (std::size_t back = 1; back <= 8; ++back) {
        expectRejected(pristine.substr(0, pristine.size() - back),
                       "tail truncation");
    }

    // Single-byte corruption at sampled offsets: header damage trips
    // the magic/version/length checks, payload damage the checksum.
    for (int i = 0; i < 256; ++i) {
        std::string corrupt = pristine;
        const std::size_t pos = rng.uniformInt(corrupt.size());
        corrupt[pos] = static_cast<char>(
            corrupt[pos] ^
            static_cast<char>(1 + rng.uniformInt(255)));
        expectRejected(corrupt, "single-byte corruption");
    }

    // The length field pins the payload extent: bytes appended after
    // it (stream framing) must not leak into the parse.
    EXPECT_EQ(saveGridBinaryToString(loadGridBinaryFromString(
                  pristine + std::string(16, '\0'))),
              pristine);
}

TEST(GridIoFuzz, TwoDomainSnapshotNeverLoadsMalformedInput)
{
    fuzzSnapshot(test::phasedGrid(), 0x6B1D);
}

TEST(GridIoFuzz, ThreeDomainSnapshotNeverLoadsMalformedInput)
{
    fuzzSnapshot(gpuGrid(), 0x6B2D);
}

TEST(GridIoFuzz, VersionSkewIsRejectedNotMisparsed)
{
    // A v2 (three-domain) snapshot whose version word is rewritten to
    // v1 parses the payload with the wrong cell width; the payload
    // plausibility check must reject it rather than shear the columns.
    std::string bytes = saveGridBinaryToString(gpuGrid());
    ASSERT_EQ(bytes[8], 2);  // version word, little-endian low byte
    bytes[8] = 1;
    expectRejected(bytes, "v2 masqueraded as v1");

    // Unknown future version.
    std::string future = saveGridBinaryToString(test::phasedGrid());
    future[8] = 0x7e;
    expectRejected(future, "future version");
}

TEST(GridIoFuzz, TextFormatRejectsTruncationAtLineGranularity)
{
    // The text format is line-oriented: dropping trailing lines must
    // fail the loader's completeness checks, not yield a partial grid.
    const std::string text = saveGridToString(test::phasedGrid());
    std::size_t lines = 0;
    for (const char c : text)
        lines += c == '\n';
    ASSERT_GT(lines, 8u);

    // The pristine text loads; every truncation below must not.
    EXPECT_EQ(loadGridFromString(text).sampleCount(),
              test::phasedGrid().sampleCount());
    std::size_t cut = text.size() - 1;  // skip the final newline
    for (std::size_t dropped = 1; dropped <= 32; ++dropped) {
        cut = text.find_last_of('\n', cut - 1);
        if (cut == std::string::npos || cut == 0)
            break;
        EXPECT_THROW(loadGridFromString(text.substr(0, cut + 1)),
                     FatalError)
            << "dropped " << dropped << " lines";
    }
}

} // namespace
} // namespace mcdvfs
