/**
 * @file
 * Unit tests for the optimal-settings search strategies (§VI-B/§VII
 * warm-start claim, on the energy-constrained problem).
 */

#include <gtest/gtest.h>

#include "core/search_strategies.hh"
#include "test_grid.hh"

namespace mcdvfs
{
namespace
{

struct Chain
{
    InefficiencyAnalysis analysis;
    SettingsSearch search;

    explicit Chain(const MeasuredGrid &grid)
        : analysis(grid), search(analysis)
    {
    }
};

TEST(SettingsSearch, BruteForceEvaluatesWholeSpace)
{
    const MeasuredGrid &grid = test::phasedGrid();
    Chain chain(grid);
    const SearchOutcome outcome = chain.search.bruteForce(0, 1.3);
    EXPECT_EQ(outcome.evaluations, grid.settingCount());
    EXPECT_GT(outcome.speedup, 1.0);
}

TEST(SettingsSearch, BruteForceMatchesFinder)
{
    const MeasuredGrid &grid = test::phasedGrid();
    Chain chain(grid);
    OptimalSettingsFinder finder(chain.analysis,
                                 /*noise_threshold=*/0.0);
    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        const SearchOutcome search = chain.search.bruteForce(s, 1.3);
        const OptimalChoice choice = finder.optimalForSample(s, 1.3);
        EXPECT_NEAR(search.speedup, choice.speedup,
                    choice.speedup * 1e-12)
            << "sample " << s;
    }
}

TEST(SettingsSearch, ClimbResultIsFeasible)
{
    Chain chain(test::phasedGrid());
    for (const double budget : {1.0, 1.2, 1.4}) {
        const SearchTrajectory trajectory =
            chain.search.runColdClimb(budget);
        for (std::size_t s = 0;
             s < trajectory.perSample.size(); ++s) {
            EXPECT_LE(chain.analysis.sampleInefficiency(
                          s, trajectory.perSample[s].settingIndex),
                      budget + 1e-12);
        }
    }
}

TEST(SettingsSearch, WarmClimbUsesFewerEvaluationsThanBruteForce)
{
    // Cold-starting at the minimum setting can be *infeasible*
    // (running slowest is often over budget — §IV observation 1), so
    // the cold climb may pay a fallback Emin scan.  The warm start
    // avoids that and must beat brute force clearly.
    Chain chain(test::phasedGrid());
    const SearchTrajectory brute = chain.search.runBruteForce(1.3);
    const SearchTrajectory warm = chain.search.runWarmClimb(1.3);
    EXPECT_LT(warm.totalEvaluations, brute.totalEvaluations / 2);
}

TEST(SettingsSearch, WarmStartBeatsColdStart)
{
    // §VI-B: starting from the previous interval's answer is cheaper
    // because phases are often stable.
    Chain chain(test::phasedGrid());
    const SearchTrajectory cold = chain.search.runColdClimb(1.3);
    const SearchTrajectory warm = chain.search.runWarmClimb(1.3);
    EXPECT_LT(warm.totalEvaluations, cold.totalEvaluations);
}

TEST(SettingsSearch, ClimbGapIsSmall)
{
    // The lattice is benign enough that hill climbing lands within a
    // few percent of brute force on average.
    Chain chain(test::phasedGrid());
    EXPECT_EQ(chain.search.runBruteForce(1.3).optimalityGapPct, 0.0);
    EXPECT_LT(chain.search.runColdClimb(1.3).optimalityGapPct, 5.0);
    EXPECT_LT(chain.search.runWarmClimb(1.3).optimalityGapPct, 5.0);
}

TEST(SettingsSearch, InfeasibleWarmStartRecovers)
{
    // Starting the climb from the max setting when it is over budget
    // must still return a feasible answer.
    const MeasuredGrid &grid = test::phasedGrid();
    Chain chain(grid);
    const std::size_t max_idx =
        grid.space().indexOf(grid.space().maxSetting());
    const SearchOutcome outcome =
        chain.search.hillClimb(0, 1.0 + 1e-9, max_idx);
    EXPECT_LE(chain.analysis.sampleInefficiency(
                  0, outcome.settingIndex),
              1.0 + 1e-6);
}

} // namespace
} // namespace mcdvfs
