/**
 * @file
 * Unit tests for the DRAMPower-style LPDDR3 energy model.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/logging.hh"
#include "power/dram_power.hh"

namespace mcdvfs
{
namespace
{

TEST(DramPower, BackgroundDropsNearlyLinearlyWithFrequency)
{
    // The effect behind the paper's bzip2 example: 1/4 the memory
    // background energy at 200 vs 800 MHz (§V).
    const DramPowerModel model = DramPowerModel::paperDefault();
    const double ratio = model.backgroundPower(megaHertz(200)) /
                         model.backgroundPower(megaHertz(800));
    EXPECT_GT(ratio, 0.20);
    EXPECT_LT(ratio, 0.45);
}

TEST(DramPower, BackgroundIncludesRefresh)
{
    DramPowerParams params;
    DramPowerParams no_refresh = params;
    no_refresh.idd5 = no_refresh.idd3n;  // refresh delta becomes zero
    const DramPowerModel with(params, DramTiming{}, DramConfig{});
    const DramPowerModel without(no_refresh, DramTiming{}, DramConfig{});
    EXPECT_GT(with.backgroundPower(megaHertz(800)),
              without.backgroundPower(megaHertz(800)));
}

TEST(DramPower, PhoneClassMagnitudes)
{
    const DramPowerModel model = DramPowerModel::paperDefault();
    const Watts bg = model.backgroundPower(megaHertz(800));
    EXPECT_GT(bg, milliWatts(40));
    EXPECT_LT(bg, milliWatts(200));
    const Joules read = model.readEnergy(megaHertz(800));
    EXPECT_GT(read, 1e-9);   // > 1 nJ per 64B line
    EXPECT_LT(read, 20e-9);  // < 20 nJ
}

TEST(DramPower, OperationEnergiesPositive)
{
    const DramPowerModel model = DramPowerModel::paperDefault();
    for (const double mhz : {200.0, 400.0, 600.0, 800.0}) {
        EXPECT_GT(model.activateEnergy(megaHertz(mhz)), 0.0);
        EXPECT_GT(model.readEnergy(megaHertz(mhz)), 0.0);
        EXPECT_GT(model.writeEnergy(megaHertz(mhz)), 0.0);
    }
}

TEST(DramPower, PerLineEnergyGrowsAtLowFrequency)
{
    // Fixed overheads dominate longer bursts: energy per transferred
    // line rises somewhat as frequency drops.
    const DramPowerModel model = DramPowerModel::paperDefault();
    EXPECT_GT(model.readEnergy(megaHertz(200)),
              model.readEnergy(megaHertz(800)));
    // ... but not absurdly (bounded by the static fraction).
    EXPECT_LT(model.readEnergy(megaHertz(200)),
              model.readEnergy(megaHertz(800)) * 4.0);
}

TEST(DramPower, EnergyComposition)
{
    const DramPowerModel model = DramPowerModel::paperDefault();
    DramStats stats;
    stats.reads = 1000;
    stats.writes = 400;
    stats.rowHits = 1000;
    stats.rowClosed = 100;
    stats.rowConflicts = 300;
    const Hertz f = megaHertz(600);
    const Seconds window = 0.01;
    const DramEnergyBreakdown breakdown =
        model.energy(stats, f, window);

    EXPECT_NEAR(breakdown.background,
                model.backgroundPower(f) * window, 1e-12);
    EXPECT_NEAR(breakdown.activate, model.activateEnergy(f) * 400.0,
                1e-12);
    EXPECT_NEAR(breakdown.readWrite,
                model.readEnergy(f) * 1000.0 +
                    model.writeEnergy(f) * 400.0,
                1e-12);
    EXPECT_NEAR(breakdown.total(),
                breakdown.background + breakdown.activate +
                    breakdown.readWrite,
                1e-15);
}

TEST(DramPower, IdleWindowOnlyBackground)
{
    const DramPowerModel model = DramPowerModel::paperDefault();
    const DramEnergyBreakdown breakdown =
        model.energy(DramStats{}, megaHertz(800), 1.0);
    EXPECT_EQ(breakdown.activate, 0.0);
    EXPECT_EQ(breakdown.readWrite, 0.0);
    EXPECT_GT(breakdown.background, 0.0);
}

TEST(DramPower, Validation)
{
    DramPowerParams params;
    params.specFreq = 0.0;
    EXPECT_THROW(DramPowerModel(params, DramTiming{}, DramConfig{}),
                 FatalError);
    params = DramPowerParams{};
    params.backgroundStaticFrac = 1.5;
    EXPECT_THROW(DramPowerModel(params, DramTiming{}, DramConfig{}),
                 FatalError);
    params = DramPowerParams{};
    params.vdd2 = -1.0;
    EXPECT_THROW(DramPowerModel(params, DramTiming{}, DramConfig{}),
                 FatalError);
}

} // namespace
} // namespace mcdvfs
