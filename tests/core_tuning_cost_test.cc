/**
 * @file
 * Unit tests for the §VI-C tuning-overhead model.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

#include "core/tuning_cost.hh"

namespace mcdvfs
{
namespace
{

TEST(TuningCost, ReferenceSpaceCostsMatchPaper)
{
    // §VI-C: 500 us and 30 uJ per tuning event over 70 settings.
    const TuningCostModel model;
    EXPECT_NEAR(model.eventLatency(70), microSeconds(500), 1e-12);
    EXPECT_NEAR(model.eventEnergy(70), microJoules(30), 1e-15);
}

TEST(TuningCost, SearchComponentScalesLinearly)
{
    const TuningCostModel model;
    const Seconds at70 = model.eventLatency(70);
    const Seconds at140 = model.eventLatency(140);
    const double search = model.params().searchFraction;
    // Doubling the space doubles only the search share.
    EXPECT_NEAR(at140 / at70, 1.0 + search, 1e-9);
}

TEST(TuningCost, FineSpaceCostsMore)
{
    const TuningCostModel model;
    EXPECT_GT(model.eventLatency(496), model.eventLatency(70) * 4.0);
    EXPECT_GT(model.eventEnergy(496), model.eventEnergy(70) * 4.0);
}

TEST(TuningCost, OverheadMultipliesByEvents)
{
    const TuningCostModel model;
    const TuningOverhead overhead = model.overhead(10, 70);
    EXPECT_EQ(overhead.events, 10u);
    EXPECT_NEAR(overhead.latency, model.eventLatency(70) * 10.0,
                1e-12);
    EXPECT_NEAR(overhead.energy, model.eventEnergy(70) * 10.0, 1e-15);
}

TEST(TuningCost, ZeroEventsFree)
{
    const TuningCostModel model;
    const TuningOverhead overhead = model.overhead(0, 70);
    EXPECT_EQ(overhead.latency, 0.0);
    EXPECT_EQ(overhead.energy, 0.0);
}

TEST(TuningCost, Validation)
{
    TuningCostParams params;
    params.latencyPerEvent = -1.0;
    EXPECT_THROW(TuningCostModel{params}, FatalError);
    params = TuningCostParams{};
    params.referenceSettings = 0;
    EXPECT_THROW(TuningCostModel{params}, FatalError);
    params = TuningCostParams{};
    params.searchFraction = 2.0;
    EXPECT_THROW(TuningCostModel{params}, FatalError);
}

} // namespace
} // namespace mcdvfs
