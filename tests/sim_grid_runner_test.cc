/**
 * @file
 * End-to-end tests for grid construction.
 */

#include <gtest/gtest.h>

#include "sim/grid_runner.hh"
#include "sim/reference_kernel.hh"

namespace mcdvfs
{
namespace
{

WorkloadProfile
tinyWorkload()
{
    PhaseSpec cpu;
    cpu.name = "cpu";
    cpu.hotFrac = 0.98;
    cpu.warmFrac = 0.015;
    PhaseSpec mem;
    mem.name = "mem";
    mem.hotFrac = 0.80;
    mem.warmFrac = 0.10;
    mem.coldSeqFrac = 0.3;
    return WorkloadProfile(
        "tiny", 6,
        [cpu, mem](std::size_t s) { return s % 2 ? mem : cpu; }, 5,
        /*jitter=*/0.0);
}

SystemConfig
fastConfig()
{
    SystemConfig config;
    config.sampler.simInstructionsPerSample = 20'000;
    config.sampler.warmupInstructions = 100'000;
    return config;
}

TEST(GridRunner, GridShapeAndPositivity)
{
    GridRunner runner(fastConfig());
    const MeasuredGrid grid =
        runner.run(tinyWorkload(), SettingsSpace::coarse());
    EXPECT_EQ(grid.sampleCount(), 6u);
    EXPECT_EQ(grid.settingCount(), 70u);
    EXPECT_TRUE(grid.hasProfiles());
    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        for (std::size_t k = 0; k < grid.settingCount(); ++k) {
            const GridCell &cell = grid.cell(s, k);
            ASSERT_GT(cell.seconds, 0.0);
            ASSERT_GT(cell.cpuEnergy, 0.0);
            ASSERT_GT(cell.memEnergy, 0.0);
            ASSERT_GE(cell.busyFrac, 0.0);
            ASSERT_LE(cell.busyFrac, 1.0);
            ASSERT_GE(cell.bwUtil, 0.0);
            ASSERT_LE(cell.bwUtil, 1.0);
        }
    }
}

TEST(GridRunner, Deterministic)
{
    GridRunner a(fastConfig());
    GridRunner b(fastConfig());
    const MeasuredGrid ga = a.run(tinyWorkload(), SettingsSpace::coarse());
    const MeasuredGrid gb = b.run(tinyWorkload(), SettingsSpace::coarse());
    for (std::size_t s = 0; s < ga.sampleCount(); ++s) {
        for (std::size_t k = 0; k < ga.settingCount(); ++k) {
            ASSERT_DOUBLE_EQ(ga.cell(s, k).seconds,
                             gb.cell(s, k).seconds);
            ASSERT_DOUBLE_EQ(ga.cell(s, k).energy(),
                             gb.cell(s, k).energy());
        }
    }
}

TEST(GridRunner, TimeMonotoneInFrequencyPerSample)
{
    GridRunner runner(fastConfig());
    const MeasuredGrid grid =
        runner.run(tinyWorkload(), SettingsSpace::coarse());
    const std::size_t mem_steps = grid.space().memLadder().size();
    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        for (std::size_t k = 0; k + mem_steps < grid.settingCount();
             ++k) {
            // One CPU step up (same memory index): never slower.
            ASSERT_LE(grid.cell(s, k + mem_steps).seconds,
                      grid.cell(s, k).seconds * (1.0 + 1e-9));
        }
    }
}

TEST(GridRunner, MaxSettingIsFastest)
{
    GridRunner runner(fastConfig());
    const MeasuredGrid grid =
        runner.run(tinyWorkload(), SettingsSpace::coarse());
    const std::size_t max_idx =
        grid.space().indexOf(grid.space().maxSetting());
    for (std::size_t s = 0; s < grid.sampleCount(); ++s)
        ASSERT_DOUBLE_EQ(grid.cell(s, max_idx).seconds,
                         grid.sampleFastest(s));
}

TEST(GridRunner, RunWithProfilesMatchesRun)
{
    GridRunner runner(fastConfig());
    const WorkloadProfile workload = tinyWorkload();
    const MeasuredGrid direct =
        runner.run(workload, SettingsSpace::coarse());

    SampleSimulator simulator(fastConfig().sampler);
    const auto profiles = simulator.characterize(workload);
    const MeasuredGrid via_profiles = runner.runWithProfiles(
        workload.name(), profiles, SettingsSpace::coarse(),
        workload.modeledInstructionsPerSample());

    for (std::size_t s = 0; s < direct.sampleCount(); ++s) {
        for (std::size_t k = 0; k < direct.settingCount(); ++k) {
            ASSERT_DOUBLE_EQ(direct.cell(s, k).seconds,
                             via_profiles.cell(s, k).seconds);
            ASSERT_DOUBLE_EQ(direct.cell(s, k).energy(),
                             via_profiles.cell(s, k).energy());
        }
    }
}

void
expectGoldenIdentical(const MeasuredGrid &kernel,
                      const MeasuredGrid &reference)
{
    ASSERT_EQ(kernel.sampleCount(), reference.sampleCount());
    ASSERT_EQ(kernel.settingCount(), reference.settingCount());
    for (std::size_t s = 0; s < kernel.sampleCount(); ++s) {
        for (std::size_t k = 0; k < kernel.settingCount(); ++k) {
            // Exact equality on purpose: the table-driven kernel must
            // reproduce cell-at-a-time evaluation bit for bit.
            ASSERT_EQ(kernel.secondsAt(s, k), reference.secondsAt(s, k))
                << s << "," << k;
            ASSERT_EQ(kernel.cpuEnergyAt(s, k),
                      reference.cpuEnergyAt(s, k))
                << s << "," << k;
            ASSERT_EQ(kernel.memEnergyAt(s, k),
                      reference.memEnergyAt(s, k))
                << s << "," << k;
            ASSERT_EQ(kernel.busyFracAt(s, k),
                      reference.busyFracAt(s, k))
                << s << "," << k;
            ASSERT_EQ(kernel.bwUtilAt(s, k), reference.bwUtilAt(s, k))
                << s << "," << k;
        }
    }
    for (std::size_t s = 0; s < kernel.sampleCount(); ++s) {
        ASSERT_EQ(kernel.sampleEmin(s), reference.sampleEmin(s));
        ASSERT_EQ(kernel.sampleSlowest(s), reference.sampleSlowest(s));
        ASSERT_EQ(kernel.sampleFastest(s), reference.sampleFastest(s));
    }
}

TEST(GridKernelGolden, MatchesReferenceWithNoise)
{
    // Paper-default configuration: deterministic measurement noise on.
    const SystemConfig config = fastConfig();
    GridRunner runner(config);
    const WorkloadProfile workload = tinyWorkload();
    expectGoldenIdentical(
        runner.run(workload, SettingsSpace::coarse()),
        referenceGrid(config, workload, SettingsSpace::coarse()));
}

TEST(GridKernelGolden, MatchesReferenceWithoutNoise)
{
    SystemConfig config = fastConfig();
    config.measurementNoise = 0.0;
    GridRunner runner(config);
    const WorkloadProfile workload = tinyWorkload();
    expectGoldenIdentical(
        runner.run(workload, SettingsSpace::coarse()),
        referenceGrid(config, workload, SettingsSpace::coarse()));
}

TEST(GridKernelGolden, MatchesReferenceWithoutBandwidthModel)
{
    // The pure-latency ablation takes a different branch in both
    // paths; it must stay bit-identical too.
    SystemConfig config = fastConfig();
    config.timing.modelBandwidth = false;
    GridRunner runner(config);
    const WorkloadProfile workload = tinyWorkload();
    expectGoldenIdentical(
        runner.run(workload, SettingsSpace::coarse()),
        referenceGrid(config, workload, SettingsSpace::coarse()));
}

TEST(GridKernelGolden, MatchesReferenceWithPowerDown)
{
    // Power-down mixes two background-power terms by bandwidth
    // utilization — the kernel's precomputed coefficients must
    // reproduce the mix exactly.
    SystemConfig config = fastConfig();
    config.dramPower.enablePowerDown = true;
    GridRunner runner(config);
    const WorkloadProfile workload = tinyWorkload();
    expectGoldenIdentical(
        runner.run(workload, SettingsSpace::coarse()),
        referenceGrid(config, workload, SettingsSpace::coarse()));
}

TEST(GridKernelGolden, MatchesReferenceOnFineSpace)
{
    const SystemConfig config = fastConfig();
    GridRunner runner(config);
    const WorkloadProfile workload = tinyWorkload();
    expectGoldenIdentical(
        runner.run(workload, SettingsSpace::fine()),
        referenceGrid(config, workload, SettingsSpace::fine()));
}

TEST(GridRunner, MemoryEnergyRisesWithMemFrequency)
{
    // At a fixed CPU frequency, higher memory frequency means more
    // background power over a (nearly) equal-or-shorter window; for a
    // CPU-bound sample the window is identical, so memory energy must
    // rise strictly.
    GridRunner runner(fastConfig());
    const MeasuredGrid grid =
        runner.run(tinyWorkload(), SettingsSpace::coarse());
    const SettingsSpace &space = grid.space();
    const std::size_t cpu_sample = 0;  // the workload's cpu phase
    const std::size_t lo = space.indexOf(
        FrequencySetting{megaHertz(1000), megaHertz(200)});
    const std::size_t hi = space.indexOf(
        FrequencySetting{megaHertz(1000), megaHertz(800)});
    EXPECT_LT(grid.cell(cpu_sample, lo).memEnergy,
              grid.cell(cpu_sample, hi).memEnergy);
}

} // namespace
} // namespace mcdvfs
