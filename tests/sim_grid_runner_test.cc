/**
 * @file
 * End-to-end tests for grid construction.
 */

#include <gtest/gtest.h>

#include "sim/grid_runner.hh"

namespace mcdvfs
{
namespace
{

WorkloadProfile
tinyWorkload()
{
    PhaseSpec cpu;
    cpu.name = "cpu";
    cpu.hotFrac = 0.98;
    cpu.warmFrac = 0.015;
    PhaseSpec mem;
    mem.name = "mem";
    mem.hotFrac = 0.80;
    mem.warmFrac = 0.10;
    mem.coldSeqFrac = 0.3;
    return WorkloadProfile(
        "tiny", 6,
        [cpu, mem](std::size_t s) { return s % 2 ? mem : cpu; }, 5,
        /*jitter=*/0.0);
}

SystemConfig
fastConfig()
{
    SystemConfig config;
    config.sampler.simInstructionsPerSample = 20'000;
    config.sampler.warmupInstructions = 100'000;
    return config;
}

TEST(GridRunner, GridShapeAndPositivity)
{
    GridRunner runner(fastConfig());
    const MeasuredGrid grid =
        runner.run(tinyWorkload(), SettingsSpace::coarse());
    EXPECT_EQ(grid.sampleCount(), 6u);
    EXPECT_EQ(grid.settingCount(), 70u);
    EXPECT_TRUE(grid.hasProfiles());
    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        for (std::size_t k = 0; k < grid.settingCount(); ++k) {
            const GridCell &cell = grid.cell(s, k);
            ASSERT_GT(cell.seconds, 0.0);
            ASSERT_GT(cell.cpuEnergy, 0.0);
            ASSERT_GT(cell.memEnergy, 0.0);
            ASSERT_GE(cell.busyFrac, 0.0);
            ASSERT_LE(cell.busyFrac, 1.0);
            ASSERT_GE(cell.bwUtil, 0.0);
            ASSERT_LE(cell.bwUtil, 1.0);
        }
    }
}

TEST(GridRunner, Deterministic)
{
    GridRunner a(fastConfig());
    GridRunner b(fastConfig());
    const MeasuredGrid ga = a.run(tinyWorkload(), SettingsSpace::coarse());
    const MeasuredGrid gb = b.run(tinyWorkload(), SettingsSpace::coarse());
    for (std::size_t s = 0; s < ga.sampleCount(); ++s) {
        for (std::size_t k = 0; k < ga.settingCount(); ++k) {
            ASSERT_DOUBLE_EQ(ga.cell(s, k).seconds,
                             gb.cell(s, k).seconds);
            ASSERT_DOUBLE_EQ(ga.cell(s, k).energy(),
                             gb.cell(s, k).energy());
        }
    }
}

TEST(GridRunner, TimeMonotoneInFrequencyPerSample)
{
    GridRunner runner(fastConfig());
    const MeasuredGrid grid =
        runner.run(tinyWorkload(), SettingsSpace::coarse());
    const std::size_t mem_steps = grid.space().memLadder().size();
    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        for (std::size_t k = 0; k + mem_steps < grid.settingCount();
             ++k) {
            // One CPU step up (same memory index): never slower.
            ASSERT_LE(grid.cell(s, k + mem_steps).seconds,
                      grid.cell(s, k).seconds * (1.0 + 1e-9));
        }
    }
}

TEST(GridRunner, MaxSettingIsFastest)
{
    GridRunner runner(fastConfig());
    const MeasuredGrid grid =
        runner.run(tinyWorkload(), SettingsSpace::coarse());
    const std::size_t max_idx =
        grid.space().indexOf(grid.space().maxSetting());
    for (std::size_t s = 0; s < grid.sampleCount(); ++s)
        ASSERT_DOUBLE_EQ(grid.cell(s, max_idx).seconds,
                         grid.sampleFastest(s));
}

TEST(GridRunner, RunWithProfilesMatchesRun)
{
    GridRunner runner(fastConfig());
    const WorkloadProfile workload = tinyWorkload();
    const MeasuredGrid direct =
        runner.run(workload, SettingsSpace::coarse());

    SampleSimulator simulator(fastConfig().sampler);
    const auto profiles = simulator.characterize(workload);
    const MeasuredGrid via_profiles = runner.runWithProfiles(
        workload.name(), profiles, SettingsSpace::coarse(),
        workload.modeledInstructionsPerSample());

    for (std::size_t s = 0; s < direct.sampleCount(); ++s) {
        for (std::size_t k = 0; k < direct.settingCount(); ++k) {
            ASSERT_DOUBLE_EQ(direct.cell(s, k).seconds,
                             via_profiles.cell(s, k).seconds);
            ASSERT_DOUBLE_EQ(direct.cell(s, k).energy(),
                             via_profiles.cell(s, k).energy());
        }
    }
}

TEST(GridRunner, MemoryEnergyRisesWithMemFrequency)
{
    // At a fixed CPU frequency, higher memory frequency means more
    // background power over a (nearly) equal-or-shorter window; for a
    // CPU-bound sample the window is identical, so memory energy must
    // rise strictly.
    GridRunner runner(fastConfig());
    const MeasuredGrid grid =
        runner.run(tinyWorkload(), SettingsSpace::coarse());
    const SettingsSpace &space = grid.space();
    const std::size_t cpu_sample = 0;  // the workload's cpu phase
    const std::size_t lo = space.indexOf(
        FrequencySetting{megaHertz(1000), megaHertz(200)});
    const std::size_t hi = space.indexOf(
        FrequencySetting{megaHertz(1000), megaHertz(800)});
    EXPECT_LT(grid.cell(cpu_sample, lo).memEnergy,
              grid.cell(cpu_sample, hi).memEnergy);
}

} // namespace
} // namespace mcdvfs
