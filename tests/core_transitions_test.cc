/**
 * @file
 * Unit tests for transition accounting (Figs. 6-9 machinery).
 */

#include <gtest/gtest.h>

#include "core/transitions.hh"
#include "test_grid.hh"

namespace mcdvfs
{
namespace
{

struct Chain
{
    InefficiencyAnalysis analysis;
    OptimalSettingsFinder finder;
    ClusterFinder clusters;
    StableRegionFinder regions;
    TransitionAnalysis transitions;

    explicit Chain(const MeasuredGrid &grid)
        : analysis(grid), finder(analysis), clusters(finder),
          regions(clusters), transitions(regions, clusters)
    {
    }
};

TEST(Transitions, SequenceCounting)
{
    const std::vector<std::size_t> sequence = {1, 1, 2, 2, 2, 3, 1};
    const TransitionReport report =
        TransitionAnalysis::fromSettingSequence(sequence, 7'000'000);
    EXPECT_EQ(report.transitions, 3u);
    // Run lengths: 2, 3, 1, 1.
    EXPECT_EQ(report.runLengths.count(), 4u);
    EXPECT_DOUBLE_EQ(report.runLengths.quantile(1.0), 3.0);
    // 3 transitions per 7M instructions = 428.57 per billion.
    EXPECT_NEAR(report.perBillionInstructions, 3e9 / 7e6, 0.1);
}

TEST(Transitions, ConstantSequenceHasNone)
{
    const std::vector<std::size_t> sequence(10, 4);
    const TransitionReport report =
        TransitionAnalysis::fromSettingSequence(sequence, 1'000'000);
    EXPECT_EQ(report.transitions, 0u);
    EXPECT_EQ(report.runLengths.count(), 1u);
    EXPECT_DOUBLE_EQ(report.runLengths.quantile(0.5), 10.0);
}

TEST(Transitions, RunLengthsSumToSampleCount)
{
    const std::vector<std::size_t> sequence = {5, 6, 6, 7, 7, 7, 5, 5};
    const TransitionReport report =
        TransitionAnalysis::fromSettingSequence(sequence, 1);
    double total = 0.0;
    for (const double len : report.runLengths.values())
        total += len;
    EXPECT_DOUBLE_EQ(total, 8.0);
}

TEST(Transitions, ClusterPolicyMatchesRegionBoundaries)
{
    const MeasuredGrid &grid = test::phasedGrid();
    Chain chain(grid);
    const double budget = 1.3;
    const double threshold = 0.03;
    const auto regions = chain.regions.find(budget, threshold);
    const TransitionReport report =
        chain.transitions.forClusterPolicy(budget, threshold);
    // Transitions happen only at region boundaries where the chosen
    // setting actually changes.
    std::size_t expected = 0;
    for (std::size_t r = 1; r < regions.size(); ++r) {
        expected += regions[r].chosenSettingIndex !=
                    regions[r - 1].chosenSettingIndex;
    }
    EXPECT_EQ(report.transitions, expected);
}

TEST(Transitions, OptimalTrackingMatchesTrajectory)
{
    const MeasuredGrid &grid = test::phasedGrid();
    Chain chain(grid);
    const auto trajectory = chain.finder.optimalTrajectory(1.2);
    std::size_t expected = 0;
    for (std::size_t s = 1; s < trajectory.size(); ++s) {
        expected += trajectory[s].settingIndex !=
                    trajectory[s - 1].settingIndex;
    }
    EXPECT_EQ(chain.transitions.forOptimalTracking(1.2).transitions,
              expected);
}

TEST(Transitions, ClusterSequenceConstantWithinRegions)
{
    Chain chain(test::phasedGrid());
    const auto regions = chain.regions.find(1.3, 0.05);
    const auto sequence =
        chain.transitions.clusterSettingSequence(1.3, 0.05);
    for (const StableRegion &region : regions) {
        for (std::size_t s = region.first; s <= region.last; ++s)
            ASSERT_EQ(sequence[s], region.chosenSettingIndex);
    }
}

TEST(Transitions, PerBillionUsesModeledInstructions)
{
    const MeasuredGrid &grid = test::phasedGrid();
    Chain chain(grid);
    const TransitionReport report =
        chain.transitions.forOptimalTracking(1.0);
    const double expected =
        static_cast<double>(report.transitions) * 1e9 /
        static_cast<double>(grid.totalInstructions());
    EXPECT_DOUBLE_EQ(report.perBillionInstructions, expected);
}

TEST(TransitionsDeathTest, EmptySequencePanics)
{
    EXPECT_DEATH(
        TransitionAnalysis::fromSettingSequence({}, 100),
        "empty setting sequence");
}

} // namespace
} // namespace mcdvfs
