/**
 * @file
 * Stable-region edge cases: a single-sample run, invalid budgets and
 * thresholds, a zero threshold (clusters collapse toward the optimum),
 * and the boundary behavior of the final region.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/stable_regions.hh"
#include "test_grid.hh"

namespace mcdvfs
{
namespace
{

struct Chain
{
    InefficiencyAnalysis analysis;
    OptimalSettingsFinder finder;
    ClusterFinder clusters;
    StableRegionFinder regions;

    explicit Chain(const MeasuredGrid &grid)
        : analysis(grid), finder(analysis), clusters(finder),
          regions(clusters)
    {
    }
};

/** A one-sample workload (the shortest legal run). */
const MeasuredGrid &
singleSampleGrid()
{
    static const MeasuredGrid grid = [] {
        PhaseSpec spec;
        spec.name = "only";
        spec.hotFrac = 0.94;
        spec.warmFrac = 0.05;
        GridRunner runner(test::fastSystemConfig());
        return runner.run(
            WorkloadProfile("single", 1,
                            [spec](std::size_t) { return spec; }, 7,
                            /*jitter=*/0.0),
            SettingsSpace::coarse());
    }();
    return grid;
}

TEST(StableRegionsEdge, SingleSampleRunIsOneRegion)
{
    Chain chain(singleSampleGrid());
    const auto regions = chain.regions.find(1.3, 0.03);
    ASSERT_EQ(regions.size(), 1u);
    EXPECT_EQ(regions[0].first, 0u);
    EXPECT_EQ(regions[0].last, 0u);
    EXPECT_EQ(regions[0].length(), 1u);

    // The region's available settings are exactly the sample's cluster.
    const PerformanceCluster cluster =
        chain.clusters.clusterForSample(0, 1.3, 0.03);
    EXPECT_EQ(regions[0].availableSettings, cluster.settings);
    EXPECT_TRUE(cluster.contains(regions[0].chosenSettingIndex));
}

TEST(StableRegionsEdge, InvalidBudgetAndThresholdFatal)
{
    Chain chain(test::steadyGrid());
    EXPECT_THROW(chain.regions.find(0.99, 0.03), FatalError);
    EXPECT_THROW(chain.regions.find(0.0, 0.03), FatalError);
    EXPECT_THROW(chain.regions.find(1.3, -0.01), FatalError);
    EXPECT_THROW(chain.clusters.clusters(0.5, 0.03), FatalError);
}

TEST(StableRegionsEdge, ZeroThresholdStillTilesTheRun)
{
    // threshold = 0 keeps only settings matching the optimum's speedup
    // exactly; regions must still tile the run and stay non-empty.
    const MeasuredGrid &grid = test::phasedGrid();
    Chain chain(grid);
    const auto regions = chain.regions.find(1.3, 0.0);
    ASSERT_FALSE(regions.empty());
    EXPECT_EQ(regions.front().first, 0u);
    EXPECT_EQ(regions.back().last, grid.sampleCount() - 1);
    for (std::size_t r = 1; r < regions.size(); ++r)
        EXPECT_EQ(regions[r].first, regions[r - 1].last + 1);
    for (const StableRegion &region : regions) {
        ASSERT_FALSE(region.availableSettings.empty());
        // Every cluster contains its optimum, so at threshold 0 each
        // sample still contributes at least that setting.
        for (std::size_t s = region.first; s <= region.last; ++s) {
            const PerformanceCluster cluster =
                chain.clusters.clusterForSample(s, 1.3, 0.0);
            EXPECT_TRUE(cluster.contains(region.chosenSettingIndex));
        }
    }
}

TEST(StableRegionsEdge, RegionsAreMaximal)
{
    // Greedy growth closes a region only when the next sample's
    // cluster would empty the common set: each region boundary must
    // be justified by an empty intersection.
    const MeasuredGrid &grid = test::phasedGrid();
    Chain chain(grid);
    const double budget = 1.3;
    const double threshold = 0.01;
    const auto regions = chain.regions.find(budget, threshold);
    for (std::size_t r = 0; r + 1 < regions.size(); ++r) {
        const std::size_t next_first = regions[r + 1].first;
        const PerformanceCluster next =
            chain.clusters.clusterForSample(next_first, budget,
                                            threshold);
        for (const std::size_t k : regions[r].availableSettings) {
            EXPECT_FALSE(next.contains(k))
                << "region " << r << " could have absorbed sample "
                << next_first;
        }
    }
    // The final region always reaches the last sample, even when it
    // holds a single sample.
    EXPECT_EQ(regions.back().last, grid.sampleCount() - 1);
}

TEST(StableRegionsEdge, FromTableMatchesFind)
{
    Chain chain(test::phasedGrid());
    const double budget = 1.3;
    const double threshold = 0.03;
    const ClusterTable table = chain.clusters.table(budget, threshold);
    const auto from_table = chain.regions.fromTable(table);
    const auto found = chain.regions.find(budget, threshold);
    ASSERT_EQ(from_table.size(), found.size());
    for (std::size_t r = 0; r < found.size(); ++r) {
        EXPECT_EQ(from_table[r].first, found[r].first);
        EXPECT_EQ(from_table[r].last, found[r].last);
        EXPECT_EQ(from_table[r].availableSettings,
                  found[r].availableSettings);
        EXPECT_EQ(from_table[r].chosenSettingIndex,
                  found[r].chosenSettingIndex);
    }
}

} // namespace
} // namespace mcdvfs
