/**
 * @file
 * Property tests for the tiered SettingMask: randomized operation
 * sequences checked against a std::vector<bool> reference model.
 *
 * The mask has two storage tiers (inline up to kCapacity, heap
 * beyond), two vector back-ends (AVX2/NEON) plus the scalar fallback,
 * and word-granular entry points (setWord, filterGE) whose
 * tail-masking is easy to get subtly wrong.  Rather than enumerate
 * cases, these tests drive long random sequences of
 * set/reset/clear/andInplace/andInplaceAny/filterGE against the
 * obviously-correct bit-by-bit model and require exact agreement of
 * membership, count, firstSet, iteration order and intersects after
 * every step — at one capacity per tier boundary: 64 (single word),
 * 512 (inline tier edge) and 1500 (heap tier).
 */

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/setting_mask.hh"

namespace mcdvfs
{
namespace
{

/** Bit-by-bit reference model of one mask. */
using Model = std::vector<bool>;

/** Assert the mask and its model agree on every observable. */
void
expectMatchesModel(const SettingMask &mask, const Model &model)
{
    ASSERT_EQ(mask.size(), model.size());

    std::size_t model_count = 0;
    std::size_t model_first = SettingMask::kNpos;
    for (std::size_t i = 0; i < model.size(); ++i) {
        ASSERT_EQ(mask.test(i), model[i]) << "bit " << i;
        if (model[i]) {
            ++model_count;
            if (model_first == SettingMask::kNpos)
                model_first = i;
        }
    }
    EXPECT_EQ(mask.count(), model_count);
    EXPECT_EQ(mask.firstSet(), model_first);
    EXPECT_EQ(mask.any(), model_count > 0);
    EXPECT_EQ(mask.none(), model_count == 0);

    // Iteration yields exactly the model's set indices, ascending.
    std::vector<std::size_t> iterated;
    for (const std::size_t idx : mask)
        iterated.push_back(idx);
    std::vector<std::size_t> expected;
    for (std::size_t i = 0; i < model.size(); ++i)
        if (model[i])
            expected.push_back(i);
    EXPECT_EQ(iterated, expected);

    // Words beyond size() must stay zero in both tiers (the vector
    // kernels rely on it).
    for (std::size_t w = 0; w < mask.wordCount(); ++w) {
        const std::size_t base = w * 64;
        if (base >= mask.size()) {
            EXPECT_EQ(mask.word(w), 0u) << "trailing word " << w;
        } else if (mask.size() - base < 64) {
            EXPECT_EQ(mask.word(w) >> (mask.size() - base), 0u)
                << "tail bits of word " << w;
        }
    }
}

/** Random mask/model pair with ~density of the bits set. */
void
randomPair(Rng &rng, std::size_t size, double density, SettingMask &mask,
           Model &model)
{
    mask = SettingMask(size);
    model.assign(size, false);
    for (std::size_t i = 0; i < size; ++i) {
        if (rng.chance(density)) {
            mask.set(i);
            model[i] = true;
        }
    }
}

/** Random per-setting values including NaN, infinities and ties. */
std::vector<double>
randomValues(Rng &rng, std::size_t size)
{
    std::vector<double> values(size);
    for (std::size_t i = 0; i < size; ++i) {
        const std::uint64_t kind = rng.uniformInt(16);
        if (kind == 0)
            values[i] = std::numeric_limits<double>::quiet_NaN();
        else if (kind == 1)
            values[i] = std::numeric_limits<double>::infinity();
        else if (kind == 2)
            values[i] = -std::numeric_limits<double>::infinity();
        else if (kind == 3)
            values[i] = 0.5;  // deliberate exact tie with one cutoff
        else
            values[i] = 4.0 * rng.uniform() - 2.0;
    }
    return values;
}

/** One random operation applied to both mask and model. */
void
applyRandomOp(Rng &rng, std::size_t size, SettingMask &mask, Model &model)
{
    switch (rng.uniformInt(6)) {
      case 0: {  // set
        const std::size_t idx = rng.uniformInt(size);
        mask.set(idx);
        model[idx] = true;
        break;
      }
      case 1: {  // reset
        const std::size_t idx = rng.uniformInt(size);
        mask.reset(idx);
        model[idx] = false;
        break;
      }
      case 2: {  // andInplace with a random operand
        SettingMask other;
        Model other_model;
        randomPair(rng, size, rng.uniform(), other, other_model);
        mask.andInplace(other);
        for (std::size_t i = 0; i < size; ++i)
            model[i] = model[i] && other_model[i];
        // intersects() must agree with the model before the AND:
        // recompute it on the post-AND state (self-intersection).
        EXPECT_EQ(mask.intersects(other), mask.any());
        break;
      }
      case 3: {  // andInplaceAny: fused AND + emptiness report
        SettingMask other;
        Model other_model;
        randomPair(rng, size, rng.uniform(), other, other_model);
        const bool expected_intersects = mask.intersects(other);
        const bool survived = mask.andInplaceAny(other);
        bool model_any = false;
        for (std::size_t i = 0; i < size; ++i) {
            model[i] = model[i] && other_model[i];
            model_any = model_any || model[i];
        }
        EXPECT_EQ(survived, model_any);
        EXPECT_EQ(survived, expected_intersects);
        break;
      }
      case 4: {  // filterGE against the scalar compare
        const std::vector<double> values = randomValues(rng, size);
        const double cutoff = rng.chance(0.25)
                                  ? 0.5
                                  : 4.0 * rng.uniform() - 2.0;
        const SettingMask filtered = mask.filterGE(values.data(), cutoff);
        Model filtered_model(size, false);
        for (std::size_t i = 0; i < size; ++i)
            filtered_model[i] = model[i] && values[i] >= cutoff;
        expectMatchesModel(filtered, filtered_model);
        // filterGE is const: the source must be untouched.
        break;
      }
      case 5: {  // occasional full clear keeps sparse states in play
        if (rng.chance(0.1)) {
            mask.clear();
            model.assign(size, false);
        }
        break;
      }
    }
}

/** Capacities pinning each storage tier and the boundary. */
const std::size_t kCapacities[] = {64, 512, 1500};

TEST(SettingMaskProperty, RandomOpSequencesMatchModel)
{
    for (const std::size_t size : kCapacities) {
        for (std::uint64_t seed = 1; seed <= 4; ++seed) {
            Rng rng(0xABCD0000 + seed * 131 + size);
            SettingMask mask;
            Model model;
            randomPair(rng, size, 0.4, mask, model);
            expectMatchesModel(mask, model);
            for (int op = 0; op < 120; ++op) {
                applyRandomOp(rng, size, mask, model);
                ASSERT_NO_FATAL_FAILURE(
                    expectMatchesModel(mask, model))
                    << "size " << size << " seed " << seed << " op "
                    << op;
            }
        }
    }
}

TEST(SettingMaskProperty, EqualityMatchesModelEquality)
{
    for (const std::size_t size : kCapacities) {
        Rng rng(0x5EED0 + size);
        SettingMask a, b;
        Model ma, mb;
        randomPair(rng, size, 0.5, a, ma);
        b = a;
        mb = ma;
        EXPECT_EQ(a, b);
        // Flip one random bit: masks must differ; flip it back: equal.
        const std::size_t idx = rng.uniformInt(size);
        if (mb[idx])
            b.reset(idx);
        else
            b.set(idx);
        EXPECT_NE(a, b);
        if (mb[idx])
            b.set(idx);
        else
            b.reset(idx);
        EXPECT_EQ(a, b);
    }
    // Masks over different spaces never compare equal, even both empty.
    EXPECT_NE(SettingMask(64), SettingMask(65));
}

TEST(SettingMaskProperty, CopiesAreIndependentAcrossTiers)
{
    for (const std::size_t size : kCapacities) {
        Rng rng(0xC0B1E5 + size);
        SettingMask a;
        Model ma;
        randomPair(rng, size, 0.3, a, ma);
        SettingMask b = a;
        b.set(0);
        b.reset(size - 1);
        // The copy diverged; the original still matches its model.
        expectMatchesModel(a, ma);
    }
}

TEST(SettingMaskProperty, TierBoundaryConstruction)
{
    // The inline tier always carries kWords words; the heap tier a
    // whole number of 256-bit registers covering the space.
    EXPECT_EQ(SettingMask(1).wordCount(), SettingMask::kWords);
    EXPECT_EQ(SettingMask(512).wordCount(), SettingMask::kWords);
    EXPECT_EQ(SettingMask(513).wordCount(), 12u);
    EXPECT_EQ(SettingMask(1500).wordCount(), 24u);
    EXPECT_TRUE(SettingMask::supports(SettingMask::kMaxCapacity));
    EXPECT_FALSE(SettingMask::supports(SettingMask::kMaxCapacity + 1));
    EXPECT_THROW(SettingMask(SettingMask::kMaxCapacity + 1), FatalError);
}

} // namespace
} // namespace mcdvfs
