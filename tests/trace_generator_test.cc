/**
 * @file
 * Unit and property tests for the synthetic trace generator.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/logging.hh"
#include "trace/trace_generator.hh"

namespace mcdvfs
{
namespace
{

PhaseSpec
testSpec()
{
    PhaseSpec spec;
    spec.loadFrac = 0.25;
    spec.storeFrac = 0.10;
    spec.branchFrac = 0.15;
    spec.fpFrac = 0.10;
    spec.mulFrac = 0.02;
    spec.hotFrac = 0.6;
    spec.warmFrac = 0.3;
    spec.coldSeqFrac = 0.5;
    return spec;
}

TEST(TraceGenerator, Deterministic)
{
    TraceGenerator a(testSpec(), 42);
    TraceGenerator b(testSpec(), 42);
    for (int i = 0; i < 10000; ++i) {
        const InstrRecord ra = a.next();
        const InstrRecord rb = b.next();
        ASSERT_EQ(ra.kind, rb.kind);
        ASSERT_EQ(ra.addr, rb.addr);
    }
}

TEST(TraceGenerator, SeedChangesStream)
{
    TraceGenerator a(testSpec(), 1);
    TraceGenerator b(testSpec(), 2);
    int same = 0;
    for (int i = 0; i < 1000; ++i) {
        const InstrRecord ra = a.next();
        const InstrRecord rb = b.next();
        same += ra.kind == rb.kind && ra.addr == rb.addr;
    }
    EXPECT_LT(same, 700);
}

TEST(TraceGenerator, MixMatchesSpec)
{
    const PhaseSpec spec = testSpec();
    TraceGenerator gen(spec, 7);
    const int n = 200000;
    int loads = 0;
    int stores = 0;
    int branches = 0;
    int fp = 0;
    for (int i = 0; i < n; ++i) {
        switch (gen.next().kind) {
          case InstrKind::Load:
            ++loads;
            break;
          case InstrKind::Store:
            ++stores;
            break;
          case InstrKind::Branch:
            ++branches;
            break;
          case InstrKind::FpOp:
            ++fp;
            break;
          default:
            break;
        }
    }
    EXPECT_NEAR(static_cast<double>(loads) / n, spec.loadFrac, 0.01);
    EXPECT_NEAR(static_cast<double>(stores) / n, spec.storeFrac, 0.01);
    EXPECT_NEAR(static_cast<double>(branches) / n, spec.branchFrac, 0.01);
    EXPECT_NEAR(static_cast<double>(fp) / n, spec.fpFrac, 0.01);
}

TEST(TraceGenerator, MemoryInstructionsCarryAddresses)
{
    TraceGenerator gen(testSpec(), 11);
    for (int i = 0; i < 10000; ++i) {
        const InstrRecord rec = gen.next();
        if (isMemory(rec.kind)) {
            ASSERT_NE(rec.addr, 0u);
        }
    }
}

TEST(TraceGenerator, AddressesStayInTierRanges)
{
    const PhaseSpec spec = testSpec();
    TraceGenerator gen(spec, 13);
    for (int i = 0; i < 50000; ++i) {
        const InstrRecord rec = gen.next();
        if (!isMemory(rec.kind))
            continue;
        const std::uint64_t addr = rec.addr;
        const bool in_hot =
            addr >= TraceGenerator::kHotBase &&
            addr < TraceGenerator::kHotBase + spec.hotBytes;
        const bool in_warm =
            addr >= TraceGenerator::kWarmBase &&
            addr < TraceGenerator::kWarmBase + spec.warmBytes;
        const bool in_cold =
            addr >= TraceGenerator::kColdBase &&
            addr < TraceGenerator::kColdBase + spec.coldBytes;
        ASSERT_TRUE(in_hot || in_warm || in_cold)
            << "address " << std::hex << addr << " outside all tiers";
    }
}

TEST(TraceGenerator, TierFrequenciesMatchSpec)
{
    const PhaseSpec spec = testSpec();
    TraceGenerator gen(spec, 17);
    int hot = 0;
    int warm = 0;
    int cold = 0;
    int mem = 0;
    for (int i = 0; i < 300000; ++i) {
        const InstrRecord rec = gen.next();
        if (!isMemory(rec.kind))
            continue;
        ++mem;
        if (rec.addr < TraceGenerator::kWarmBase)
            ++hot;
        else if (rec.addr < TraceGenerator::kColdBase)
            ++warm;
        else
            ++cold;
    }
    EXPECT_NEAR(static_cast<double>(hot) / mem, spec.hotFrac, 0.02);
    EXPECT_NEAR(static_cast<double>(warm) / mem, spec.warmFrac, 0.02);
    EXPECT_NEAR(static_cast<double>(cold) / mem, spec.coldFrac(), 0.02);
}

TEST(TraceGenerator, SequentialColdStreamAdvancesAndWraps)
{
    PhaseSpec spec = testSpec();
    spec.hotFrac = 0.0;
    spec.warmFrac = 0.0;
    spec.coldSeqFrac = 1.0;
    spec.coldBytes = 4096;  // tiny, to force wraparound
    spec.loadFrac = 1.0;
    spec.storeFrac = 0.0;
    spec.branchFrac = 0.0;
    spec.fpFrac = 0.0;
    spec.mulFrac = 0.0;

    TraceGenerator gen(spec, 19);
    std::uint64_t prev = gen.next().addr;
    int wraps = 0;
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t addr = gen.next().addr;
        if (addr < prev)
            ++wraps;
        else
            ASSERT_EQ(addr, prev + 8);
        ASSERT_LT(addr, TraceGenerator::kColdBase + spec.coldBytes);
        prev = addr;
    }
    EXPECT_GT(wraps, 0);
}

TEST(TraceGenerator, GenerateAppends)
{
    TraceGenerator gen(testSpec(), 23);
    std::vector<InstrRecord> out;
    gen.generate(100, out);
    EXPECT_EQ(out.size(), 100u);
    gen.generate(50, out);
    EXPECT_EQ(out.size(), 150u);
}

TEST(TraceGenerator, InvalidSpecThrows)
{
    PhaseSpec spec = testSpec();
    spec.baseCpi = -1.0;
    EXPECT_THROW((TraceGenerator{spec, 1}), FatalError);
}

} // namespace
} // namespace mcdvfs
