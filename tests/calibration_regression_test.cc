/**
 * @file
 * Calibration regression guards.
 *
 * EXPERIMENTS.md records the exact headline numbers the default
 * configuration produces; these tests pin them (with small slack for
 * floating-point churn) so an innocent-looking model change cannot
 * silently shift the reproduced figures.  If one of these fails after
 * an intentional recalibration, re-measure and update EXPERIMENTS.md
 * alongside the expectations here.
 *
 * These run the paper-default configuration (not the fast test
 * config), so they double as coverage of the shipped defaults.
 */

#include <gtest/gtest.h>

#include "repro/analyses.hh"
#include "repro/suite.hh"

namespace mcdvfs
{
namespace
{

/** Shared default-config suite (built lazily once per binary). */
ReproSuite &
suite()
{
    static ReproSuite instance;  // paper defaults
    return instance;
}

TEST(CalibrationRegression, GobmkFig2Headlines)
{
    GridAnalyses a(suite().grid("gobmk"));
    const auto &space = suite().grid("gobmk").space();
    // EXPERIMENTS.md: lowest 1.59, fastest-setting I 1.41, Imax 2.08.
    EXPECT_NEAR(a.analysis.runInefficiency(
                    space.indexOf(space.minSetting())),
                1.59, 0.05);
    EXPECT_NEAR(a.analysis.runInefficiency(
                    space.indexOf(space.maxSetting())),
                1.41, 0.05);
    EXPECT_NEAR(a.analysis.maxRunInefficiency(), 2.08, 0.08);
}

TEST(CalibrationRegression, GobmkFig8Row)
{
    GridAnalyses a(suite().grid("gobmk"));
    // EXPERIMENTS.md: 74 / 46 / 44 / 44 per billion at I=1.3.
    EXPECT_NEAR(a.transitions.forOptimalTracking(1.3)
                    .perBillionInstructions,
                74.0, 8.0);
    EXPECT_NEAR(a.transitions.forClusterPolicy(1.3, 0.01)
                    .perBillionInstructions,
                46.0, 8.0);
    EXPECT_NEAR(a.transitions.forClusterPolicy(1.3, 0.05)
                    .perBillionInstructions,
                44.0, 8.0);
}

TEST(CalibrationRegression, Bzip2Fig10Row)
{
    GridAnalyses a(suite().grid("bzip2"));
    // EXPERIMENTS.md: 1.000 / 0.666 / 0.505 / 0.447 / 0.402.
    EXPECT_NEAR(a.tradeoff.normalizedExecutionTime(1.1), 0.666, 0.02);
    EXPECT_NEAR(a.tradeoff.normalizedExecutionTime(1.2), 0.505, 0.02);
    EXPECT_NEAR(a.tradeoff.normalizedExecutionTime(1.3), 0.447, 0.02);
    EXPECT_NEAR(a.tradeoff.normalizedExecutionTime(1.6), 0.402, 0.02);
}

TEST(CalibrationRegression, Bzip2MemoryInsensitivity)
{
    // §V: bzip2 within a few percent between 200 and 800 MHz memory
    // at 1 GHz CPU (EXPERIMENTS records 2%).
    const MeasuredGrid &grid = suite().grid("bzip2");
    const auto &space = grid.space();
    const Seconds slow = grid.totalTime(space.indexOf(
        FrequencySetting{megaHertz(1000), megaHertz(200)}));
    const Seconds fast = grid.totalTime(space.indexOf(
        FrequencySetting{megaHertz(1000), megaHertz(800)}));
    EXPECT_LT((slow - fast) / fast, 0.04);
}

TEST(CalibrationRegression, GobmkFig11WithOverhead)
{
    GridAnalyses a(suite().grid("gobmk"));
    const TradeoffRow row = a.tradeoff.compare(1.3, 0.03);
    // EXPERIMENTS.md: -0.11% perf / -0.15% energy without overhead,
    // +1.65% / -0.27% with.
    EXPECT_NEAR(row.perfPct, -0.11, 0.3);
    EXPECT_NEAR(row.energyPct, -0.15, 0.3);
    EXPECT_NEAR(row.perfPctWithOverhead, 1.65, 0.7);
    EXPECT_LT(row.energyPctWithOverhead, 0.0);
}

TEST(CalibrationRegression, GobmkFig3TransitionCounts)
{
    GridAnalyses a(suite().grid("gobmk"));
    // EXPERIMENTS.md: 22 (I=1.0), 37 (I=1.3), 0 (I=1.6), 0 (inf).
    EXPECT_NEAR(static_cast<double>(
                    a.transitions.forOptimalTracking(1.0).transitions),
                22.0, 5.0);
    EXPECT_NEAR(static_cast<double>(
                    a.transitions.forOptimalTracking(1.3).transitions),
                37.0, 5.0);
    EXPECT_EQ(a.transitions.forOptimalTracking(1.6).transitions, 0u);
    EXPECT_EQ(
        a.transitions.forOptimalTracking(kUnboundedBudget).transitions,
        0u);
}

} // namespace
} // namespace mcdvfs
