/**
 * @file
 * Integration tests: the full pipeline over the paper's benchmarks,
 * asserting the qualitative results the paper reports.
 *
 * These run the real six-benchmark suite (at a reduced per-sample
 * instruction count for speed) and check the headline claims of each
 * section rather than individual module behaviour.
 */

#include <gtest/gtest.h>

#include "repro/analyses.hh"
#include "repro/suite.hh"

namespace mcdvfs
{
namespace
{

/** One shared suite across all integration tests (built lazily). */
ReproSuite &
sharedSuite()
{
    static ReproSuite suite = [] {
        SystemConfig config;
        config.sampler.simInstructionsPerSample = 20'000;
        return ReproSuite(config);
    }();
    return suite;
}

TEST(Integration, SlowestIsNeverMostEfficient)
{
    // §IV observation 1 for every benchmark.
    for (const std::string &name : ReproSuite::benchmarkNames()) {
        GridAnalyses a(sharedSuite().grid(name));
        const auto &space = sharedSuite().grid(name).space();
        const double low = a.analysis.runInefficiency(
            space.indexOf(space.minSetting()));
        EXPECT_GT(low, 1.05) << name;
    }
}

TEST(Integration, MaxAchievableInefficiencyInRange)
{
    // §VI-A: "the maximum achievable inefficiency is anywhere from
    // 1.5 to 2" — allow a modest band around it for the substitute
    // substrate.
    for (const std::string &name : ReproSuite::benchmarkNames()) {
        GridAnalyses a(sharedSuite().grid(name));
        const double imax = a.analysis.maxRunInefficiency();
        EXPECT_GT(imax, 1.4) << name;
        EXPECT_LT(imax, 2.6) << name;
    }
}

TEST(Integration, EveryRunStaysWithinItsBudget)
{
    // The §VI-C verification, across benchmarks, budgets and
    // thresholds.
    for (const std::string &name : ReproSuite::benchmarkNames()) {
        GridAnalyses a(sharedSuite().grid(name));
        for (const double budget : {1.0, 1.1, 1.3, 1.6}) {
            EXPECT_LE(
                a.tradeoff.optimalTracking(budget).achievedInefficiency,
                budget + 1e-9)
                << name << " optimal @" << budget;
            for (const double threshold : {0.01, 0.05}) {
                EXPECT_LE(a.tradeoff.clusterPolicy(budget, threshold)
                              .achievedInefficiency,
                          budget + 1e-9)
                    << name << " cluster @" << budget << "/"
                    << threshold;
            }
        }
    }
}

TEST(Integration, PerformanceImprovesWithBudget)
{
    // Fig. 10: normalized execution time non-increasing in budget.
    for (const std::string &name : ReproSuite::benchmarkNames()) {
        GridAnalyses a(sharedSuite().grid(name));
        double prev = 1e18;
        for (const double budget : {1.0, 1.1, 1.2, 1.3, 1.6}) {
            const double time = a.tradeoff.optimalTracking(budget).time;
            EXPECT_LE(time, prev + 1e-12) << name << " @" << budget;
            prev = time;
        }
    }
}

TEST(Integration, Bzip2InsensitiveToMemoryFrequency)
{
    // §V: bzip2 at 1 GHz CPU is within a few percent between 200 and
    // 800 MHz memory.
    const MeasuredGrid &grid = sharedSuite().grid("bzip2");
    const auto &space = grid.space();
    const Seconds slow = grid.totalTime(space.indexOf(
        FrequencySetting{megaHertz(1000), megaHertz(200)}));
    const Seconds fast = grid.totalTime(space.indexOf(
        FrequencySetting{megaHertz(1000), megaHertz(800)}));
    EXPECT_LT((slow - fast) / fast, 0.05);
}

TEST(Integration, LbmSensitiveToMemoryFrequency)
{
    const MeasuredGrid &grid = sharedSuite().grid("lbm");
    const auto &space = grid.space();
    const Seconds slow = grid.totalTime(space.indexOf(
        FrequencySetting{megaHertz(1000), megaHertz(200)}));
    const Seconds fast = grid.totalTime(space.indexOf(
        FrequencySetting{megaHertz(1000), megaHertz(800)}));
    EXPECT_GT((slow - fast) / fast, 0.15);
}

TEST(Integration, ThresholdsReduceTransitionsAtMidBudget)
{
    // Fig. 8 at I=1.3: the 5% cluster policy transitions no more than
    // optimal tracking, and strictly less summed over the suite.
    std::size_t optimal_total = 0;
    std::size_t cluster_total = 0;
    for (const std::string &name : ReproSuite::benchmarkNames()) {
        GridAnalyses a(sharedSuite().grid(name));
        const std::size_t optimal =
            a.transitions.forOptimalTracking(1.3).transitions;
        const std::size_t cluster =
            a.transitions.forClusterPolicy(1.3, 0.05).transitions;
        EXPECT_LE(cluster, optimal) << name;
        optimal_total += optimal;
        cluster_total += cluster;
    }
    EXPECT_LT(cluster_total, optimal_total);
}

TEST(Integration, UnboundedBudgetNeedsNoTransitions)
{
    // At an unbounded budget the optimum is always the max setting.
    for (const std::string &name : ReproSuite::benchmarkNames()) {
        GridAnalyses a(sharedSuite().grid(name));
        EXPECT_EQ(a.transitions.forOptimalTracking(kUnboundedBudget)
                      .transitions,
                  0u)
            << name;
    }
}

TEST(Integration, OverheadFavorsClusterPolicy)
{
    // Fig. 11(b): with tuning overhead charged, the cluster policy's
    // relative performance is at least its overhead-free value for
    // every benchmark.
    for (const std::string &name : ReproSuite::benchmarkNames()) {
        GridAnalyses a(sharedSuite().grid(name));
        const TradeoffRow row = a.tradeoff.compare(1.3, 0.03);
        EXPECT_GE(row.perfPctWithOverhead, row.perfPct - 1e-9)
            << name;
        EXPECT_GE(row.perfPct, -3.0 - 1e-6) << name;  // within thr
    }
}

TEST(Integration, GobmkPhasesVisibleInProfiles)
{
    // Fig. 3's CPI/MPKI phase structure: gobmk's per-sample L1 MPKI
    // must swing by at least 3x between quiet and busy samples.
    const MeasuredGrid &grid = sharedSuite().grid("gobmk");
    double lo = 1e18;
    double hi = 0.0;
    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        lo = std::min(lo, grid.profile(s).l1Mpki);
        hi = std::max(hi, grid.profile(s).l1Mpki);
    }
    EXPECT_GT(hi / std::max(lo, 0.1), 3.0);
}

} // namespace
} // namespace mcdvfs
