/**
 * @file
 * Concurrency stress tests for runtime trace toggling (ctest label
 * "stress"; part of the TSan subset in scripts/sanitize.sh): writer
 * threads recording spans and instants — with per-thread
 * ScopedTraceContext request ids installed and restored — while
 * another thread flips TraceCollector::enable()/disable() and a
 * reader snapshots concurrently.  Every observed event must be
 * internally consistent regardless of where the toggle landed.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "obs/trace.hh"

namespace mcdvfs
{
namespace obs
{
namespace
{

constexpr std::size_t kWriters = 6;
constexpr std::size_t kRingCapacity = 512;

TEST(TraceToggleStress, EnableDisableRacesWritersAndReaders)
{
    if (!kTracingEnabled)
        GTEST_SKIP() << "tracing disabled in this build";

    TraceCollector collector;
    collector.enable(kRingCapacity);

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> recorded{0};

    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (std::size_t t = 0; t < kWriters; ++t) {
        writers.emplace_back([&collector, &stop, &recorded, t] {
            std::uint64_t i = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                // The collector under test is local, so record
                // explicitly (TraceSpan binds to the global); the
                // context round-trip still exercises the thread-local
                // install/restore against concurrent toggles.
                TraceContext context;
                context.requestId = t * 1'000'000 + i + 1;
                context.classId = t;
                ScopedTraceContext scope(context);
                const std::uint64_t id =
                    currentTraceContext().requestId;
                collector.record('X', "toggle.span", i, 10, id, id);
                collector.record('i', "toggle.instant", i, 0, id, id);
                recorded.fetch_add(2, std::memory_order_relaxed);
                ++i;
            }
            // The scope restored the empty ambient context.
            EXPECT_EQ(currentTraceContext().requestId, 0u);
        });
    }

    std::thread toggler([&collector, &stop] {
        while (!stop.load(std::memory_order_relaxed)) {
            collector.disable();
            std::this_thread::yield();
            collector.enable(kRingCapacity);
            std::this_thread::yield();
        }
        collector.enable(kRingCapacity);
    });

    std::uint64_t consistent = 0;
    for (int round = 0; round < 200; ++round) {
        const TraceSnapshot snap = collector.snapshot();
        for (const TraceEventView &event : snap.events) {
            ASSERT_NE(event.name, nullptr);
            ASSERT_TRUE(event.phase == 'X' || event.phase == 'i');
            if (event.phase == 'i') {
                ASSERT_EQ(event.durNs, 0u);
            }
            // Only the six writers record during this loop, so ring
            // (tid) assignment stays below kWriters whatever the
            // registration order.
            ASSERT_LT(event.tid, kWriters);
            // arg and flow carry the same request id: a torn record
            // would disagree.
            ASSERT_NE(event.flowId, 0u);
            ASSERT_EQ(event.flowId, event.arg);
        }
        consistent += snap.events.size();
        std::this_thread::yield();
    }

    stop.store(true, std::memory_order_relaxed);
    for (std::thread &writer : writers)
        writer.join();
    toggler.join();

    EXPECT_GT(recorded.load(), 0u);
    EXPECT_GT(consistent, 0u);

    // Quiescent now and enabled: a final record must land.
    const std::uint64_t before = collector.snapshot().events.size();
    collector.record('i', "toggle.final", 1, 0, 1, 0);
    EXPECT_GT(collector.snapshot().events.size(), before);
}

TEST(TraceToggleStress, GlobalSpanSitesSurviveToggles)
{
    if (!kTracingEnabled)
        GTEST_SKIP() << "tracing disabled in this build";

    // The global collector: exactly what instrumented library sites
    // use.  TraceSpan/traceInstant must stay safe while another
    // thread toggles recording, whatever state they observe.
    TraceCollector &global = TraceCollector::global();
    std::atomic<bool> stop{false};

    std::thread toggler([&stop, &global] {
        while (!stop.load(std::memory_order_relaxed)) {
            global.enable(kRingCapacity);
            std::this_thread::yield();
            global.disable();
            std::this_thread::yield();
        }
        global.disable();
    });

    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (std::size_t t = 0; t < kWriters; ++t) {
        writers.emplace_back([&stop, t] {
            std::uint64_t i = 0;
            while (!stop.load(std::memory_order_relaxed)) {
                TraceContext context;
                context.requestId = t + 1;
                ScopedTraceContext scope(context);
                TraceSpan span("toggle.global_span", i);
                traceInstant("toggle.global_instant", i);
                ++i;
            }
        });
    }

    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    stop.store(true, std::memory_order_relaxed);
    for (std::thread &writer : writers)
        writer.join();
    toggler.join();

    // Whatever was captured is readable and consistent.
    const TraceSnapshot snap = global.snapshot();
    for (const TraceEventView &event : snap.events) {
        ASSERT_NE(event.name, nullptr);
        ASSERT_TRUE(event.phase == 'X' || event.phase == 'i');
    }
}

} // namespace
} // namespace obs
} // namespace mcdvfs
