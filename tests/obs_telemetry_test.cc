/**
 * @file
 * TelemetryPipeline and SloWatchdog tests over a private
 * MetricsRegistry: rule evaluation per kind, minEvents guards, breach
 * counting (total and per-rule labeled series), the sampler thread's
 * start/stop lifecycle, and the JSON / Prometheus exports.
 */

#include <gtest/gtest.h>

#include <chrono>

#include "obs/telemetry.hh"

namespace mcdvfs
{
namespace obs
{
namespace
{

#define REQUIRE_METRICS_ON()                                           \
    if (!kMetricsEnabled)                                              \
    GTEST_SKIP() << "metrics disabled in this build"

SloRule
shareRule(const char *name, SloRule::Kind kind, const char *metric,
          const char *denominator, double threshold,
          std::uint64_t min_events = 1)
{
    SloRule rule;
    rule.name = name;
    rule.kind = kind;
    rule.metric = metric;
    rule.denominator = denominator;
    rule.threshold = threshold;
    rule.minEvents = min_events;
    return rule;
}

TEST(SloWatchdog, ShareAboveBreachesAndCounts)
{
    REQUIRE_METRICS_ON();
    MetricsRegistry reg;
    TimeseriesStore store(16);
    SloWatchdog watchdog(&store, &reg);
    watchdog.addRule(shareRule("shed_rate", SloRule::Kind::ShareAbove,
                               "shed", "admitted", 0.05));

    Counter shed = reg.counter("shed");
    Counter admitted = reg.counter("admitted");
    shed.add(10);
    admitted.add(10);
    store.append(reg.snapshot(), 100);

    const std::vector<SloBreach> found = watchdog.evaluate();
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].rule, "shed_rate");
    EXPECT_DOUBLE_EQ(found[0].value, 0.5);
    EXPECT_EQ(watchdog.breachCount(), 1u);
    EXPECT_EQ(reg.counter("obs.slo.breach").value(), 1u);
    EXPECT_EQ(reg.counter("obs.slo.breach", {{"rule", "shed_rate"}})
                  .value(),
              1u);
    EXPECT_EQ(reg.counter("obs.slo.evaluations").value(), 1u);
}

TEST(SloWatchdog, ShareAboveHonoursMinEvents)
{
    REQUIRE_METRICS_ON();
    MetricsRegistry reg;
    TimeseriesStore store(16);
    SloWatchdog watchdog(&store, &reg);
    watchdog.addRule(shareRule("shed_rate", SloRule::Kind::ShareAbove,
                               "shed", "admitted", 0.05,
                               /*min_events=*/16));

    reg.counter("shed").add(5); // 5 events < 16: not evaluated
    store.append(reg.snapshot(), 100);
    EXPECT_TRUE(watchdog.evaluate().empty());

    reg.counter("shed").add(20);
    store.append(reg.snapshot(), 200);
    EXPECT_EQ(watchdog.evaluate().size(), 1u);
}

TEST(SloWatchdog, ShareBelowBreachesOnLowRatio)
{
    REQUIRE_METRICS_ON();
    MetricsRegistry reg;
    TimeseriesStore store(16);
    SloWatchdog watchdog(&store, &reg);
    watchdog.addRule(shareRule("hit_rate", SloRule::Kind::ShareBelow,
                               "hits", "misses", 0.5));

    reg.counter("hits").add(1);
    reg.counter("misses").add(9);
    store.append(reg.snapshot(), 100);
    ASSERT_EQ(watchdog.evaluate().size(), 1u);

    // Healthy ratio: no further breach.
    reg.counter("hits").add(90);
    store.append(reg.snapshot(), 200);
    SloRule narrow = shareRule("hit_rate_tail",
                               SloRule::Kind::ShareBelow, "hits",
                               "misses", 0.5);
    narrow.window = 1;
    watchdog.addRule(narrow);
    const std::vector<SloBreach> found = watchdog.evaluate();
    for (const SloBreach &breach : found)
        EXPECT_NE(breach.rule, "hit_rate_tail");
}

TEST(SloWatchdog, PerEventAboveDividesDeltas)
{
    REQUIRE_METRICS_ON();
    MetricsRegistry reg;
    TimeseriesStore store(16);
    SloWatchdog watchdog(&store, &reg);
    watchdog.addRule(shareRule("overhead", SloRule::Kind::PerEventAbove,
                               "overhead_ns", "events", 600e3));

    reg.counter("overhead_ns").add(500'000 * 4); // 500 us/event: ok
    reg.counter("events").add(4);
    store.append(reg.snapshot(), 100);
    EXPECT_TRUE(watchdog.evaluate().empty());

    reg.counter("overhead_ns").add(2'000'000); // 2 ms/event: breach
    reg.counter("events").add(1);
    SloRule tail = shareRule("overhead_tail",
                             SloRule::Kind::PerEventAbove,
                             "overhead_ns", "events", 600e3);
    tail.window = 1;
    watchdog.addRule(tail);
    store.append(reg.snapshot(), 200);
    const std::vector<SloBreach> found = watchdog.evaluate();
    bool tail_breached = false;
    for (const SloBreach &breach : found)
        tail_breached |= breach.rule == "overhead_tail";
    EXPECT_TRUE(tail_breached);
}

TEST(SloWatchdog, QuantileAboveUsesWindowedHistogram)
{
    REQUIRE_METRICS_ON();
    MetricsRegistry reg;
    TimeseriesStore store(16);
    SloWatchdog watchdog(&store, &reg);
    SloRule rule;
    rule.name = "p99";
    rule.kind = SloRule::Kind::QuantileAbove;
    rule.metric = "lat";
    rule.quantile = 0.99;
    rule.threshold = 1e6; // 1 ms
    rule.minEvents = 4;
    watchdog.addRule(rule);

    Histogram lat =
        reg.histogram("lat", MetricsRegistry::latencyBucketsNs());
    for (int i = 0; i < 100; ++i)
        lat.record(10'000'000); // 10 ms
    store.append(reg.snapshot(), 100);

    const std::vector<SloBreach> found = watchdog.evaluate();
    ASSERT_EQ(found.size(), 1u);
    EXPECT_GT(found[0].value, 1e6);
}

TEST(SloWatchdog, DefaultRulesCoverTheStockCatalog)
{
    const std::vector<SloRule> rules = SloWatchdog::defaultRules();
    ASSERT_EQ(rules.size(), 4u);
    EXPECT_EQ(rules[0].name, "submit_p99");
    EXPECT_EQ(rules[1].name, "shed_rate");
    EXPECT_EQ(rules[2].name, "snapshot_hit_rate");
    EXPECT_EQ(rules[3].name, "overhead_per_decision");
}

TEST(TelemetryPipeline, TickNowSamplesSynchronously)
{
    REQUIRE_METRICS_ON();
    MetricsRegistry reg;
    TelemetryConfig config;
    config.defaultRules = false;
    TelemetryPipeline pipeline(config, &reg);

    reg.counter("work").add(3);
    pipeline.tickNow();
    EXPECT_EQ(pipeline.ticks(), 1u);
    EXPECT_EQ(pipeline.store().counterDelta("work"), 3u);
    EXPECT_EQ(reg.counter("obs.telemetry.ticks").value(), 1u);
}

TEST(TelemetryPipeline, StartStopFlushesAtLeastOneTick)
{
    REQUIRE_METRICS_ON();
    MetricsRegistry reg;
    TelemetryConfig config;
    config.period = std::chrono::milliseconds(5);
    config.defaultRules = false;
    TelemetryPipeline pipeline(config, &reg);
    pipeline.start();
    reg.counter("work").add(7);
    pipeline.stop();
    EXPECT_GE(pipeline.ticks(), 1u);
    EXPECT_EQ(pipeline.store().counterDelta("work"), 7u);
}

TEST(TelemetryPipeline, TickCallbackSeesSnapshotAndIndex)
{
    REQUIRE_METRICS_ON();
    MetricsRegistry reg;
    TelemetryConfig config;
    config.defaultRules = false;
    TelemetryPipeline pipeline(config, &reg);

    std::uint64_t seen_tick = 0;
    std::uint64_t seen_value = 0;
    pipeline.setTickCallback(
        [&](const MetricsSnapshot &snapshot, std::uint64_t tick) {
            seen_tick = tick;
            for (const auto &[name, value] : snapshot.counters) {
                if (name == "work")
                    seen_value = value;
            }
        });
    reg.counter("work").add(11);
    pipeline.tickNow();
    EXPECT_EQ(seen_tick, 1u);
    EXPECT_EQ(seen_value, 11u);
}

TEST(TelemetryPipeline, ExportsJsonAndPromText)
{
    REQUIRE_METRICS_ON();
    MetricsRegistry reg;
    TelemetryConfig config;
    config.defaultRules = false;
    TelemetryPipeline pipeline(config, &reg);
    reg.counter("svc.cache.hits", {{"wl", "gobmk"}}).add(2);
    reg.counter("svc.cache.hits").add(2);
    pipeline.tickNow();

    const std::string json = pipeline.exportJson();
    EXPECT_NE(json.find("\"schema\": \"mcdvfs-timeseries-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("svc.cache.hits{wl=gobmk}"),
              std::string::npos);

    const std::string prom = pipeline.exportProm();
    EXPECT_NE(prom.find("svc_cache_hits_total{wl=\"gobmk\"} 2"),
              std::string::npos);
    EXPECT_NE(prom.find("svc_cache_hits_total 2"), std::string::npos);
}

TEST(TelemetryPipeline, WatchdogBreachesLandInExport)
{
    REQUIRE_METRICS_ON();
    MetricsRegistry reg;
    TelemetryConfig config;
    config.defaultRules = true;
    TelemetryPipeline pipeline(config, &reg);

    // Overdrive the stock shed_rate rule (5%).
    reg.counter("daemon.shed").add(50);
    reg.counter("daemon.admitted").add(50);
    pipeline.tickNow();

    EXPECT_GE(pipeline.watchdog().breachCount(), 1u);
    const std::string json = pipeline.exportJson();
    EXPECT_NE(json.find("\"rule\": \"shed_rate\""), std::string::npos);
}

} // namespace
} // namespace obs
} // namespace mcdvfs
