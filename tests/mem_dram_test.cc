/**
 * @file
 * Unit and property tests for the LPDDR3 device model and its
 * frequency-dependent timing.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "mem/dram.hh"

namespace mcdvfs
{
namespace
{

TEST(DramConfig, Validation)
{
    DramConfig config;
    EXPECT_NO_THROW(config.validate());

    config.banks = 6;
    EXPECT_THROW(config.validate(), FatalError);

    config = DramConfig{};
    config.rowBytes = 3000;
    EXPECT_THROW(config.validate(), FatalError);

    config = DramConfig{};
    config.lineBytes = 30;  // not a multiple of busBytes
    EXPECT_THROW(config.validate(), FatalError);
}

TEST(DramDevice, FirstAccessIsClosedBank)
{
    DramDevice dram(DramConfig{});
    EXPECT_EQ(dram.access(0, false), RowOutcome::Closed);
}

TEST(DramDevice, SameRowHits)
{
    DramDevice dram(DramConfig{});
    dram.access(0, false);
    EXPECT_EQ(dram.access(64, false), RowOutcome::Hit);
    EXPECT_EQ(dram.access(4095, false), RowOutcome::Hit);
}

TEST(DramDevice, DifferentRowSameBankConflicts)
{
    const DramConfig config;
    DramDevice dram(config);
    dram.access(0, false);
    // Same bank, next row: rowBytes * banks further on.
    const std::uint64_t next_row =
        static_cast<std::uint64_t>(config.rowBytes) * config.banks;
    EXPECT_EQ(dram.access(next_row, false), RowOutcome::Conflict);
}

TEST(DramDevice, AdjacentRowsMapToDifferentBanks)
{
    const DramConfig config;
    DramDevice dram(config);
    dram.access(0, false);
    // Crossing the row boundary lands in the next bank: closed, not
    // conflict — the interleave sequential streams rely on.
    EXPECT_EQ(dram.access(config.rowBytes, false), RowOutcome::Closed);
    // And the first row is still open.
    EXPECT_EQ(dram.access(64, false), RowOutcome::Hit);
}

TEST(DramDevice, SequentialStreamIsRowFriendly)
{
    const DramConfig config;
    DramDevice dram(config);
    Count hits = 0;
    const int lines = 1024;
    for (int i = 0; i < lines; ++i)
        hits += dram.access(static_cast<std::uint64_t>(i) * 64,
                            false) == RowOutcome::Hit;
    // 64 lines per 4 KiB row: all but one access per row hits.
    EXPECT_GT(static_cast<double>(hits) / lines, 0.95);
    EXPECT_GT(dram.stats().rowHitRatio(), 0.95);
}

TEST(DramDevice, StatsSplitReadsAndWrites)
{
    DramDevice dram(DramConfig{});
    dram.access(0, false);
    dram.access(64, true);
    EXPECT_EQ(dram.stats().reads, 1u);
    EXPECT_EQ(dram.stats().writes, 1u);
    EXPECT_EQ(dram.stats().accesses(), 2u);
}

TEST(DramDevice, ResetClosesBanks)
{
    DramDevice dram(DramConfig{});
    dram.access(0, false);
    dram.reset();
    EXPECT_EQ(dram.access(64, false), RowOutcome::Closed);
}

TEST(DramDevice, ClearStatsKeepsBankState)
{
    DramDevice dram(DramConfig{});
    dram.access(0, false);
    dram.clearStats();
    EXPECT_EQ(dram.stats().accesses(), 0u);
    EXPECT_EQ(dram.access(64, false), RowOutcome::Hit);
}

TEST(DramTiming, LatencyOrdering)
{
    const DramTiming timing;
    const DramConfig config;
    const Hertz f = megaHertz(800);
    const Seconds hit = timing.latency(RowOutcome::Hit, f, config);
    const Seconds closed =
        timing.latency(RowOutcome::Closed, f, config);
    const Seconds conflict =
        timing.latency(RowOutcome::Conflict, f, config);
    EXPECT_LT(hit, closed);
    EXPECT_LT(closed, conflict);
    EXPECT_NEAR(conflict - closed, timing.tRp, 1e-12);
    EXPECT_NEAR(closed - hit, timing.tRcd, 1e-12);
}

TEST(DramTiming, BurstScalesInverselyWithFrequency)
{
    const DramTiming timing;
    const DramConfig config;
    const Seconds at800 = timing.burstSeconds(megaHertz(800), config);
    const Seconds at200 = timing.burstSeconds(megaHertz(200), config);
    EXPECT_NEAR(at200 / at800, 4.0, 1e-9);
    // 64B line over a 4B DDR bus: 8 interface cycles.
    EXPECT_NEAR(at800, 8.0 / megaHertz(800), 1e-15);
}

TEST(DramTiming, BandwidthScalesLinearly)
{
    const DramTiming timing;
    const DramConfig config;
    const double at800 = timing.usableBandwidth(megaHertz(800), config);
    const double at400 = timing.usableBandwidth(megaHertz(400), config);
    EXPECT_NEAR(at800 / at400, 2.0, 1e-9);
    // 2 x 800 MHz x 4 B x utilization.
    EXPECT_NEAR(at800,
                2.0 * megaHertz(800) * 4.0 * timing.maxUtilization,
                1.0);
}

/** Property: latency decreases monotonically with memory frequency. */
class DramLatencyProperty : public ::testing::TestWithParam<RowOutcome>
{
};

TEST_P(DramLatencyProperty, MonotoneInFrequency)
{
    const DramTiming timing;
    const DramConfig config;
    Seconds prev = 1e9;
    for (double mhz = 200; mhz <= 800; mhz += 50) {
        const Seconds lat =
            timing.latency(GetParam(), megaHertz(mhz), config);
        EXPECT_LT(lat, prev);
        prev = lat;
    }
    // The analog floor remains even at very high frequency.
    const Seconds floor =
        timing.latency(GetParam(), megaHertz(100000), config);
    EXPECT_GT(floor, timing.tCas * 0.99);
}

INSTANTIATE_TEST_SUITE_P(Outcomes, DramLatencyProperty,
                         ::testing::Values(RowOutcome::Hit,
                                           RowOutcome::Closed,
                                           RowOutcome::Conflict));

} // namespace
} // namespace mcdvfs
