/**
 * @file
 * Unit and property tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hh"

namespace mcdvfs
{
namespace
{

TEST(Rng, SameSeedSameSequence)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double total = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        total += rng.uniform();
    EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(Rng, UniformIntRespectsBound)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.uniformInt(17), 17u);
}

TEST(Rng, UniformIntCoversAllValues)
{
    Rng rng(5);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 8000; ++i)
        ++seen[rng.uniformInt(8)];
    for (int count : seen) {
        EXPECT_GT(count, 800);
        EXPECT_LT(count, 1200);
    }
}

TEST(Rng, UniformRangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformRange(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo = saw_lo || v == -3;
        saw_hi = saw_hi || v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
        EXPECT_FALSE(rng.chance(-0.5));
        EXPECT_TRUE(rng.chance(1.5));
    }
}

TEST(Rng, ChanceFrequency)
{
    Rng rng(17);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GeometricWithCertainSuccess)
{
    Rng rng(19);
    EXPECT_EQ(rng.geometric(1.0), 0u);
    EXPECT_EQ(rng.geometric(2.0), 0u);
}

TEST(Rng, GeometricMean)
{
    Rng rng(23);
    double total = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        total += static_cast<double>(rng.geometric(0.25));
    // Mean of failures-before-success is (1-p)/p = 3.
    EXPECT_NEAR(total / n, 3.0, 0.1);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(29);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng parent(31);
    Rng child = parent.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += parent.next() == child.next();
    EXPECT_LT(same, 3);
}

/** Property sweep: uniformInt stays in range for many bounds. */
class RngBoundProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(RngBoundProperty, UniformIntWithinBound)
{
    const std::uint64_t bound = GetParam();
    Rng rng(bound * 2654435761u + 1);
    for (int i = 0; i < 2000; ++i)
        ASSERT_LT(rng.uniformInt(bound), bound);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngBoundProperty,
                         ::testing::Values(1, 2, 3, 7, 64, 1000,
                                           1u << 20, (1ull << 40) + 7));

} // namespace
} // namespace mcdvfs
