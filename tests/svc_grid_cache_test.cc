/**
 * @file
 * GridCache and fingerprint tests: hit/miss/eviction accounting, LRU
 * order, and key isolation across workloads, spaces and configs.
 */

#include <gtest/gtest.h>

#include "svc/fingerprint.hh"
#include "svc/grid_cache.hh"
#include "trace/workloads.hh"

namespace mcdvfs
{
namespace
{

std::shared_ptr<const MeasuredGrid>
dummyGrid(const std::string &name)
{
    return std::make_shared<const MeasuredGrid>(
        name, SettingsSpace::coarse(), 4, 10'000'000);
}

svc::GridKey
keyOf(std::uint64_t workload, std::uint64_t space = 1,
      std::uint64_t config = 1)
{
    return svc::GridKey{workload, space, config};
}

TEST(GridCache, MissThenHit)
{
    svc::GridCache cache(4);
    const svc::GridKey key = keyOf(1);
    EXPECT_EQ(cache.find(key), nullptr);
    cache.insert(key, dummyGrid("a"));
    const auto found = cache.find(key);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->workload(), "a");

    const svc::GridCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.evictions, 0u);
    EXPECT_EQ(stats.entries, 1u);
}

TEST(GridCache, EvictsLeastRecentlyUsed)
{
    // One shard so the LRU order is global and deterministic.
    svc::GridCache cache(2, /*shards=*/1);
    cache.insert(keyOf(1), dummyGrid("a"));
    cache.insert(keyOf(2), dummyGrid("b"));
    // Touch "a" so "b" becomes the eviction victim.
    ASSERT_NE(cache.find(keyOf(1)), nullptr);
    cache.insert(keyOf(3), dummyGrid("c"));

    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.find(keyOf(2)), nullptr);   // evicted
    EXPECT_NE(cache.find(keyOf(1)), nullptr);   // survived the touch
    EXPECT_NE(cache.find(keyOf(3)), nullptr);
    EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(GridCache, ShardCountNeverExceedsCapacity)
{
    svc::GridCache cache(2, /*shards=*/16);
    EXPECT_LE(cache.shardCount(), 2u);
    EXPECT_THROW(svc::GridCache(0), FatalError);
    EXPECT_THROW(svc::GridCache(4, 0), FatalError);
}

TEST(GridCache, KeysIsolateEveryComponent)
{
    svc::GridCache cache(8);
    cache.insert(keyOf(1, 1, 1), dummyGrid("a"));
    EXPECT_EQ(cache.find(keyOf(2, 1, 1)), nullptr);  // other workload
    EXPECT_EQ(cache.find(keyOf(1, 2, 1)), nullptr);  // other space
    EXPECT_EQ(cache.find(keyOf(1, 1, 2)), nullptr);  // other config
    EXPECT_NE(cache.find(keyOf(1, 1, 1)), nullptr);
}

TEST(Fingerprint, StableAcrossIndependentConstruction)
{
    // Two independently built instances of the same workload, space
    // and config must produce equal fingerprints.
    EXPECT_EQ(svc::fingerprintWorkload(makeGobmk()),
              svc::fingerprintWorkload(makeGobmk()));
    EXPECT_EQ(svc::fingerprintSpace(SettingsSpace::coarse()),
              svc::fingerprintSpace(SettingsSpace::coarse()));
    EXPECT_EQ(svc::fingerprintConfig(SystemConfig::paperDefault()),
              svc::fingerprintConfig(SystemConfig::paperDefault()));
}

TEST(Fingerprint, DistinguishesInputs)
{
    EXPECT_NE(svc::fingerprintWorkload(makeGobmk()),
              svc::fingerprintWorkload(makeMilc()));
    EXPECT_NE(svc::fingerprintSpace(SettingsSpace::coarse()),
              svc::fingerprintSpace(SettingsSpace::fine()));

    SystemConfig tweaked;
    tweaked.measurementNoise = 0.004;
    EXPECT_NE(svc::fingerprintConfig(SystemConfig::paperDefault()),
              svc::fingerprintConfig(tweaked));

    SystemConfig sampler_tweaked;
    sampler_tweaked.sampler.simInstructionsPerSample = 20'000;
    EXPECT_NE(svc::fingerprintConfig(SystemConfig::paperDefault()),
              svc::fingerprintConfig(sampler_tweaked));

    SystemConfig timing_tweaked;
    timing_tweaked.timing.l2StallExposure = 0.5;
    EXPECT_NE(svc::fingerprintConfig(SystemConfig::paperDefault()),
              svc::fingerprintConfig(timing_tweaked));
}

} // namespace
} // namespace mcdvfs
