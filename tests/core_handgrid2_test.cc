/**
 * @file
 * Hand-computed verification, part 2: transitions, tuning overhead
 * and trade-off numbers on the same tiny grid as
 * core_handgrid_test.cc.
 */

#include <gtest/gtest.h>

#include "core/tradeoff.hh"
#include "core/transitions.hh"

namespace mcdvfs
{
namespace
{

SettingsSpace
tinySpace()
{
    return SettingsSpace(
        FrequencyLadder(std::vector<Hertz>{megaHertz(400),
                                           megaHertz(700),
                                           megaHertz(1000)}),
        FrequencyLadder(std::vector<Hertz>{megaHertz(300),
                                           megaHertz(600)}));
}

MeasuredGrid
handGrid()
{
    MeasuredGrid grid("hand", tinySpace(), 3, 1'000'000);
    const double t[3][6] = {
        {10.0, 10.0, 6.0, 6.0, 4.0, 4.02},
        {12.0, 9.0, 8.0, 5.95, 7.0, 5.0},
        {10.0, 10.0, 6.0, 6.0, 4.6, 4.59},
    };
    const double e[3][6] = {
        {10.0, 12.0, 11.0, 13.0, 14.0, 16.0},
        {10.0, 12.0, 13.0, 15.0, 18.0, 20.0},
        {10.0, 12.0, 11.0, 13.0, 14.0, 16.5},
    };
    for (std::size_t s = 0; s < 3; ++s) {
        for (std::size_t k = 0; k < 6; ++k) {
            grid.cell(s, k).seconds = t[s][k] * 1e-3;
            grid.cell(s, k).cpuEnergy = e[s][k] * 1e-3 * 0.8;
            grid.cell(s, k).memEnergy = e[s][k] * 1e-3 * 0.2;
        }
    }
    return grid;
}

struct Chain
{
    InefficiencyAnalysis analysis;
    OptimalSettingsFinder finder;
    ClusterFinder clusters;
    StableRegionFinder regions;
    TransitionAnalysis transitions;
    TuningCostModel cost;
    TradeoffEvaluator tradeoff;

    explicit Chain(const MeasuredGrid &grid)
        : analysis(grid), finder(analysis, 0.001), clusters(finder),
          regions(clusters), transitions(regions, clusters), cost(),
          tradeoff(regions, clusters, cost)
    {
    }
};

TEST(HandGrid2, OptimalTrackingTransitions)
{
    // Optimal trajectory at 1.405: k4, k2, k4 -> 2 transitions over
    // 3 M modeled instructions = 666.67 per billion.
    const MeasuredGrid grid = handGrid();
    Chain chain(grid);
    const TransitionReport report =
        chain.transitions.forOptimalTracking(1.405);
    EXPECT_EQ(report.transitions, 2u);
    EXPECT_NEAR(report.perBillionInstructions, 2e9 / 3e6, 1.0);
    // Run lengths 1,1,1.
    EXPECT_EQ(report.runLengths.count(), 3u);
    EXPECT_DOUBLE_EQ(report.runLengths.quantile(1.0), 1.0);
}

TEST(HandGrid2, ClusterPolicyEliminatesTransitions)
{
    // At threshold 40% one region covers the run at k2: 0 transitions.
    const MeasuredGrid grid = handGrid();
    Chain chain(grid);
    const TransitionReport report =
        chain.transitions.forClusterPolicy(1.405, 0.40);
    EXPECT_EQ(report.transitions, 0u);
}

TEST(HandGrid2, TradeoffNumbersByHand)
{
    // Optimal tracking at 1.405: times 4 + 8 + 4.6 = 16.6 ms,
    //                            energies 14 + 13 + 14 = 41 mJ.
    // Cluster policy at 40%: k2 throughout: 6 + 8 + 6 = 20 ms,
    //                        11 + 13 + 11 = 35 mJ.
    const MeasuredGrid grid = handGrid();
    Chain chain(grid);
    const PolicyOutcome optimal = chain.tradeoff.optimalTracking(1.405);
    EXPECT_NEAR(optimal.time, 16.6e-3, 1e-9);
    EXPECT_NEAR(optimal.energy, 41e-3, 1e-9);
    EXPECT_EQ(optimal.tuningEvents, 3u);
    EXPECT_EQ(optimal.transitions, 2u);
    // Achieved inefficiency = 41 / 30.
    EXPECT_NEAR(optimal.achievedInefficiency, 41.0 / 30.0, 1e-9);

    const PolicyOutcome cluster =
        chain.tradeoff.clusterPolicy(1.405, 0.40);
    EXPECT_NEAR(cluster.time, 20e-3, 1e-9);
    EXPECT_NEAR(cluster.energy, 35e-3, 1e-9);
    EXPECT_EQ(cluster.tuningEvents, 1u);
    EXPECT_EQ(cluster.transitions, 0u);

    const TradeoffRow row = chain.tradeoff.compare(1.405, 0.40);
    // perf = (16.6 - 20)/16.6 = -20.48%; energy = (35-41)/41 = -14.6%.
    EXPECT_NEAR(row.perfPct, (16.6 - 20.0) / 16.6 * 100.0, 1e-6);
    EXPECT_NEAR(row.energyPct, (35.0 - 41.0) / 41.0 * 100.0, 1e-6);
}

TEST(HandGrid2, TuningOverheadByHand)
{
    // Six settings: event cost = 500us * (0.6 * 6/70 + 0.4).
    const MeasuredGrid grid = handGrid();
    Chain chain(grid);
    const double scale = 0.6 * 6.0 / 70.0 + 0.4;
    const PolicyOutcome optimal = chain.tradeoff.optimalTracking(1.405);
    EXPECT_NEAR(optimal.timeWithOverhead,
                optimal.time + 3.0 * microSeconds(500) * scale, 1e-12);
    EXPECT_NEAR(optimal.energyWithOverhead,
                optimal.energy + 3.0 * microJoules(30) * scale, 1e-15);
}

TEST(HandGrid2, NormalizedExecutionTime)
{
    // At budget 1.0 the tracker must sit at per-sample Emin settings
    // (k0): times 10 + 12 + 10 = 32 ms.  Normalized time at 1.405 =
    // 16.6 / 32.
    const MeasuredGrid grid = handGrid();
    Chain chain(grid);
    EXPECT_NEAR(chain.tradeoff.normalizedExecutionTime(1.405),
                16.6 / 32.0, 1e-9);
}

} // namespace
} // namespace mcdvfs
