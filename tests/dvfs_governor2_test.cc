/**
 * @file
 * Unit tests for the conservative and schedutil governors.
 */

#include <gtest/gtest.h>

#include "dvfs/governor.hh"

namespace mcdvfs
{
namespace
{

SampleObservation
obs(double busy, double bw, FrequencySetting at)
{
    SampleObservation observation;
    observation.cpuBusyFrac = busy;
    observation.memBwUtil = bw;
    observation.setting = at;
    return observation;
}

TEST(ConservativeGovernor, StepsOneAtATime)
{
    const SettingsSpace space = SettingsSpace::coarse();
    ConservativeGovernor governor(space);
    const FrequencySetting start = governor.decide(nullptr);
    EXPECT_TRUE(start == space.maxSetting());

    const SampleObservation idle = obs(0.1, 0.1, start);
    const FrequencySetting one_down = governor.decide(&idle);
    EXPECT_DOUBLE_EQ(one_down.cpu, megaHertz(900));
    EXPECT_DOUBLE_EQ(one_down.mem, megaHertz(700));

    const SampleObservation busy = obs(0.95, 0.95, one_down);
    const FrequencySetting one_up = governor.decide(&busy);
    EXPECT_DOUBLE_EQ(one_up.cpu, megaHertz(1000));
    EXPECT_DOUBLE_EQ(one_up.mem, megaHertz(800));
}

TEST(ConservativeGovernor, NeverJumpsToMax)
{
    const SettingsSpace space = SettingsSpace::coarse();
    ConservativeGovernor governor(space);
    governor.decide(nullptr);
    // Drain to the bottom first.
    FrequencySetting current = space.maxSetting();
    for (int i = 0; i < 20; ++i) {
        const SampleObservation idle = obs(0.1, 0.1, current);
        current = governor.decide(&idle);
    }
    EXPECT_DOUBLE_EQ(current.cpu, space.minSetting().cpu);
    // One busy sample raises by exactly one step (not to max).
    const SampleObservation busy = obs(1.0, 0.2, current);
    EXPECT_DOUBLE_EQ(governor.decide(&busy).cpu, megaHertz(200));
}

TEST(ConservativeGovernor, HoldsInDeadband)
{
    const SettingsSpace space = SettingsSpace::coarse();
    ConservativeGovernor governor(space);
    FrequencySetting current = governor.decide(nullptr);
    const SampleObservation mid = obs(0.6, 0.6, current);
    EXPECT_TRUE(governor.decide(&mid) == current);
}

TEST(SchedutilGovernor, StartsAtMax)
{
    const SettingsSpace space = SettingsSpace::coarse();
    SchedutilGovernor governor(space);
    EXPECT_TRUE(governor.decide(nullptr) == space.maxSetting());
}

TEST(SchedutilGovernor, ProportionalToUtilization)
{
    const SettingsSpace space = SettingsSpace::coarse();
    SchedutilGovernor governor(space);
    governor.decide(nullptr);
    // Running at 1000 MHz with 40% busy: target = 1.25*0.4*1000 =
    // 500 MHz, snapped up to 500.
    const SampleObservation half =
        obs(0.40, 0.1, space.maxSetting());
    const FrequencySetting next = governor.decide(&half);
    EXPECT_DOUBLE_EQ(next.cpu, megaHertz(500));
    EXPECT_DOUBLE_EQ(next.mem, megaHertz(200));
}

TEST(SchedutilGovernor, SnapsUpNotDown)
{
    const SettingsSpace space = SettingsSpace::coarse();
    SchedutilGovernor governor(space);
    governor.decide(nullptr);
    // target = 1.25*0.45*1000 = 562.5 -> 600 (never 500).
    const SampleObservation util =
        obs(0.45, 0.1, space.maxSetting());
    EXPECT_DOUBLE_EQ(governor.decide(&util).cpu, megaHertz(600));
}

TEST(SchedutilGovernor, SaturatesAtMax)
{
    const SettingsSpace space = SettingsSpace::coarse();
    SchedutilGovernor governor(space);
    governor.decide(nullptr);
    const SampleObservation busy =
        obs(1.0, 1.0, space.maxSetting());
    EXPECT_TRUE(governor.decide(&busy) == space.maxSetting());
}

} // namespace
} // namespace mcdvfs
