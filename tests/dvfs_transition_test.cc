/**
 * @file
 * Unit tests for the frequency-transition cost model.
 */

#include <gtest/gtest.h>

#include "dvfs/transition.hh"

namespace mcdvfs
{
namespace
{

TEST(TransitionModel, NoChangeIsFree)
{
    const TransitionModel model;
    const FrequencySetting setting{megaHertz(500), megaHertz(400)};
    const TransitionCost cost = model.cost(setting, setting);
    EXPECT_EQ(cost.latency, 0.0);
    EXPECT_EQ(cost.energy, 0.0);
}

TEST(TransitionModel, CpuOnlyChange)
{
    const TransitionModel model;
    const FrequencySetting from{megaHertz(500), megaHertz(400)};
    const FrequencySetting to{megaHertz(700), megaHertz(400)};
    const TransitionCost cost = model.cost(from, to);
    EXPECT_DOUBLE_EQ(cost.latency, model.params().cpuLatency);
    EXPECT_DOUBLE_EQ(cost.energy, model.params().cpuEnergy);
}

TEST(TransitionModel, MemOnlyChange)
{
    const TransitionModel model;
    const FrequencySetting from{megaHertz(500), megaHertz(400)};
    const FrequencySetting to{megaHertz(500), megaHertz(800)};
    const TransitionCost cost = model.cost(from, to);
    EXPECT_DOUBLE_EQ(cost.latency, model.params().memLatency);
    EXPECT_DOUBLE_EQ(cost.energy, model.params().memEnergy);
}

TEST(TransitionModel, BothDomainsAdditive)
{
    const TransitionModel model;
    const FrequencySetting from{megaHertz(500), megaHertz(400)};
    const FrequencySetting to{megaHertz(700), megaHertz(800)};
    const TransitionCost cost = model.cost(from, to);
    EXPECT_DOUBLE_EQ(cost.latency, model.params().cpuLatency +
                                       model.params().memLatency);
    EXPECT_DOUBLE_EQ(cost.energy, model.params().cpuEnergy +
                                      model.params().memEnergy);
}

TEST(TransitionModel, DomainsChangedCount)
{
    const FrequencySetting a{megaHertz(500), megaHertz(400)};
    const FrequencySetting b{megaHertz(700), megaHertz(400)};
    const FrequencySetting c{megaHertz(700), megaHertz(800)};
    EXPECT_EQ(TransitionModel::domainsChanged(a, a), 0);
    EXPECT_EQ(TransitionModel::domainsChanged(a, b), 1);
    EXPECT_EQ(TransitionModel::domainsChanged(a, c), 2);
}

TEST(TransitionModel, LatencyIsTensOfMicroseconds)
{
    // §VI-C: "time taken by PLLs to change voltage and frequency in
    // commercial processors is in the order of 10s of microseconds."
    const TransitionModel model;
    EXPECT_GE(model.params().cpuLatency, microSeconds(10));
    EXPECT_LE(model.params().cpuLatency, microSeconds(200));
}

TEST(TransitionCost, Accumulates)
{
    TransitionCost total;
    total += TransitionCost{1e-6, 2e-6};
    total += TransitionCost{3e-6, 4e-6};
    EXPECT_NEAR(total.latency, 4e-6, 1e-18);
    EXPECT_NEAR(total.energy, 6e-6, 1e-18);
}

} // namespace
} // namespace mcdvfs
