/**
 * @file
 * ThreadPool graceful-drain tests (stress label): drain() waits for
 * every queued and running task, gates subsequent submits, tolerates
 * nested parallelFor work, and survives racing producers.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "exec/thread_pool.hh"

namespace mcdvfs
{
namespace
{

using exec::ThreadPool;

TEST(ThreadPoolDrain, WaitsForQueuedAndRunningTasks)
{
    ThreadPool pool(4);
    std::atomic<int> ran{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 64; ++i) {
        futures.push_back(pool.submit([&ran] {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
            ran.fetch_add(1, std::memory_order_relaxed);
        }));
    }
    pool.drain();
    EXPECT_EQ(ran.load(), 64);
    EXPECT_TRUE(pool.draining());
    for (std::future<void> &future : futures)
        EXPECT_EQ(future.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
}

TEST(ThreadPoolDrain, GatesSubmitAfterDrain)
{
    ThreadPool pool(2);
    pool.drain();
    EXPECT_THROW(pool.submit([] {}), FatalError);
}

TEST(ThreadPoolDrain, IsIdempotent)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([&ran] { ran.fetch_add(1); });
    pool.drain();
    pool.drain();
    EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolDrain, EmptyPoolDrainsImmediately)
{
    ThreadPool pool(3);
    pool.drain();
    EXPECT_TRUE(pool.draining());
}

TEST(ThreadPoolDrain, WaitsForNestedParallelForWork)
{
    // An in-flight task may fan out over the pool (the service's grid
    // builds do exactly this); drain must wait for the nested chunks
    // too, even though they enqueue after draining began.
    ThreadPool pool(4);
    std::atomic<std::size_t> touched{0};
    pool.submit([&pool, &touched] {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        pool.parallelFor(
            0, 1000,
            [&touched](std::size_t) {
                touched.fetch_add(1, std::memory_order_relaxed);
            },
            /*grain=*/8);
    });
    pool.drain();
    EXPECT_EQ(touched.load(), 1000u);
}

TEST(ThreadPoolDrain, StressRacingProducersLoseNoTasks)
{
    // Producers hammer submit() while the main thread drains.  Every
    // submit must either throw FatalError (drain won the race) or be
    // executed before the pool is destroyed — tasks are never lost.
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> executed{0};
    {
        ThreadPool pool(4);
        std::atomic<bool> go{false};
        std::vector<std::thread> producers;
        for (int t = 0; t < 8; ++t) {
            producers.emplace_back([&pool, &go, &accepted, &executed] {
                while (!go.load(std::memory_order_acquire))
                    std::this_thread::yield();
                for (int i = 0; i < 4000; ++i) {
                    try {
                        pool.submit([&executed] {
                            executed.fetch_add(
                                1, std::memory_order_relaxed);
                        });
                        accepted.fetch_add(1,
                                           std::memory_order_relaxed);
                    } catch (const FatalError &) {
                        break;  // drain closed the gate
                    }
                }
            });
        }
        go.store(true, std::memory_order_release);
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        pool.drain();
        for (std::thread &producer : producers)
            producer.join();
        // The pool destructor runs every task still queued (submits
        // that slipped past the gate before drain() sampled the
        // queue), so the accepted/executed comparison happens outside
        // this scope.
    }
    EXPECT_EQ(executed.load(), accepted.load());
    EXPECT_GT(accepted.load(), 0u);
}

} // namespace
} // namespace mcdvfs
