/**
 * @file
 * Unit tests for the obs metrics layer: registration semantics,
 * counter/gauge/histogram behavior, ScopedTimer, reset, and the
 * lock-free striped write path under concurrent writers.
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/logging.hh"
#include "obs/metrics.hh"

namespace mcdvfs
{
namespace
{

// The whole file asserts live values, so it only makes sense in
// instrumented builds; MCDVFS_METRICS=OFF compiles mutators away.
#define REQUIRE_METRICS_ON()                                           \
    if (!obs::kMetricsEnabled)                                         \
    GTEST_SKIP() << "metrics disabled in this build"

TEST(ObsCounter, AddAndValue)
{
    REQUIRE_METRICS_ON();
    obs::MetricsRegistry reg;
    obs::Counter counter = reg.counter("c");
    EXPECT_EQ(counter.value(), 0u);
    counter.add();
    counter.add(41);
    EXPECT_EQ(counter.value(), 42u);
}

TEST(ObsCounter, DefaultHandleIsInertNotCrashing)
{
    obs::Counter counter;
    counter.add(7);
    EXPECT_EQ(counter.value(), 0u);
    obs::Gauge gauge;
    gauge.set(3);
    gauge.add(-1);
    EXPECT_EQ(gauge.value(), 0);
    obs::Histogram histogram;
    histogram.record(1);
    EXPECT_EQ(histogram.count(), 0u);
    EXPECT_EQ(histogram.sum(), 0u);
}

TEST(ObsRegistry, RegistrationIsIdempotentByName)
{
    REQUIRE_METRICS_ON();
    obs::MetricsRegistry reg;
    obs::Counter a = reg.counter("same");
    obs::Counter b = reg.counter("same");
    a.add(1);
    b.add(2);
    EXPECT_EQ(a.value(), 3u);
    EXPECT_EQ(b.value(), 3u);
}

TEST(ObsRegistry, KindMismatchThrows)
{
    obs::MetricsRegistry reg;
    reg.counter("name");
    EXPECT_THROW(reg.gauge("name"), FatalError);
    EXPECT_THROW(
        reg.histogram("name", obs::MetricsRegistry::latencyBucketsNs()),
        FatalError);
}

TEST(ObsRegistry, HistogramBoundsMismatchThrows)
{
    obs::MetricsRegistry reg;
    reg.histogram("h", {10, 20});
    EXPECT_NO_THROW(reg.histogram("h", {10, 20}));
    EXPECT_THROW(reg.histogram("h", {10, 30}), FatalError);
    EXPECT_THROW(reg.histogram("bad", {20, 10}), FatalError);
}

TEST(ObsGauge, SetAndAddBothWays)
{
    REQUIRE_METRICS_ON();
    obs::MetricsRegistry reg;
    obs::Gauge gauge = reg.gauge("g");
    gauge.set(10);
    gauge.add(-3);
    gauge.add(1);
    EXPECT_EQ(gauge.value(), 8);
    gauge.set(-5);
    EXPECT_EQ(gauge.value(), -5);
}

TEST(ObsHistogram, BucketsByUpperBound)
{
    REQUIRE_METRICS_ON();
    obs::MetricsRegistry reg;
    obs::Histogram histogram = reg.histogram("h", {10, 100});
    histogram.record(0);    // <= 10
    histogram.record(10);   // <= 10 (bounds are inclusive upper)
    histogram.record(11);   // <= 100
    histogram.record(101);  // overflow
    EXPECT_EQ(histogram.count(), 4u);
    EXPECT_EQ(histogram.sum(), 122u);

    const obs::MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.histograms.size(), 1u);
    const auto &view = snap.histograms.front();
    ASSERT_EQ(view.counts.size(), 3u);  // bounds + overflow
    EXPECT_EQ(view.counts[0], 2u);
    EXPECT_EQ(view.counts[1], 1u);
    EXPECT_EQ(view.counts[2], 1u);
    EXPECT_EQ(view.count, 4u);
    EXPECT_EQ(view.sum, 122u);
}

TEST(ObsScopedTimer, RecordsOnceOnDestruction)
{
    REQUIRE_METRICS_ON();
    obs::MetricsRegistry reg;
    obs::Histogram histogram =
        reg.histogram("t", obs::MetricsRegistry::latencyBucketsNs());
    {
        obs::ScopedTimer timer(histogram);
    }
    EXPECT_EQ(histogram.count(), 1u);
}

TEST(ObsScopedTimer, StopDisarmsDestructor)
{
    REQUIRE_METRICS_ON();
    obs::MetricsRegistry reg;
    obs::Histogram histogram =
        reg.histogram("t", obs::MetricsRegistry::latencyBucketsNs());
    {
        obs::ScopedTimer timer(histogram);
        timer.stop();
        timer.stop();  // idempotent
    }
    EXPECT_EQ(histogram.count(), 1u);
}

TEST(ObsRegistry, ResetZeroesButKeepsNames)
{
    REQUIRE_METRICS_ON();
    obs::MetricsRegistry reg;
    obs::Counter counter = reg.counter("c");
    obs::Gauge gauge = reg.gauge("g");
    obs::Histogram histogram = reg.histogram("h", {10});
    counter.add(5);
    gauge.set(7);
    histogram.record(3);

    reg.reset();

    EXPECT_EQ(counter.value(), 0u);
    EXPECT_EQ(gauge.value(), 0);
    EXPECT_EQ(histogram.count(), 0u);
    EXPECT_EQ(histogram.sum(), 0u);
    const obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counters.size(), 1u);
    EXPECT_EQ(snap.gauges.size(), 1u);
    EXPECT_EQ(snap.histograms.size(), 1u);
}

TEST(ObsSnapshot, SortedByName)
{
    obs::MetricsRegistry reg;
    reg.counter("zebra");
    reg.counter("alpha");
    reg.counter("middle");
    const obs::MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.counters.size(), 3u);
    EXPECT_EQ(snap.counters[0].first, "alpha");
    EXPECT_EQ(snap.counters[1].first, "middle");
    EXPECT_EQ(snap.counters[2].first, "zebra");
}

TEST(ObsLogBridge, WarnAndInformIncrementGlobalCounters)
{
    REQUIRE_METRICS_ON();
    // Touching the global registry installs the log counter hook.
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    obs::Counter warnings = reg.counter("common.log.warnings");
    obs::Counter informs = reg.counter("common.log.informs");

    // Counting happens before level filtering, so a silenced channel
    // still accounts for every emission.
    const LogLevel previous = logLevel();
    setLogLevel(LogLevel::Silent);
    const std::uint64_t warn_before = warnings.value();
    const std::uint64_t inform_before = informs.value();
    warn("counted even when silent");
    warn("twice");
    inform("and informs too");
    setLogLevel(previous);

    EXPECT_EQ(warnings.value(), warn_before + 2);
    EXPECT_EQ(informs.value(), inform_before + 1);
}

TEST(ObsStripes, ThreadStripeIsStableAndBounded)
{
    const std::size_t first = obs::threadStripe();
    EXPECT_LT(first, obs::kStripes);
    EXPECT_EQ(obs::threadStripe(), first);
}

TEST(ObsStripes, ConcurrentCountersLoseNothing)
{
    REQUIRE_METRICS_ON();
    obs::MetricsRegistry reg;
    obs::Counter counter = reg.counter("c");
    obs::Histogram histogram = reg.histogram("h", {100});

    constexpr std::size_t kThreads = 8;
    constexpr std::uint64_t kPerThread = 5'000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                counter.add(1);
                histogram.record(i % 7);
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    EXPECT_EQ(counter.value(), kThreads * kPerThread);
    EXPECT_EQ(histogram.count(), kThreads * kPerThread);
    // sum of i%7 over i in [0,5000): 714 cycles of 21 plus 0+1 = 14995.
    EXPECT_EQ(histogram.sum(), kThreads * 14'995u);
}

} // namespace
} // namespace mcdvfs
