/**
 * @file
 * SnapshotStore tests: bit-identical grid and analysis round trips,
 * fingerprint addressing (including mismatched-key rejection),
 * corrupt/truncated/version-skewed file rejection, atomic-write
 * hygiene, and warm-restart bulk loads.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/logging.hh"
#include "daemon/snapshot_store.hh"
#include "sim/grid_io.hh"
#include "svc/characterization_service.hh"
#include "test_grid.hh"

namespace mcdvfs
{
namespace
{

namespace fs = std::filesystem;
using daemon::SnapshotStore;

/** Fresh store directory under the test's working directory. */
std::string
freshDir(const std::string &name)
{
    const std::string dir = "snapstore_" + name;
    fs::remove_all(dir);
    return dir;
}

svc::GridKey
gridKey(std::uint64_t workload, std::uint64_t space = 11,
        std::uint64_t config = 22)
{
    svc::GridKey key;
    key.workload = workload;
    key.space = space;
    key.config = config;
    return key;
}

svc::AnalysisKey
analysisKey(std::uint64_t grid, double budget = 1.3,
            double threshold = 0.03)
{
    svc::AnalysisKey key;
    key.grid = grid;
    key.budget = budget;
    key.threshold = threshold;
    return key;
}

/** A real analysis result (phasedGrid at the default budget). */
const svc::AnalysisResult &
sampleAnalysis()
{
    static const svc::AnalysisResult result = [] {
        svc::CharacterizationService service(test::fastSystemConfig());
        const svc::TuningResult tuned = service.submit(
            svc::TuningRequest{test::phasedWorkload(),
                               SettingsSpace::coarse(), 1.3, 0.03});
        svc::AnalysisResult analysis;
        analysis.optimal = tuned.optimal;
        analysis.clusters = tuned.clusters;
        analysis.regions = tuned.regions;
        return analysis;
    }();
    return result;
}

std::uint64_t
bitsOf(double value)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

void
expectChoicesBitEqual(const OptimalChoice &a, const OptimalChoice &b)
{
    EXPECT_EQ(a.settingIndex, b.settingIndex);
    EXPECT_EQ(bitsOf(a.setting.cpu), bitsOf(b.setting.cpu));
    EXPECT_EQ(bitsOf(a.setting.mem), bitsOf(b.setting.mem));
    EXPECT_EQ(bitsOf(a.speedup), bitsOf(b.speedup));
    EXPECT_EQ(bitsOf(a.inefficiency), bitsOf(b.inefficiency));
}

void
expectAnalysesBitEqual(const svc::AnalysisResult &a,
                       const svc::AnalysisResult &b)
{
    ASSERT_EQ(a.optimal.size(), b.optimal.size());
    for (std::size_t i = 0; i < a.optimal.size(); ++i)
        expectChoicesBitEqual(a.optimal[i], b.optimal[i]);

    ASSERT_EQ(a.clusters.size(), b.clusters.size());
    for (std::size_t i = 0; i < a.clusters.size(); ++i) {
        expectChoicesBitEqual(a.clusters[i].optimal,
                              b.clusters[i].optimal);
        EXPECT_EQ(a.clusters[i].settings, b.clusters[i].settings);
    }

    ASSERT_EQ(a.regions.size(), b.regions.size());
    for (std::size_t i = 0; i < a.regions.size(); ++i) {
        EXPECT_EQ(a.regions[i].first, b.regions[i].first);
        EXPECT_EQ(a.regions[i].last, b.regions[i].last);
        EXPECT_EQ(a.regions[i].availableSettings,
                  b.regions[i].availableSettings);
        EXPECT_EQ(a.regions[i].chosenSettingIndex,
                  b.regions[i].chosenSettingIndex);
        EXPECT_EQ(bitsOf(a.regions[i].chosenSetting.cpu),
                  bitsOf(b.regions[i].chosenSetting.cpu));
        EXPECT_EQ(bitsOf(a.regions[i].chosenSetting.mem),
                  bitsOf(b.regions[i].chosenSetting.mem));
    }
}

/** The single snapshot file in @c dir (fails the test otherwise). */
std::string
onlySnapshotPath(const std::string &dir)
{
    std::string found;
    for (const fs::directory_entry &entry : fs::directory_iterator(dir)) {
        EXPECT_TRUE(found.empty());
        found = entry.path().string();
    }
    EXPECT_FALSE(found.empty());
    return found;
}

TEST(SnapshotStore, GridRoundTripIsBitIdentical)
{
    const std::string dir = freshDir("grid_roundtrip");
    SnapshotStore store(dir);
    const svc::GridKey key = gridKey(1);

    store.storeGrid(key, test::phasedGrid());
    const auto loaded = store.loadGrid(key);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(saveGridBinaryToString(*loaded),
              saveGridBinaryToString(test::phasedGrid()));

    const SnapshotStore::Stats stats = store.stats();
    EXPECT_EQ(stats.gridStores, 1u);
    EXPECT_EQ(stats.gridLoads, 1u);
    EXPECT_EQ(stats.loadErrors, 0u);
    fs::remove_all(dir);
}

TEST(SnapshotStore, AnalysisRoundTripIsBitIdentical)
{
    const std::string dir = freshDir("analysis_roundtrip");
    SnapshotStore store(dir);
    const svc::AnalysisKey key = analysisKey(7);

    store.storeAnalysis(key, sampleAnalysis());
    const auto loaded = store.loadAnalysis(key);
    ASSERT_NE(loaded, nullptr);
    expectAnalysesBitEqual(*loaded, sampleAnalysis());

    const SnapshotStore::Stats stats = store.stats();
    EXPECT_EQ(stats.analysisStores, 1u);
    EXPECT_EQ(stats.analysisLoads, 1u);
    EXPECT_EQ(stats.loadErrors, 0u);
    fs::remove_all(dir);
}

TEST(SnapshotStore, AbsentSnapshotIsAMissNotAnError)
{
    const std::string dir = freshDir("absent");
    SnapshotStore store(dir);
    EXPECT_EQ(store.loadGrid(gridKey(42)), nullptr);
    EXPECT_EQ(store.loadAnalysis(analysisKey(42)), nullptr);
    EXPECT_EQ(store.stats().loadErrors, 0u);
    fs::remove_all(dir);
}

TEST(SnapshotStore, AddressesSnapshotsByFingerprint)
{
    const std::string dir = freshDir("addressing");
    SnapshotStore store(dir);

    // Distinct grids under distinct keys; each key must resolve to
    // exactly the grid stored under it.
    store.storeGrid(gridKey(1), test::phasedGrid());
    store.storeGrid(gridKey(2), test::steadyGrid());
    const auto first = store.loadGrid(gridKey(1));
    const auto second = store.loadGrid(gridKey(2));
    ASSERT_NE(first, nullptr);
    ASSERT_NE(second, nullptr);
    EXPECT_EQ(first->workload(), "phased");
    EXPECT_EQ(second->workload(), "steady");

    // Any key differing in any fingerprint component misses.
    EXPECT_EQ(store.loadGrid(gridKey(3)), nullptr);
    EXPECT_EQ(store.loadGrid(gridKey(1, 12)), nullptr);
    EXPECT_EQ(store.loadGrid(gridKey(1, 11, 23)), nullptr);

    // Analyses with the same grid digest but different budgets or
    // thresholds are distinct snapshots.
    store.storeAnalysis(analysisKey(9, 1.3, 0.03), sampleAnalysis());
    EXPECT_NE(store.loadAnalysis(analysisKey(9, 1.3, 0.03)), nullptr);
    EXPECT_EQ(store.loadAnalysis(analysisKey(9, 1.5, 0.03)), nullptr);
    EXPECT_EQ(store.loadAnalysis(analysisKey(9, 1.3, 0.01)), nullptr);
    EXPECT_EQ(store.stats().loadErrors, 0u);
    fs::remove_all(dir);
}

TEST(SnapshotStore, RejectsSnapshotWhoseStoredKeyMismatches)
{
    const std::string dir = freshDir("key_mismatch");
    const svc::GridKey stored_key = gridKey(1);
    const svc::GridKey other_key = gridKey(2);
    {
        SnapshotStore store(dir);
        store.storeGrid(stored_key, test::phasedGrid());
    }
    const std::string stored_path = onlySnapshotPath(dir);

    SnapshotStore store(dir);
    store.storeGrid(other_key, test::steadyGrid());
    std::string other_path;
    for (const fs::directory_entry &entry : fs::directory_iterator(dir)) {
        if (entry.path().string() != stored_path)
            other_path = entry.path().string();
    }
    ASSERT_FALSE(other_path.empty());

    // Masquerade stored_key's snapshot as other_key's by copying its
    // bytes over the path other_key addresses.  The container's
    // embedded key must catch the forgery.
    fs::copy_file(stored_path, other_path,
                  fs::copy_options::overwrite_existing);
    SnapshotStore reopened(dir);
    EXPECT_EQ(reopened.loadGrid(other_key), nullptr);
    EXPECT_EQ(reopened.stats().loadErrors, 1u);
    // The honest key still loads.
    EXPECT_NE(reopened.loadGrid(stored_key), nullptr);
    fs::remove_all(dir);
}

TEST(SnapshotStore, RejectsCorruptTruncatedAndSkewedFiles)
{
    const std::string dir = freshDir("corrupt");
    const svc::GridKey key = gridKey(5);

    {
        SnapshotStore store(dir);
        store.storeGrid(key, test::phasedGrid());
    }
    const std::string path = onlySnapshotPath(dir);
    std::ifstream in(path, std::ios::binary);
    std::string pristine((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    in.close();
    ASSERT_GT(pristine.size(), 64u);

    const auto rewrite = [&](const std::string &bytes) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    };

    // Truncated to a partial header.
    rewrite(pristine.substr(0, 10));
    {
        SnapshotStore store(dir);
        EXPECT_EQ(store.loadGrid(key), nullptr);
        EXPECT_EQ(store.stats().loadErrors, 1u);
    }

    // Truncated mid-payload.
    rewrite(pristine.substr(0, pristine.size() - 7));
    {
        SnapshotStore store(dir);
        EXPECT_EQ(store.loadGrid(key), nullptr);
        EXPECT_EQ(store.stats().loadErrors, 1u);
    }

    // Flipped payload bit (checksum mismatch).
    {
        std::string corrupt = pristine;
        corrupt[corrupt.size() / 2] ^= 0x10;
        rewrite(corrupt);
        SnapshotStore store(dir);
        EXPECT_EQ(store.loadGrid(key), nullptr);
        EXPECT_EQ(store.stats().loadErrors, 1u);
        EXPECT_TRUE(store.loadAllGrids().empty());
    }

    // Flipped bit in the embedded-key region (byte 20 lies inside the
    // key bytes, after magic + version + kind + length prefix).  The
    // checksum covers the key, so this must read as corruption — not
    // silently warm-load the grid under a different key.
    {
        std::string corrupt = pristine;
        corrupt[20] ^= 0x04;
        rewrite(corrupt);
        SnapshotStore store(dir);
        EXPECT_TRUE(store.loadAllGrids().empty());
        EXPECT_EQ(store.stats().loadErrors, 1u);
    }

    // Bad magic.
    {
        std::string corrupt = pristine;
        corrupt[0] = 'Z';
        rewrite(corrupt);
        SnapshotStore store(dir);
        EXPECT_EQ(store.loadGrid(key), nullptr);
    }

    // Version from the future.
    {
        std::string corrupt = pristine;
        corrupt[8] = static_cast<char>(0x7F);
        rewrite(corrupt);
        SnapshotStore store(dir);
        EXPECT_EQ(store.loadGrid(key), nullptr);
    }

    // The pristine bytes still load: rejection was about the file, not
    // the reader.
    rewrite(pristine);
    {
        SnapshotStore store(dir);
        EXPECT_NE(store.loadGrid(key), nullptr);
        EXPECT_EQ(store.stats().loadErrors, 0u);
    }
    fs::remove_all(dir);
}

TEST(SnapshotStore, OverwritesInPlaceWithoutTempResidue)
{
    const std::string dir = freshDir("overwrite");
    SnapshotStore store(dir);
    const svc::GridKey key = gridKey(3);
    store.storeGrid(key, test::phasedGrid());
    store.storeGrid(key, test::steadyGrid());

    // One file, no *.tmp* residue, and the latest store wins.
    std::size_t files = 0;
    for (const fs::directory_entry &entry : fs::directory_iterator(dir)) {
        ++files;
        EXPECT_EQ(entry.path().extension(), ".snap");
    }
    EXPECT_EQ(files, 1u);
    const auto loaded = store.loadGrid(key);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->workload(), "steady");
    fs::remove_all(dir);
}

TEST(SnapshotStore, WarmRestartLoadsEverythingVerifiable)
{
    const std::string dir = freshDir("warm");
    const svc::GridKey key_a = gridKey(1);
    const svc::GridKey key_b = gridKey(2);
    const svc::AnalysisKey key_c = analysisKey(1);
    {
        SnapshotStore store(dir);
        store.storeGrid(key_a, test::phasedGrid());
        store.storeGrid(key_b, test::steadyGrid());
        store.storeAnalysis(key_c, sampleAnalysis());
    }
    // Plant junk a warm restart must skip: a foreign file and a
    // garbage .snap of each kind.
    {
        std::ofstream(dir + "/README.txt") << "not a snapshot";
        std::ofstream(dir + "/grid-0000000000000000.snap") << "garbage";
        std::ofstream(dir + "/analysis-0000000000000000.snap") << "junk";
    }

    SnapshotStore reopened(dir);
    std::vector<SnapshotStore::GridEntry> grids =
        reopened.loadAllGrids();
    ASSERT_EQ(grids.size(), 2u);
    for (const SnapshotStore::GridEntry &entry : grids) {
        EXPECT_TRUE(entry.key == key_a || entry.key == key_b);
        ASSERT_NE(entry.grid, nullptr);
    }

    std::vector<SnapshotStore::AnalysisEntry> analyses =
        reopened.loadAllAnalyses();
    ASSERT_EQ(analyses.size(), 1u);
    EXPECT_TRUE(analyses[0].key == key_c);
    expectAnalysesBitEqual(*analyses[0].result, sampleAnalysis());

    EXPECT_EQ(reopened.stats().loadErrors, 2u);
    fs::remove_all(dir);
}

TEST(SnapshotStore, FatalsOnUncreatableDirectory)
{
    const std::string dir = freshDir("not_a_dir");
    std::ofstream(dir) << "file in the way";
    EXPECT_THROW(SnapshotStore store(dir), FatalError);
    fs::remove(dir);
}

} // namespace
} // namespace mcdvfs
