/**
 * @file
 * Shared fixtures for the analysis-layer tests: a small but realistic
 * measured grid (alternating CPU/memory phases) built once per test
 * binary, plus a uniform-phase variant.
 */

#ifndef MCDVFS_TESTS_TEST_GRID_HH
#define MCDVFS_TESTS_TEST_GRID_HH

#include "sim/grid_runner.hh"
#include "trace/workloads.hh"

namespace mcdvfs
{
namespace test
{

/** Alternating cpu/mem phases over 12 samples; fast to characterize. */
inline WorkloadProfile
phasedWorkload()
{
    PhaseSpec cpu;
    cpu.name = "cpu";
    cpu.baseCpi = 0.8;
    cpu.hotFrac = 0.975;
    cpu.warmFrac = 0.02;
    PhaseSpec mem;
    mem.name = "mem";
    mem.baseCpi = 1.1;
    mem.hotFrac = 0.86;
    mem.warmFrac = 0.11;
    mem.coldSeqFrac = 0.3;
    mem.mlp = 1.5;
    return WorkloadProfile(
        "phased", 12,
        [cpu, mem](std::size_t s) { return (s / 3) % 2 ? mem : cpu; },
        17, /*jitter=*/0.01);
}

/** One constant phase over 8 samples. */
inline WorkloadProfile
steadyWorkload()
{
    PhaseSpec spec;
    spec.name = "steady";
    spec.hotFrac = 0.94;
    spec.warmFrac = 0.05;
    return WorkloadProfile(
        "steady", 8, [spec](std::size_t) { return spec; }, 23,
        /*jitter=*/0.01);
}

inline SystemConfig
fastSystemConfig()
{
    SystemConfig config;
    config.sampler.simInstructionsPerSample = 20'000;
    config.sampler.warmupInstructions = 100'000;
    return config;
}

/** Grid of phasedWorkload() over the coarse space, built once. */
inline const MeasuredGrid &
phasedGrid()
{
    static const MeasuredGrid grid = [] {
        GridRunner runner(fastSystemConfig());
        return runner.run(phasedWorkload(), SettingsSpace::coarse());
    }();
    return grid;
}

/** Grid of steadyWorkload() over the coarse space, built once. */
inline const MeasuredGrid &
steadyGrid()
{
    static const MeasuredGrid grid = [] {
        GridRunner runner(fastSystemConfig());
        return runner.run(steadyWorkload(), SettingsSpace::coarse());
    }();
    return grid;
}

} // namespace test
} // namespace mcdvfs

#endif // MCDVFS_TESTS_TEST_GRID_HH
