/**
 * @file
 * Golden tests pinning the metrics JSON snapshot format: schema
 * string, section names, histogram field names and the canonical
 * latency bucket bounds.  External consumers parse this output, so
 * any change here is a deliberate format break — update the schema
 * version string when the shape changes.
 */

#include <gtest/gtest.h>

#include "obs/metrics.hh"

namespace mcdvfs
{
namespace
{

TEST(ObsSnapshotGolden, EmptyRegistry)
{
    const obs::MetricsRegistry reg;
    EXPECT_EQ(obs::toJson(reg.snapshot()),
              "{\n"
              "  \"schema\": \"mcdvfs-metrics-v1\",\n"
              "  \"counters\": {},\n"
              "  \"gauges\": {},\n"
              "  \"histograms\": {}\n"
              "}\n");
}

TEST(ObsSnapshotGolden, PopulatedRegistry)
{
    obs::MetricsRegistry reg;
    obs::Counter counter = reg.counter("demo.count");
    obs::Gauge gauge = reg.gauge("demo.gauge");
    obs::Histogram histogram = reg.histogram(
        "demo.lat_ns", obs::MetricsRegistry::latencyBucketsNs());
    counter.add(3);
    gauge.set(-2);
    histogram.record(500);            // first bucket (<= 1 us)
    histogram.record(5'000);          // <= 10 us
    histogram.record(2'000'000'000);  // overflow (> 1 s)

    const char *const bounds =
        "[1000, 10000, 100000, 1000000, 10000000, 100000000, "
        "1000000000]";
    const std::string expected =
        obs::kMetricsEnabled
            ? std::string("{\n"
                          "  \"schema\": \"mcdvfs-metrics-v1\",\n"
                          "  \"counters\": {\n"
                          "    \"demo.count\": 3\n"
                          "  },\n"
                          "  \"gauges\": {\n"
                          "    \"demo.gauge\": -2\n"
                          "  },\n"
                          "  \"histograms\": {\n"
                          "    \"demo.lat_ns\": {\"bounds\": ") +
                  bounds +
                  ", \"counts\": [1, 1, 0, 0, 0, 0, 0, 1], "
                  "\"count\": 3, \"sum\": 2000005500}\n"
                  "  }\n"
                  "}\n"
            // Disabled builds keep names and bounds but report zeros.
            : std::string("{\n"
                          "  \"schema\": \"mcdvfs-metrics-v1\",\n"
                          "  \"counters\": {\n"
                          "    \"demo.count\": 0\n"
                          "  },\n"
                          "  \"gauges\": {\n"
                          "    \"demo.gauge\": 0\n"
                          "  },\n"
                          "  \"histograms\": {\n"
                          "    \"demo.lat_ns\": {\"bounds\": ") +
                  bounds +
                  ", \"counts\": [0, 0, 0, 0, 0, 0, 0, 0], "
                  "\"count\": 0, \"sum\": 0}\n"
                  "  }\n"
                  "}\n";
    EXPECT_EQ(obs::toJson(reg.snapshot()), expected);
}

TEST(ObsSnapshotGolden, LatencyBucketsAreDecadesFrom1usTo1s)
{
    const std::vector<std::uint64_t> expected{
        1'000,      10'000,      100'000,      1'000'000,
        10'000'000, 100'000'000, 1'000'000'000};
    EXPECT_EQ(obs::MetricsRegistry::latencyBucketsNs(), expected);
}

TEST(ObsSnapshotGolden, KeysAreSortedInOutput)
{
    obs::MetricsRegistry reg;
    reg.counter("b.second");
    reg.counter("a.first");
    const std::string json = obs::toJson(reg.snapshot());
    const std::size_t first = json.find("a.first");
    const std::size_t second = json.find("b.second");
    ASSERT_NE(first, std::string::npos);
    ASSERT_NE(second, std::string::npos);
    EXPECT_LT(first, second);
}

} // namespace
} // namespace mcdvfs
