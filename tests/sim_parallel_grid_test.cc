/**
 * @file
 * Determinism of the parallel grid build: GridRunner with a thread
 * pool must produce cells bit-identical to the serial build — same
 * timing, same energy, same deterministic measurement noise —
 * regardless of worker count or chunk scheduling.
 */

#include <gtest/gtest.h>

#include "exec/thread_pool.hh"
#include "sim/grid_runner.hh"
#include "sim/reference_kernel.hh"

namespace mcdvfs
{
namespace
{

WorkloadProfile
phasedWorkload()
{
    PhaseSpec cpu;
    cpu.name = "cpu";
    cpu.hotFrac = 0.98;
    cpu.warmFrac = 0.015;
    PhaseSpec mem;
    mem.name = "mem";
    mem.hotFrac = 0.80;
    mem.warmFrac = 0.10;
    mem.coldSeqFrac = 0.3;
    return WorkloadProfile(
        "phased", 12,
        [cpu, mem](std::size_t s) { return s % 3 ? mem : cpu; }, 5,
        /*jitter=*/0.01);
}

void
expectBitIdentical(const MeasuredGrid &a, const MeasuredGrid &b)
{
    ASSERT_EQ(a.sampleCount(), b.sampleCount());
    ASSERT_EQ(a.settingCount(), b.settingCount());
    for (std::size_t s = 0; s < a.sampleCount(); ++s) {
        for (std::size_t k = 0; k < a.settingCount(); ++k) {
            const GridCell &ca = a.cell(s, k);
            const GridCell &cb = b.cell(s, k);
            // Exact equality on purpose: the parallel build must be
            // *bit*-identical, not merely close.
            ASSERT_EQ(ca.seconds, cb.seconds) << s << "," << k;
            ASSERT_EQ(ca.cpuEnergy, cb.cpuEnergy) << s << "," << k;
            ASSERT_EQ(ca.memEnergy, cb.memEnergy) << s << "," << k;
            ASSERT_EQ(ca.busyFrac, cb.busyFrac) << s << "," << k;
            ASSERT_EQ(ca.bwUtil, cb.bwUtil) << s << "," << k;
        }
    }
}

TEST(ParallelGrid, PaperDefaultConfigJobs8MatchesSerialBitForBit)
{
    // The acceptance configuration: the paper-default SystemConfig,
    // deterministic measurement noise included.  Characterize once and
    // evaluate the settings grid serially and with 8 workers.
    const SystemConfig config = SystemConfig::paperDefault();
    const WorkloadProfile workload = phasedWorkload();
    const SettingsSpace space = SettingsSpace::coarse();

    SampleSimulator simulator(config.sampler);
    const std::vector<SampleProfile> profiles =
        simulator.characterize(workload);

    GridRunner serial(config);
    const MeasuredGrid serial_grid = serial.runWithProfiles(
        workload.name(), profiles, space,
        workload.modeledInstructionsPerSample());

    exec::ThreadPool pool(8);
    GridRunner parallel(config);
    parallel.setThreadPool(&pool);
    const MeasuredGrid parallel_grid = parallel.runWithProfiles(
        workload.name(), profiles, space,
        workload.modeledInstructionsPerSample());

    expectBitIdentical(serial_grid, parallel_grid);
}

TEST(ParallelGrid, EndToEndRunMatchesAcrossWorkerCounts)
{
    SystemConfig config;
    config.sampler.simInstructionsPerSample = 20'000;
    config.sampler.warmupInstructions = 100'000;
    const WorkloadProfile workload = phasedWorkload();

    GridRunner serial(config);
    const MeasuredGrid reference =
        serial.run(workload, SettingsSpace::coarse());

    for (const std::size_t workers : {1u, 2u, 8u}) {
        exec::ThreadPool pool(workers);
        GridRunner runner(config);
        runner.setThreadPool(&pool);
        const MeasuredGrid grid =
            runner.run(workload, SettingsSpace::coarse());
        expectBitIdentical(reference, grid);
    }
}

TEST(ParallelGrid, FineSpaceMatchesToo)
{
    SystemConfig config;
    config.sampler.simInstructionsPerSample = 20'000;
    config.sampler.warmupInstructions = 100'000;
    const WorkloadProfile workload = phasedWorkload();

    SampleSimulator simulator(config.sampler);
    const auto profiles = simulator.characterize(workload);

    GridRunner serial(config);
    exec::ThreadPool pool(4);
    GridRunner parallel(config);
    parallel.setThreadPool(&pool);

    const SettingsSpace fine = SettingsSpace::fine();
    expectBitIdentical(
        serial.runWithProfiles(workload.name(), profiles, fine,
                               workload.modeledInstructionsPerSample()),
        parallel.runWithProfiles(
            workload.name(), profiles, fine,
            workload.modeledInstructionsPerSample()));
}

TEST(ParallelGrid, KernelMatchesReferenceAcrossWorkerCounts)
{
    // The table-driven kernel must reproduce the cell-at-a-time
    // reference bit for bit at every worker count, in both directions
    // (serial kernel vs parallel reference and vice versa).
    const SystemConfig config = SystemConfig::paperDefault();
    const WorkloadProfile workload = phasedWorkload();
    const SettingsSpace space = SettingsSpace::coarse();

    SampleSimulator simulator(config.sampler);
    const std::vector<SampleProfile> profiles =
        simulator.characterize(workload);
    const Count ips = workload.modeledInstructionsPerSample();

    const MeasuredGrid serial_reference = referenceGridWithProfiles(
        config, workload.name(), profiles, space, ips);

    GridRunner serial_kernel(config);
    expectBitIdentical(serial_kernel.runWithProfiles(workload.name(),
                                                     profiles, space, ips),
                       serial_reference);

    for (const std::size_t workers : {2u, 8u}) {
        exec::ThreadPool pool(workers);
        GridRunner kernel(config);
        kernel.setThreadPool(&pool);
        expectBitIdentical(
            kernel.runWithProfiles(workload.name(), profiles, space, ips),
            serial_reference);
        expectBitIdentical(referenceGridWithProfiles(config,
                                                     workload.name(),
                                                     profiles, space, ips,
                                                     &pool),
                           serial_reference);
    }
}

} // namespace
} // namespace mcdvfs
