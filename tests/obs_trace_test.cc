/**
 * @file
 * Unit tests for the execution-trace collector: ring wrap/drop
 * accounting, runtime enable gating, reset semantics, and the
 * TraceSpan / traceInstant instrumentation helpers.
 */

#include <gtest/gtest.h>

#include "obs/trace.hh"

namespace mcdvfs
{
namespace obs
{
namespace
{

TEST(TraceRing, KeepsEverythingBelowCapacity)
{
    detail::TraceRing ring(8, 0);
    for (std::uint64_t i = 0; i < 5; ++i)
        ring.push('i', "event", /*ts_ns=*/i, /*dur_ns=*/0, /*arg=*/i);

    EXPECT_EQ(ring.written(), 5u);
    EXPECT_EQ(ring.dropped(), 0u);

    std::vector<TraceEventView> events;
    EXPECT_EQ(ring.readInto(events), 0u);
    ASSERT_EQ(events.size(), 5u);
    for (std::uint64_t i = 0; i < 5; ++i) {
        EXPECT_EQ(events[i].tsNs, i);
        EXPECT_EQ(events[i].arg, i);
    }
}

TEST(TraceRing, DropsOldestOnWrap)
{
    detail::TraceRing ring(8, 3);
    for (std::uint64_t i = 0; i < 20; ++i)
        ring.push('X', "span", /*ts_ns=*/i, /*dur_ns=*/2 * i, i);

    EXPECT_EQ(ring.written(), 20u);
    EXPECT_EQ(ring.dropped(), 12u);

    std::vector<TraceEventView> events;
    EXPECT_EQ(ring.readInto(events), 0u);
    ASSERT_EQ(events.size(), 8u);
    // The retained window is the *newest* 8 events, in record order.
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_EQ(events[i].tsNs, 12 + i);
        EXPECT_EQ(events[i].durNs, 2 * (12 + i));
        EXPECT_EQ(events[i].phase, 'X');
        EXPECT_EQ(events[i].tid, 3u);
    }
}

TEST(TraceRing, ClampsCapacityToOne)
{
    detail::TraceRing ring(0, 0);
    EXPECT_EQ(ring.capacity(), 1u);
    ring.push('i', "a", 1, 0, 0);
    ring.push('i', "b", 2, 0, 0);
    EXPECT_EQ(ring.dropped(), 1u);

    std::vector<TraceEventView> events;
    ring.readInto(events);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_STREQ(events[0].name, "b");
}

TEST(TraceCollector, DisabledByDefault)
{
    TraceCollector collector;
    EXPECT_FALSE(collector.enabled());
    collector.record('i', "ignored", 1, 0, 0);
    const TraceSnapshot snap = collector.snapshot();
    EXPECT_TRUE(snap.events.empty());
    EXPECT_EQ(snap.droppedEvents, 0u);
}

TEST(TraceCollector, RecordsWhenEnabledAndStopsWhenDisabled)
{
    TraceCollector collector;
    collector.enable(16);
    EXPECT_TRUE(collector.enabled());
    collector.record('X', "build", 100, 50, 7);
    collector.record('i', "hit", 200, 0, 1);
    collector.disable();
    collector.record('i', "ignored", 300, 0, 0);

    const TraceSnapshot snap = collector.snapshot();
    ASSERT_EQ(snap.events.size(), 2u);
    EXPECT_STREQ(snap.events[0].name, "build");
    EXPECT_EQ(snap.events[0].phase, 'X');
    EXPECT_EQ(snap.events[0].tsNs, 100u);
    EXPECT_EQ(snap.events[0].durNs, 50u);
    EXPECT_EQ(snap.events[0].arg, 7u);
    EXPECT_STREQ(snap.events[1].name, "hit");
    EXPECT_EQ(snap.events[1].phase, 'i');
    EXPECT_EQ(snap.tornReads, 0u);
}

TEST(TraceCollector, CountsDropsAcrossTheSnapshot)
{
    TraceCollector collector;
    collector.enable(4);
    for (std::uint64_t i = 0; i < 10; ++i)
        collector.record('i', "e", i, 0, i);

    const TraceSnapshot snap = collector.snapshot();
    EXPECT_EQ(snap.events.size(), 4u);
    EXPECT_EQ(snap.droppedEvents, 6u);
}

TEST(TraceCollector, ResetDropsEventsAndAcceptsNewOnes)
{
    TraceCollector collector;
    collector.enable(16);
    collector.record('i', "before", 1, 0, 0);
    collector.reset();
    EXPECT_TRUE(collector.snapshot().events.empty());

    // The thread re-registers a fresh ring after the epoch bump.
    collector.record('i', "after", 2, 0, 0);
    const TraceSnapshot snap = collector.snapshot();
    ASSERT_EQ(snap.events.size(), 1u);
    EXPECT_STREQ(snap.events[0].name, "after");
}

TEST(TraceHelpers, SpanAndInstantRecordIntoTheGlobalCollector)
{
    if (!kTracingEnabled)
        GTEST_SKIP() << "tracing compiled out";

    TraceCollector &collector = TraceCollector::global();
    collector.reset();
    collector.enable(64);

    {
        TraceSpan span("test.span", 7);
    }
    traceInstant("test.instant", 3);

    const TraceSnapshot snap = collector.snapshot();
    collector.disable();
    collector.reset();

    ASSERT_EQ(snap.events.size(), 2u);
    EXPECT_STREQ(snap.events[0].name, "test.span");
    EXPECT_EQ(snap.events[0].phase, 'X');
    EXPECT_EQ(snap.events[0].arg, 7u);
    EXPECT_STREQ(snap.events[1].name, "test.instant");
    EXPECT_EQ(snap.events[1].phase, 'i');
    EXPECT_EQ(snap.events[1].arg, 3u);
}

TEST(TraceHelpers, SpanEndRecordsOnceAndDisarmsTheDestructor)
{
    if (!kTracingEnabled)
        GTEST_SKIP() << "tracing compiled out";

    TraceCollector &collector = TraceCollector::global();
    collector.reset();
    collector.enable(64);

    {
        TraceSpan span("test.early_end", 1);
        span.end();
        span.end();  // idempotent
    }

    const TraceSnapshot snap = collector.snapshot();
    collector.disable();
    collector.reset();

    ASSERT_EQ(snap.events.size(), 1u);
    EXPECT_STREQ(snap.events[0].name, "test.early_end");
}

TEST(TraceHelpers, NothingRecordsWhileTheCollectorIsDisabled)
{
    TraceCollector &collector = TraceCollector::global();
    collector.reset();
    EXPECT_FALSE(tracingActive());

    {
        TraceSpan span("test.disabled", 1);
    }
    traceInstant("test.disabled", 2);

    const TraceSnapshot snap = collector.snapshot();
    collector.reset();
    EXPECT_TRUE(snap.events.empty());
}

} // namespace
} // namespace obs
} // namespace mcdvfs
