/**
 * @file
 * Unit tests for the learning-based Emin predictor (§II-B).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "runtime/emin_predictor.hh"
#include "test_grid.hh"

namespace mcdvfs
{
namespace
{

TEST(EminPredictor, Validation)
{
    EXPECT_THROW(EminPredictor{0.0}, FatalError);
    EXPECT_THROW(EminPredictor{1.5}, FatalError);
    EXPECT_NO_THROW(EminPredictor{1.0});
}

TEST(EminPredictor, UntrainedReportsSo)
{
    EminPredictor predictor;
    EXPECT_FALSE(predictor.trained());
    EXPECT_EQ(predictor.observations(), 0u);
    SampleProfile profile;
    EXPECT_EQ(predictor.predict(profile), 0.0);
}

TEST(EminPredictor, LearnsLinearTarget)
{
    // Emin constructed as an exact linear function of the features
    // must be recovered almost perfectly.
    EminPredictor predictor(1.0);
    auto truth = [](const SampleProfile &p) {
        return 1e-3 * (2.0 + 0.5 * p.baseCpi + 0.1 * p.l2Mpki);
    };
    for (int i = 0; i < 200; ++i) {
        SampleProfile p;
        p.baseCpi = 0.8 + 0.01 * (i % 40);
        p.l1Mpki = 5.0 + (i % 17);
        p.l2Mpki = 0.5 + 0.3 * (i % 23);
        p.dramReadsPerInstr = p.l2Mpki / 1000.0;
        p.rowHitFrac = 0.1 + 0.04 * (i % 13);
        predictor.observe(p, truth(p));
    }
    EXPECT_TRUE(predictor.trained());

    SampleProfile probe;
    probe.baseCpi = 1.05;
    probe.l1Mpki = 12.0;
    probe.l2Mpki = 4.2;
    probe.dramReadsPerInstr = probe.l2Mpki / 1000.0;
    probe.rowHitFrac = 0.3;
    const double predicted = predictor.predict(probe);
    EXPECT_NEAR(predicted, truth(probe), truth(probe) * 0.02);
}

TEST(EminPredictor, TracksRealGridWithinTolerance)
{
    // Train on the first half of the fixture's samples with
    // brute-force Emin, predict the second half.
    const MeasuredGrid &grid = test::phasedGrid();
    EminPredictor predictor;
    const std::size_t half = grid.sampleCount() / 2;
    for (std::size_t s = 0; s < half; ++s)
        predictor.observe(grid.profile(s), grid.sampleEmin(s));
    ASSERT_TRUE(predictor.trained());

    for (std::size_t s = half; s < grid.sampleCount(); ++s) {
        const double predicted = predictor.predict(grid.profile(s));
        const double truth = grid.sampleEmin(s);
        EXPECT_NEAR(predicted, truth, truth * 0.25)
            << "sample " << s;
    }
}

TEST(EminPredictor, PredictInefficiencyConsistent)
{
    const MeasuredGrid &grid = test::phasedGrid();
    EminPredictor predictor;
    for (std::size_t s = 0; s < grid.sampleCount(); ++s)
        predictor.observe(grid.profile(s), grid.sampleEmin(s));
    const SampleProfile &p = grid.profile(0);
    const Joules emin = predictor.predict(p);
    EXPECT_NEAR(predictor.predictInefficiency(p, 2.0 * emin), 2.0,
                1e-9);
}

TEST(EminPredictor, PredictionsArePositive)
{
    const MeasuredGrid &grid = test::phasedGrid();
    EminPredictor predictor;
    for (std::size_t s = 0; s < grid.sampleCount(); ++s)
        predictor.observe(grid.profile(s), grid.sampleEmin(s));
    // Even for an absurd feature vector the prediction stays > 0.
    SampleProfile weird;
    weird.baseCpi = 0.01;
    weird.l1Mpki = 0.0;
    weird.l2Mpki = 0.0;
    EXPECT_GT(predictor.predict(weird), 0.0);
}

TEST(EminPredictorDeathTest, NonPositiveEminPanics)
{
    EminPredictor predictor;
    SampleProfile profile;
    EXPECT_DEATH(predictor.observe(profile, 0.0), "Emin");
}

} // namespace
} // namespace mcdvfs
