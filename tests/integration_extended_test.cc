/**
 * @file
 * Integration coverage for the six extended SPEC-like workloads: the
 * paper's core invariants must hold for every profile in the library,
 * not just the six it plots.
 */

#include <gtest/gtest.h>

#include "repro/analyses.hh"
#include "sim/grid_runner.hh"
#include "trace/workloads.hh"

namespace mcdvfs
{
namespace
{

class ExtendedWorkload : public ::testing::TestWithParam<const char *>
{
  protected:
    static MeasuredGrid
    buildGrid(const std::string &name)
    {
        SystemConfig config;
        config.sampler.simInstructionsPerSample = 15'000;
        config.sampler.warmupInstructions = 1'000'000;
        GridRunner runner(config);
        return runner.run(workloadByName(name),
                          SettingsSpace::coarse());
    }
};

TEST_P(ExtendedWorkload, CoreInvariantsHold)
{
    const MeasuredGrid grid = buildGrid(GetParam());
    GridAnalyses a(grid);

    // Slowest is never most efficient; Imax in a sane band.
    const auto &space = grid.space();
    EXPECT_GT(a.analysis.runInefficiency(
                  space.indexOf(space.minSetting())),
              1.02)
        << GetParam();
    EXPECT_GT(a.analysis.maxRunInefficiency(), 1.3) << GetParam();
    EXPECT_LT(a.analysis.maxRunInefficiency(), 2.8) << GetParam();

    // Budget conformance and monotone time across budgets.
    double prev = 1e18;
    for (const double budget : {1.0, 1.15, 1.3, 1.6}) {
        const PolicyOutcome outcome =
            a.tradeoff.optimalTracking(budget);
        EXPECT_LE(outcome.achievedInefficiency, budget + 1e-9)
            << GetParam() << " @" << budget;
        EXPECT_LE(outcome.time, prev + 1e-12)
            << GetParam() << " @" << budget;
        prev = outcome.time;
    }

    // Cluster policy never degrades past its threshold.
    const TradeoffRow row = a.tradeoff.compare(1.3, 0.05);
    EXPECT_GE(row.perfPct, -5.0 - 1e-6) << GetParam();
    EXPECT_LE(row.energyPct, 1e-6) << GetParam();
}

TEST_P(ExtendedWorkload, CharacterDistinguishesProfiles)
{
    const MeasuredGrid grid = buildGrid(GetParam());
    // Every profile produces live, positive characterization data.
    double total_mpki = 0.0;
    for (std::size_t s = 0; s < grid.sampleCount(); ++s)
        total_mpki += grid.profile(s).l1Mpki;
    EXPECT_GT(total_mpki, 0.0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Profiles, ExtendedWorkload,
                         ::testing::Values("mcf", "hmmer", "sjeng",
                                           "omnetpp", "namd",
                                           "soplex"));

TEST(ExtendedWorkloadCharacters, McfMemoryBoundHmmerCpuBound)
{
    SystemConfig config;
    config.sampler.simInstructionsPerSample = 15'000;
    GridRunner runner(config);
    const MeasuredGrid mcf =
        runner.run(workloadByName("mcf"), SettingsSpace::coarse());
    const MeasuredGrid hmmer =
        runner.run(workloadByName("hmmer"), SettingsSpace::coarse());

    // hmmer speeds up ~10x over the CPU ladder; mcf much less (memory
    // bound); and mcf is far more sensitive to memory frequency.
    InefficiencyAnalysis am(mcf);
    InefficiencyAnalysis ah(hmmer);
    const auto &space = mcf.space();
    const std::size_t max_idx = space.indexOf(space.maxSetting());
    EXPECT_GT(ah.runSpeedup(max_idx), am.runSpeedup(max_idx));

    const Seconds mcf_slow = mcf.totalTime(space.indexOf(
        FrequencySetting{megaHertz(1000), megaHertz(200)}));
    const Seconds mcf_fast = mcf.totalTime(max_idx);
    const Seconds hmmer_slow = hmmer.totalTime(space.indexOf(
        FrequencySetting{megaHertz(1000), megaHertz(200)}));
    const Seconds hmmer_fast = hmmer.totalTime(max_idx);
    EXPECT_GT((mcf_slow - mcf_fast) / mcf_fast, 0.10);
    EXPECT_LT((hmmer_slow - hmmer_fast) / hmmer_fast, 0.05);
    EXPECT_GT((mcf_slow - mcf_fast) / mcf_fast,
              2.0 * (hmmer_slow - hmmer_fast) / hmmer_fast);
}

} // namespace
} // namespace mcdvfs
