/**
 * @file
 * Unit tests for the budgeted multi-application scheduler.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "repro/analyses.hh"
#include "sched/scheduler.hh"
#include "test_grid.hh"

namespace mcdvfs
{
namespace
{

std::vector<AppTask>
twoApps()
{
    // Two distinct apps with different budgets sharing the device.
    AppTask a;
    a.name = "phased";
    a.grid = &test::phasedGrid();
    a.budget = 1.3;
    a.threshold = 0.03;
    AppTask b;
    b.name = "steady";
    b.grid = &test::steadyGrid();
    b.budget = 1.1;
    b.threshold = 0.05;
    return {a, b};
}

TEST(Scheduler, Validation)
{
    BudgetScheduler scheduler;
    AppTask bad;
    bad.name = "no-grid";
    EXPECT_THROW(scheduler.run({bad}, SchedPolicy::RoundRobin),
                 FatalError);
    bad.grid = &test::phasedGrid();
    bad.budget = 0.5;
    EXPECT_THROW(scheduler.run({bad}, SchedPolicy::RoundRobin),
                 FatalError);
}

TEST(Scheduler, AllSamplesRunUnderBothPolicies)
{
    BudgetScheduler scheduler;
    for (const SchedPolicy policy :
         {SchedPolicy::RoundRobin, SchedPolicy::RunToCompletion}) {
        const ScheduleResult result = scheduler.run(twoApps(), policy);
        ASSERT_EQ(result.apps.size(), 2u);
        EXPECT_EQ(result.apps[0].samples,
                  test::phasedGrid().sampleCount());
        EXPECT_EQ(result.apps[1].samples,
                  test::steadyGrid().sampleCount());
        EXPECT_GT(result.makespan, 0.0);
        EXPECT_GT(result.totalEnergy, 0.0);
    }
}

TEST(Scheduler, EveryAppStaysWithinItsBudget)
{
    BudgetScheduler scheduler;
    const auto apps = twoApps();
    const ScheduleResult result =
        scheduler.run(apps, SchedPolicy::RoundRobin);
    for (std::size_t i = 0; i < apps.size(); ++i) {
        EXPECT_LE(result.apps[i].achievedInefficiency,
                  apps[i].budget + 1e-9)
            << apps[i].name;
    }
}

TEST(Scheduler, RoundRobinSwitchesContextEverySampleWhileBothLive)
{
    BudgetScheduler scheduler;
    const ScheduleResult rr =
        scheduler.run(twoApps(), SchedPolicy::RoundRobin);
    const ScheduleResult rtc =
        scheduler.run(twoApps(), SchedPolicy::RunToCompletion);
    EXPECT_GT(rr.contextSwitches, rtc.contextSwitches);
    EXPECT_EQ(rtc.contextSwitches, 1u);
}

TEST(Scheduler, BatchingReducesFrequencyTransitions)
{
    // The system-level consequence of per-app budget-optimal
    // settings: interleaving apps with different settings multiplies
    // transitions.
    BudgetScheduler scheduler;
    const ScheduleResult rr =
        scheduler.run(twoApps(), SchedPolicy::RoundRobin);
    const ScheduleResult rtc =
        scheduler.run(twoApps(), SchedPolicy::RunToCompletion);
    EXPECT_GE(rr.frequencyTransitions, rtc.frequencyTransitions);
    EXPECT_GE(rr.makespan, rtc.makespan - 1e-12);
}

TEST(Scheduler, PerAppEnergyIndependentOfPolicy)
{
    // Interleaving changes transition overhead, not what each app's
    // samples consume.
    BudgetScheduler scheduler;
    const ScheduleResult rr =
        scheduler.run(twoApps(), SchedPolicy::RoundRobin);
    const ScheduleResult rtc =
        scheduler.run(twoApps(), SchedPolicy::RunToCompletion);
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_NEAR(rr.apps[i].energy, rtc.apps[i].energy,
                    rtc.apps[i].energy * 1e-12);
        EXPECT_NEAR(rr.apps[i].busyTime, rtc.apps[i].busyTime,
                    rtc.apps[i].busyTime * 1e-12);
    }
}

TEST(Scheduler, MakespanAccountsTransitions)
{
    BudgetScheduler scheduler;
    const ScheduleResult result =
        scheduler.run(twoApps(), SchedPolicy::RoundRobin);
    Seconds busy = 0.0;
    for (const AppOutcome &app : result.apps)
        busy += app.busyTime;
    EXPECT_NEAR(result.makespan, busy + result.transitionLatency,
                1e-12);
}

TEST(Scheduler, SingleAppMatchesClusterPolicy)
{
    // With one app the scheduler reduces to the cluster policy plus
    // hardware transition latency.
    AppTask only;
    only.name = "phased";
    only.grid = &test::phasedGrid();
    only.budget = 1.3;
    only.threshold = 0.03;

    BudgetScheduler scheduler;
    const ScheduleResult result =
        scheduler.run({only}, SchedPolicy::RunToCompletion);

    GridAnalyses a(test::phasedGrid());
    const PolicyOutcome expected = a.tradeoff.clusterPolicy(1.3, 0.03);
    EXPECT_NEAR(result.apps[0].busyTime, expected.time,
                expected.time * 1e-12);
    EXPECT_NEAR(result.apps[0].energy, expected.energy,
                expected.energy * 1e-12);
    EXPECT_EQ(result.frequencyTransitions, expected.transitions);
}

} // namespace
} // namespace mcdvfs
