/**
 * @file
 * Unit tests for the error-reporting primitives and the advisory
 * logging channel (sink registration, level filtering).
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace mcdvfs
{
namespace
{

/** Captured (level, message) pairs; LogSink is a plain fn pointer. */
std::vector<std::pair<LogLevel, std::string>> &
capturedLogs()
{
    static std::vector<std::pair<LogLevel, std::string>> logs;
    return logs;
}

void
captureSink(LogLevel level, const std::string &msg)
{
    capturedLogs().emplace_back(level, msg);
}

/** Installs the capture sink for one test and restores state after. */
class SinkCapture
{
  public:
    SinkCapture() : previousSink_(setLogSink(&captureSink)),
                    previousLevel_(logLevel())
    {
        capturedLogs().clear();
    }

    ~SinkCapture()
    {
        setLogSink(previousSink_);
        setLogLevel(previousLevel_);
        capturedLogs().clear();
    }

  private:
    LogSink previousSink_;
    LogLevel previousLevel_;
};

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("boom"), FatalError);
}

TEST(Logging, FatalConcatenatesArguments)
{
    try {
        fatal("value is ", 42, ", expected ", 7.5);
        FAIL() << "fatal must throw";
    } catch (const FatalError &err) {
        EXPECT_STREQ(err.what(), "value is 42, expected 7.5");
    }
}

TEST(Logging, FatalErrorIsARuntimeError)
{
    // Callers that only know std::exception still catch it.
    EXPECT_THROW(fatal("x"), std::runtime_error);
}

TEST(Logging, WarnAndInformDoNotThrow)
{
    EXPECT_NO_THROW(warn("just a warning ", 1));
    EXPECT_NO_THROW(inform("status ", 2));
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(MCDVFS_PANIC("bug ", 13), "panic: bug 13");
}

TEST(LoggingDeathTest, AssertAbortsOnFalse)
{
    EXPECT_DEATH(MCDVFS_ASSERT(1 == 2, "math broke"),
                 "assertion failed");
}

TEST(Logging, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(MCDVFS_ASSERT(1 + 1 == 2, "fine"));
}

TEST(Logging, SinkReceivesWarnAndInform)
{
    SinkCapture capture;
    setLogLevel(LogLevel::Debug);
    warn("disk ", 7, " full");
    inform("resuming");

    ASSERT_EQ(capturedLogs().size(), 2u);
    EXPECT_EQ(capturedLogs()[0].first, LogLevel::Warn);
    EXPECT_EQ(capturedLogs()[0].second, "disk 7 full");
    EXPECT_EQ(capturedLogs()[1].first, LogLevel::Info);
    EXPECT_EQ(capturedLogs()[1].second, "resuming");
}

TEST(Logging, SetLogSinkReturnsThePreviousSink)
{
    const LogSink original = setLogSink(&captureSink);
    EXPECT_EQ(setLogSink(original), &captureSink);
}

TEST(Logging, LevelFiltersMessagesBelowTheThreshold)
{
    SinkCapture capture;

    setLogLevel(LogLevel::Warn);
    inform("hidden");
    warn("visible");
    ASSERT_EQ(capturedLogs().size(), 1u);
    EXPECT_EQ(capturedLogs()[0].second, "visible");

    capturedLogs().clear();
    setLogLevel(LogLevel::Silent);
    warn("also hidden");
    inform("also hidden");
    EXPECT_TRUE(capturedLogs().empty());
}

TEST(Logging, LogLevelRoundTrip)
{
    SinkCapture capture;
    setLogLevel(LogLevel::Error);
    EXPECT_EQ(logLevel(), LogLevel::Error);
}

TEST(Logging, LogLevelFromStringParsesEveryName)
{
    EXPECT_EQ(logLevelFromString("debug"), LogLevel::Debug);
    EXPECT_EQ(logLevelFromString("info"), LogLevel::Info);
    EXPECT_EQ(logLevelFromString("warn"), LogLevel::Warn);
    EXPECT_EQ(logLevelFromString("error"), LogLevel::Error);
    EXPECT_EQ(logLevelFromString("silent"), LogLevel::Silent);
    EXPECT_THROW(logLevelFromString("verbose"), FatalError);
    EXPECT_THROW(logLevelFromString(""), FatalError);
}

} // namespace
} // namespace mcdvfs
