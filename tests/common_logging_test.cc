/**
 * @file
 * Unit tests for the error-reporting primitives.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace mcdvfs
{
namespace
{

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("boom"), FatalError);
}

TEST(Logging, FatalConcatenatesArguments)
{
    try {
        fatal("value is ", 42, ", expected ", 7.5);
        FAIL() << "fatal must throw";
    } catch (const FatalError &err) {
        EXPECT_STREQ(err.what(), "value is 42, expected 7.5");
    }
}

TEST(Logging, FatalErrorIsARuntimeError)
{
    // Callers that only know std::exception still catch it.
    EXPECT_THROW(fatal("x"), std::runtime_error);
}

TEST(Logging, WarnAndInformDoNotThrow)
{
    EXPECT_NO_THROW(warn("just a warning ", 1));
    EXPECT_NO_THROW(inform("status ", 2));
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(MCDVFS_PANIC("bug ", 13), "panic: bug 13");
}

TEST(LoggingDeathTest, AssertAbortsOnFalse)
{
    EXPECT_DEATH(MCDVFS_ASSERT(1 == 2, "math broke"),
                 "assertion failed");
}

TEST(Logging, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(MCDVFS_ASSERT(1 + 1 == 2, "fine"));
}

} // namespace
} // namespace mcdvfs
