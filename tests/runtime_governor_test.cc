/**
 * @file
 * Unit tests for the inefficiency-budget governor.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

#include "runtime/inefficiency_governor.hh"
#include "test_grid.hh"

namespace mcdvfs
{
namespace
{

struct Chain
{
    InefficiencyAnalysis analysis;
    OptimalSettingsFinder finder;
    ClusterFinder clusters;

    explicit Chain(const MeasuredGrid &grid)
        : analysis(grid), finder(analysis), clusters(finder)
    {
    }
};

TEST(InefficiencyGovernor, Validation)
{
    Chain chain(test::phasedGrid());
    EXPECT_THROW(InefficiencyGovernor(chain.clusters, 0.5, 0.03),
                 FatalError);
    EXPECT_THROW(InefficiencyGovernor(chain.clusters, 1.3, -0.01),
                 FatalError);
}

TEST(InefficiencyGovernor, StartsAtMaxSetting)
{
    const MeasuredGrid &grid = test::phasedGrid();
    Chain chain(grid);
    InefficiencyGovernor governor(chain.clusters, 1.3, 0.03);
    EXPECT_TRUE(governor.decide(nullptr) == grid.space().maxSetting());
}

TEST(InefficiencyGovernor, FollowsClusters)
{
    const MeasuredGrid &grid = test::phasedGrid();
    Chain chain(grid);
    InefficiencyGovernor governor(chain.clusters, 1.2, 0.03);
    governor.decide(nullptr);
    SampleObservation last;
    last.sampleIndex = 0;
    const FrequencySetting chosen = governor.decide(&last);
    // The decision must lie in sample 0's cluster (last-value
    // prediction).
    const PerformanceCluster cluster =
        chain.clusters.clusterForSample(0, 1.2, 0.03);
    EXPECT_TRUE(cluster.contains(grid.space().indexOf(chosen)));
}

TEST(InefficiencyGovernor, KeepsSettingWhenStillInCluster)
{
    const MeasuredGrid &grid = test::phasedGrid();
    Chain chain(grid);
    InefficiencyGovernor governor(chain.clusters, 1.3, 0.05);
    governor.decide(nullptr);

    // Feed a run of identical-phase samples: after the first re-tune
    // the governor should keep its setting (fixture samples 0-2 share
    // the cpu phase).
    SampleObservation obs0;
    obs0.sampleIndex = 0;
    const FrequencySetting first = governor.decide(&obs0);
    SampleObservation obs1;
    obs1.sampleIndex = 1;
    const FrequencySetting second = governor.decide(&obs1);
    EXPECT_TRUE(first == second);
    EXPECT_GE(governor.keptSetting(), 1u);
}

TEST(InefficiencyGovernor, CountsRetunes)
{
    const MeasuredGrid &grid = test::phasedGrid();
    Chain chain(grid);
    InefficiencyGovernor governor(chain.clusters, 1.0, 0.01);
    governor.decide(nullptr);
    for (std::size_t s = 0; s + 1 < grid.sampleCount(); ++s) {
        SampleObservation obs;
        obs.sampleIndex = s;
        governor.decide(&obs);
    }
    EXPECT_EQ(governor.keptSetting() + governor.retuned(),
              grid.sampleCount() - 1);
    EXPECT_GE(governor.retuned(), 1u);
}

TEST(InefficiencyGovernor, NameForReports)
{
    Chain chain(test::phasedGrid());
    InefficiencyGovernor governor(chain.clusters, 1.3, 0.03);
    EXPECT_EQ(governor.name(), "inefficiency");
}

} // namespace
} // namespace mcdvfs
