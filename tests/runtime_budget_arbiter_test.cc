/**
 * @file
 * BudgetArbiter tests: cap-table validation (including priority
 * inversions), floor-wise row matching, and two randomized invariants
 * — every decision respects the active caps, and with an
 * unconstrained budget the arbiter's decision stream is bit-identical
 * to the plain InefficiencyGovernor's.
 */

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "runtime/budget_arbiter.hh"
#include "runtime/inefficiency_governor.hh"
#include "test_grid.hh"

namespace mcdvfs
{
namespace
{

using runtime::BudgetArbiter;
using runtime::CapRow;
using runtime::DomainCaps;
using runtime::Priority;

struct Chain
{
    InefficiencyAnalysis analysis;
    OptimalSettingsFinder finder;
    ClusterFinder clusters;

    explicit Chain(const MeasuredGrid &grid)
        : analysis(grid), finder(analysis), clusters(finder)
    {
    }
};

/** phasedWorkload over the 560-setting CPU x mem x GPU space. */
const MeasuredGrid &
gpuGrid()
{
    static const MeasuredGrid grid = [] {
        GridRunner runner(test::fastSystemConfig());
        return runner.run(test::phasedWorkload(),
                          SettingsSpace::coarse3());
    }();
    return grid;
}

std::uint64_t
bitsOf(double value)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

void
expectSettingsBitEqual(const FrequencySetting &a,
                       const FrequencySetting &b)
{
    EXPECT_EQ(bitsOf(a.cpu), bitsOf(b.cpu));
    EXPECT_EQ(bitsOf(a.mem), bitsOf(b.mem));
    EXPECT_EQ(bitsOf(a.gpu), bitsOf(b.gpu));
}

bool
admits(const DomainCaps &caps, const FrequencySetting &setting,
       bool has_gpu)
{
    return setting.cpu <= caps.cpu && setting.mem <= caps.mem &&
           (!has_gpu || setting.gpu <= caps.gpu);
}

/** A simple legal two-row table over the coarse3 ladders. */
std::vector<CapRow>
twoRowTable()
{
    // Row 0 (tight): cpu-priority keeps the CPU at 600 MHz and caps
    // the GPU at 300; gpu-priority the reverse shape.
    CapRow tight;
    tight.budget = 2.0;
    tight.cpuPriority = {megaHertz(600), megaHertz(500), megaHertz(300)};
    tight.gpuPriority = {megaHertz(300), megaHertz(500), megaHertz(600)};
    // Row 1 (roomy): everything admitted.
    CapRow roomy;
    roomy.budget = 6.0;
    roomy.cpuPriority = {megaHertz(1000), megaHertz(800), megaHertz(900)};
    roomy.gpuPriority = {megaHertz(1000), megaHertz(800), megaHertz(900)};
    return {tight, roomy};
}

/**
 * Random cap table satisfying every constructor invariant: ascending
 * budgets, caps drawn from the ladders (so the minimum setting is
 * always admitted), monotone across rows, and no priority inversion.
 */
std::vector<CapRow>
randomTable(Rng &rng, const SettingsSpace &space, std::size_t rows)
{
    const auto ladder_caps = [&](const FrequencyLadder &ladder) {
        // Non-decreasing random ladder indices, one per row.
        std::vector<std::size_t> idx(rows);
        for (std::size_t r = 0; r < rows; ++r)
            idx[r] = rng.uniformInt(ladder.size());
        std::sort(idx.begin(), idx.end());
        std::vector<Hertz> caps(rows);
        for (std::size_t r = 0; r < rows; ++r)
            caps[r] = ladder.at(idx[r]);
        return caps;
    };

    const std::vector<Hertz> cpu_a = ladder_caps(space.cpuLadder());
    const std::vector<Hertz> cpu_b = ladder_caps(space.cpuLadder());
    const std::vector<Hertz> mem_a = ladder_caps(space.memLadder());
    const std::vector<Hertz> mem_b = ladder_caps(space.memLadder());
    const std::vector<Hertz> gpu_a = ladder_caps(space.gpuLadder());
    const std::vector<Hertz> gpu_b = ladder_caps(space.gpuLadder());

    std::vector<CapRow> table(rows);
    double budget = 0.5 + rng.uniform();
    for (std::size_t r = 0; r < rows; ++r) {
        CapRow &row = table[r];
        row.budget = budget;
        budget += 0.5 + 2.0 * rng.uniform();
        // The cpu-priority variant takes the faster CPU cap and the
        // slower GPU cap of each pair (and vice versa), which rules
        // out inversions while keeping per-domain monotonicity (max
        // and min of non-decreasing sequences are non-decreasing).
        row.cpuPriority.cpu = std::max(cpu_a[r], cpu_b[r]);
        row.gpuPriority.cpu = std::min(cpu_a[r], cpu_b[r]);
        row.cpuPriority.gpu = std::min(gpu_a[r], gpu_b[r]);
        row.gpuPriority.gpu = std::max(gpu_a[r], gpu_b[r]);
        row.cpuPriority.mem = mem_a[r];
        row.gpuPriority.mem = mem_b[r];
    }
    return table;
}

TEST(BudgetArbiter, ValidatesBudgetAndThreshold)
{
    Chain chain(gpuGrid());
    EXPECT_THROW(BudgetArbiter(chain.clusters, 0.5, 0.03, {}),
                 FatalError);
    EXPECT_THROW(BudgetArbiter(chain.clusters, 1.3, -0.01, {}),
                 FatalError);
}

TEST(BudgetArbiter, RejectsMalformedTables)
{
    Chain chain(gpuGrid());

    // Non-ascending budgets.
    std::vector<CapRow> unsorted = twoRowTable();
    std::swap(unsorted[0].budget, unsorted[1].budget);
    EXPECT_THROW(BudgetArbiter(chain.clusters, 1.3, 0.03, unsorted),
                 FatalError);

    // Caps below the minimum setting leave the arbiter no choice.
    std::vector<CapRow> starved = twoRowTable();
    starved[0].cpuPriority.cpu = megaHertz(50);
    EXPECT_THROW(BudgetArbiter(chain.clusters, 1.3, 0.03, starved),
                 FatalError);

    // Priority inversion: the cpu-priority variant caps the CPU below
    // its gpu-priority sibling.
    std::vector<CapRow> inverted = twoRowTable();
    std::swap(inverted[0].cpuPriority.cpu, inverted[0].gpuPriority.cpu);
    EXPECT_THROW(BudgetArbiter(chain.clusters, 1.3, 0.03, inverted),
                 FatalError);

    // Caps tightening as the budget grows.
    std::vector<CapRow> tightening = twoRowTable();
    tightening[1].cpuPriority.mem = megaHertz(200);
    EXPECT_THROW(BudgetArbiter(chain.clusters, 1.3, 0.03, tightening),
                 FatalError);

    // Non-finite row budget / NaN system budget.
    std::vector<CapRow> bad_budget = twoRowTable();
    bad_budget[0].budget = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(BudgetArbiter(chain.clusters, 1.3, 0.03, bad_budget),
                 FatalError);
    BudgetArbiter arbiter(chain.clusters, 1.3, 0.03, twoRowTable());
    EXPECT_THROW(arbiter.setSystemBudget(
                     std::numeric_limits<double>::quiet_NaN()),
                 FatalError);
}

TEST(BudgetArbiter, MatchesRowsFloorWise)
{
    Chain chain(gpuGrid());
    BudgetArbiter arbiter(chain.clusters, 1.3, 0.03, twoRowTable());

    // Default budget is unconstrained: the top row is in force.
    EXPECT_EQ(arbiter.systemBudget(), BudgetArbiter::kUnconstrainedBudget);
    EXPECT_EQ(bitsOf(arbiter.activeCaps().cpu), bitsOf(megaHertz(1000)));

    // Below the first row, the first (most restrictive) row applies.
    arbiter.setSystemBudget(0.5);
    EXPECT_EQ(bitsOf(arbiter.activeCaps().cpu), bitsOf(megaHertz(600)));

    // Between rows, the floor row applies.
    arbiter.setSystemBudget(4.0);
    EXPECT_EQ(bitsOf(arbiter.activeCaps().cpu), bitsOf(megaHertz(600)));
    arbiter.setSystemBudget(6.0);
    EXPECT_EQ(bitsOf(arbiter.activeCaps().cpu), bitsOf(megaHertz(1000)));
}

TEST(BudgetArbiter, PrioritySelectsTheCapVariant)
{
    Chain chain(gpuGrid());
    BudgetArbiter arbiter(chain.clusters, 1.3, 0.03, twoRowTable(),
                          Priority::Cpu);
    arbiter.setSystemBudget(2.0);
    EXPECT_EQ(bitsOf(arbiter.activeCaps().cpu), bitsOf(megaHertz(600)));
    EXPECT_EQ(bitsOf(arbiter.activeCaps().gpu), bitsOf(megaHertz(300)));

    arbiter.setPriority(Priority::Gpu);
    EXPECT_EQ(arbiter.priority(), Priority::Gpu);
    EXPECT_EQ(bitsOf(arbiter.activeCaps().cpu), bitsOf(megaHertz(300)));
    EXPECT_EQ(bitsOf(arbiter.activeCaps().gpu), bitsOf(megaHertz(600)));

    // The allowed mask shrank relative to the unconstrained space.
    EXPECT_LT(arbiter.allowedMask().count(), gpuGrid().settingCount());
    EXPECT_TRUE(arbiter.allowedMask().any());
}

TEST(BudgetArbiter, EveryDecisionRespectsTheActiveCaps)
{
    // Randomized invariant: over random legal tables, random budget
    // swings and priority flips, every chosen setting is admitted by
    // the caps in force at decision time.
    const MeasuredGrid &grid = gpuGrid();
    const SettingsSpace &space = grid.space();
    Chain chain(grid);

    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        Rng rng(0xA4B1 + seed * 977);
        const std::vector<CapRow> table =
            randomTable(rng, space, 1 + rng.uniformInt(4));
        const double max_budget = table.back().budget;
        BudgetArbiter arbiter(chain.clusters, 1.3, 0.03, table,
                              rng.chance(0.5) ? Priority::Cpu
                                              : Priority::Gpu);

        FrequencySetting chosen = arbiter.decide(nullptr);
        EXPECT_TRUE(admits(arbiter.activeCaps(), chosen, true));

        std::size_t null_decides = 1;
        for (int step = 0; step < 60; ++step) {
            if (rng.chance(0.3)) {
                arbiter.setSystemBudget(rng.uniform() *
                                        (max_budget * 1.5));
            }
            if (rng.chance(0.15)) {
                arbiter.setPriority(rng.chance(0.5) ? Priority::Cpu
                                                    : Priority::Gpu);
            }
            SampleObservation obs;
            obs.sampleIndex = rng.uniformInt(grid.sampleCount());
            chosen = arbiter.decide(&obs);

            const DomainCaps caps = arbiter.activeCaps();
            ASSERT_TRUE(admits(caps, chosen, true))
                << "seed " << seed << " step " << step << ": chose "
                << chosen.cpu << "/" << chosen.mem << "/" << chosen.gpu
                << " under caps " << caps.cpu << "/" << caps.mem << "/"
                << caps.gpu;
            // The choice is a real member of the space.
            EXPECT_LT(space.indexOf(chosen), space.size());
        }
        EXPECT_EQ(arbiter.decisions(),
                  arbiter.keptSetting() + arbiter.retuned() +
                      arbiter.capped() + null_decides);
    }
}

TEST(BudgetArbiter, UnconstrainedMatchesInefficiencyGovernor)
{
    // The cap layer is pure filtering: with no table (or a roomy top
    // row in force) the decision stream must be bit-identical to the
    // plain governor's, kept/retuned counters included.
    for (const MeasuredGrid *grid :
         {&test::phasedGrid(), &gpuGrid()}) {
        Chain chain(*grid);
        InefficiencyGovernor governor(chain.clusters, 1.2, 0.03);
        BudgetArbiter bare(chain.clusters, 1.2, 0.03, {});
        BudgetArbiter roomy(chain.clusters, 1.2, 0.03, twoRowTable());

        expectSettingsBitEqual(governor.decide(nullptr),
                               bare.decide(nullptr));
        expectSettingsBitEqual(governor.decide(nullptr),
                               roomy.decide(nullptr));

        Rng rng(0xFEED);
        for (int step = 0; step < 50; ++step) {
            SampleObservation obs;
            obs.sampleIndex = rng.uniformInt(grid->sampleCount());
            const FrequencySetting expected = governor.decide(&obs);
            expectSettingsBitEqual(expected, bare.decide(&obs));
            expectSettingsBitEqual(expected, roomy.decide(&obs));
        }
        EXPECT_EQ(bare.keptSetting(), governor.keptSetting());
        EXPECT_EQ(bare.retuned(), governor.retuned());
        EXPECT_EQ(bare.capped(), 0u);
        EXPECT_EQ(roomy.keptSetting(), governor.keptSetting());
        EXPECT_EQ(roomy.retuned(), governor.retuned());
        EXPECT_EQ(roomy.capped(), 0u);
    }
}

TEST(BudgetArbiter, CapsVetoingTheOptimumCountAsCapped)
{
    const MeasuredGrid &grid = gpuGrid();
    Chain chain(grid);
    BudgetArbiter arbiter(chain.clusters, 1.3, 0.03, twoRowTable());
    arbiter.setSystemBudget(0.0);  // tight row in force

    arbiter.decide(nullptr);
    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        SampleObservation obs;
        obs.sampleIndex = s;
        const FrequencySetting chosen = arbiter.decide(&obs);
        EXPECT_TRUE(admits(arbiter.activeCaps(), chosen, true));
    }
    // The tight caps exclude the unconstrained optimum (the cluster
    // policy at these budgets tunes near the top of the ladders), so
    // at least one decision had to take the capped fallback.
    EXPECT_GE(arbiter.capped(), 1u);
    EXPECT_EQ(arbiter.name(), "budget-arbiter");
}

} // namespace
} // namespace mcdvfs
