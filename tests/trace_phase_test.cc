/**
 * @file
 * Unit tests for PhaseSpec validation and interpolation.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "trace/phase.hh"

namespace mcdvfs
{
namespace
{

TEST(PhaseSpec, DefaultValidates)
{
    EXPECT_NO_THROW(PhaseSpec{}.validate());
}

TEST(PhaseSpec, RejectsMixOverOne)
{
    PhaseSpec spec;
    spec.loadFrac = 0.6;
    spec.storeFrac = 0.5;
    EXPECT_THROW(spec.validate(), FatalError);
}

TEST(PhaseSpec, RejectsNegativeFraction)
{
    PhaseSpec spec;
    spec.branchFrac = -0.1;
    EXPECT_THROW(spec.validate(), FatalError);
}

TEST(PhaseSpec, RejectsBadFootprintTiers)
{
    PhaseSpec spec;
    spec.hotFrac = 0.8;
    spec.warmFrac = 0.3;
    EXPECT_THROW(spec.validate(), FatalError);
}

TEST(PhaseSpec, RejectsNonPositiveCpi)
{
    PhaseSpec spec;
    spec.baseCpi = 0.0;
    EXPECT_THROW(spec.validate(), FatalError);
}

TEST(PhaseSpec, RejectsMlpBelowOne)
{
    PhaseSpec spec;
    spec.mlp = 0.5;
    EXPECT_THROW(spec.validate(), FatalError);
}

TEST(PhaseSpec, RejectsZeroFootprint)
{
    PhaseSpec spec;
    spec.hotBytes = 0;
    EXPECT_THROW(spec.validate(), FatalError);
}

TEST(PhaseSpec, ColdFracIsRemainder)
{
    PhaseSpec spec;
    spec.hotFrac = 0.7;
    spec.warmFrac = 0.2;
    EXPECT_NEAR(spec.coldFrac(), 0.1, 1e-12);
}

TEST(PhaseSpec, MemFracSumsLoadsAndStores)
{
    PhaseSpec spec;
    spec.loadFrac = 0.2;
    spec.storeFrac = 0.15;
    EXPECT_NEAR(spec.memFrac(), 0.35, 1e-12);
}

TEST(PhaseSpec, LerpEndpoints)
{
    PhaseSpec a;
    a.baseCpi = 1.0;
    a.mlp = 1.0;
    PhaseSpec b;
    b.baseCpi = 3.0;
    b.mlp = 4.0;

    const PhaseSpec at0 = a.lerp(b, 0.0);
    EXPECT_DOUBLE_EQ(at0.baseCpi, 1.0);
    const PhaseSpec at1 = a.lerp(b, 1.0);
    EXPECT_DOUBLE_EQ(at1.baseCpi, 3.0);
    EXPECT_DOUBLE_EQ(at1.mlp, 4.0);
}

TEST(PhaseSpec, LerpMidpoint)
{
    PhaseSpec a;
    a.baseCpi = 1.0;
    PhaseSpec b;
    b.baseCpi = 2.0;
    EXPECT_DOUBLE_EQ(a.lerp(b, 0.5).baseCpi, 1.5);
}

TEST(PhaseSpec, LerpClampsParameter)
{
    PhaseSpec a;
    a.baseCpi = 1.0;
    PhaseSpec b;
    b.baseCpi = 2.0;
    EXPECT_DOUBLE_EQ(a.lerp(b, -1.0).baseCpi, 1.0);
    EXPECT_DOUBLE_EQ(a.lerp(b, 2.0).baseCpi, 2.0);
}

TEST(PhaseSpec, LerpInterpolatesSizes)
{
    PhaseSpec a;
    a.hotBytes = 1000;
    PhaseSpec b;
    b.hotBytes = 3000;
    EXPECT_EQ(a.lerp(b, 0.5).hotBytes, 2000u);
}

TEST(PhaseSpec, LerpResultValidates)
{
    PhaseSpec a;
    PhaseSpec b;
    b.hotFrac = 0.5;
    b.warmFrac = 0.3;
    EXPECT_NO_THROW(a.lerp(b, 0.37).validate());
}

} // namespace
} // namespace mcdvfs
