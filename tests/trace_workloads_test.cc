/**
 * @file
 * Unit tests for the SPEC-like workload profiles.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "trace/workloads.hh"

namespace mcdvfs
{
namespace
{

TEST(Workloads, SixStandardBenchmarks)
{
    const auto all = standardWorkloads();
    ASSERT_EQ(all.size(), 6u);
    EXPECT_EQ(all[0].name(), "bzip2");
    EXPECT_EQ(all[1].name(), "gcc");
    EXPECT_EQ(all[2].name(), "gobmk");
    EXPECT_EQ(all[3].name(), "lbm");
    EXPECT_EQ(all[4].name(), "libq.");
    EXPECT_EQ(all[5].name(), "milc");
}

TEST(Workloads, LookupByName)
{
    EXPECT_EQ(workloadByName("gobmk").name(), "gobmk");
    EXPECT_THROW(workloadByName("doom"), FatalError);
}

TEST(Workloads, SampleCountsMatchPaperScale)
{
    // The paper's plots run gobmk ~50 samples, milc/gcc/lbm 150-200.
    EXPECT_EQ(workloadByName("gobmk").sampleCount(), 50u);
    EXPECT_GE(workloadByName("milc").sampleCount(), 150u);
    EXPECT_GE(workloadByName("gcc").sampleCount(), 150u);
    EXPECT_GE(workloadByName("lbm").sampleCount(), 150u);
}

TEST(Workloads, TenMillionInstructionSamples)
{
    const WorkloadProfile w = workloadByName("bzip2");
    EXPECT_EQ(w.modeledInstructionsPerSample(), 10'000'000u);
    EXPECT_EQ(w.totalModeledInstructions(),
              10'000'000u * w.sampleCount());
}

TEST(Workloads, PhaseForOutOfRangeThrows)
{
    const WorkloadProfile w = workloadByName("gobmk");
    EXPECT_THROW(w.phaseFor(w.sampleCount()), FatalError);
}

TEST(Workloads, EveryPhaseValidates)
{
    for (const auto &workload : standardWorkloads()) {
        for (std::size_t s = 0; s < workload.sampleCount(); ++s)
            EXPECT_NO_THROW(workload.phaseFor(s).validate());
    }
}

TEST(Workloads, PhasesAreDeterministic)
{
    const WorkloadProfile w = workloadByName("gcc");
    for (std::size_t s = 0; s < w.sampleCount(); s += 13) {
        const PhaseSpec a = w.phaseFor(s);
        const PhaseSpec b = w.phaseFor(s);
        EXPECT_DOUBLE_EQ(a.baseCpi, b.baseCpi);
        EXPECT_DOUBLE_EQ(a.hotFrac, b.hotFrac);
        EXPECT_DOUBLE_EQ(a.mlp, b.mlp);
    }
}

TEST(Workloads, TraceSeedsDistinctAcrossSamples)
{
    const WorkloadProfile w = workloadByName("lbm");
    for (std::size_t s = 1; s < w.sampleCount(); ++s)
        EXPECT_NE(w.traceSeedFor(s), w.traceSeedFor(s - 1));
}

TEST(Workloads, JitterKeepsPhasesClose)
{
    // Jitter perturbs but must not change the phase identity: the
    // same pre-jitter phase recurring later stays within a few
    // percent.
    const WorkloadProfile w = workloadByName("bzip2");
    const PhaseSpec s0 = w.phaseFor(0);
    const PhaseSpec s5 = w.phaseFor(5);  // same compress phase
    EXPECT_EQ(s0.name, s5.name);
    EXPECT_NEAR(s0.baseCpi, s5.baseCpi, s0.baseCpi * 0.1);
}

TEST(Workloads, Bzip2AlternatesPhases)
{
    const WorkloadProfile w = workloadByName("bzip2");
    EXPECT_EQ(w.phaseFor(0).name, "bzip2.compress");
    EXPECT_EQ(w.phaseFor(10).name, "bzip2.decompress");
    EXPECT_EQ(w.phaseFor(20).name, "bzip2.compress");
}

TEST(Workloads, LibquantumIsSinglePhase)
{
    const WorkloadProfile w = workloadByName("libq.");
    const std::string name = w.phaseFor(0).name;
    for (std::size_t s = 0; s < w.sampleCount(); s += 7)
        EXPECT_EQ(w.phaseFor(s).name, name);
}

TEST(Workloads, GobmkChangesPhasesRapidly)
{
    const WorkloadProfile w = workloadByName("gobmk");
    std::size_t changes = 0;
    for (std::size_t s = 1; s < w.sampleCount(); ++s)
        changes += w.phaseFor(s).name != w.phaseFor(s - 1).name;
    // The paper's gobmk changes behaviour nearly every sample.
    EXPECT_GT(changes, w.sampleCount() / 2);
}

TEST(Workloads, LbmIsMemoryIntensive)
{
    const WorkloadProfile w = workloadByName("lbm");
    const PhaseSpec spec = w.phaseFor(0);
    EXPECT_GT(spec.coldFrac(), 0.2);
    EXPECT_GT(spec.mlp, 2.5);
}

TEST(Workloads, ConstructorValidation)
{
    EXPECT_THROW(
        WorkloadProfile("empty", 0,
                        [](std::size_t) { return PhaseSpec{}; }, 1),
        FatalError);
    EXPECT_THROW(WorkloadProfile("noscript", 5, nullptr, 1),
                 FatalError);
}

} // namespace
} // namespace mcdvfs
