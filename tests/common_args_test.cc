/**
 * @file
 * Unit tests for the command-line argument parser.
 */

#include <gtest/gtest.h>

#include "common/args.hh"
#include "common/logging.hh"

namespace mcdvfs
{
namespace
{

ArgParser
parser()
{
    ArgParser args("test");
    args.addOption("budget");
    args.addOption("out");
    args.addFlag("fine");
    return args;
}

TEST(ArgParser, PositionalsCollected)
{
    ArgParser args = parser();
    args.parse({"regions", "gobmk"});
    ASSERT_EQ(args.positionals().size(), 2u);
    EXPECT_EQ(args.positionals()[0], "regions");
    EXPECT_EQ(args.positionals()[1], "gobmk");
}

TEST(ArgParser, OptionsAndFlagsMixedWithPositionals)
{
    ArgParser args = parser();
    args.parse({"grid", "--budget", "1.3", "lbm", "--fine"});
    EXPECT_EQ(args.get("budget"), "1.3");
    EXPECT_TRUE(args.flag("fine"));
    ASSERT_EQ(args.positionals().size(), 2u);
    EXPECT_EQ(args.positionals()[1], "lbm");
}

TEST(ArgParser, DefaultsWhenAbsent)
{
    ArgParser args = parser();
    args.parse({"cmd"});
    EXPECT_FALSE(args.has("budget"));
    EXPECT_FALSE(args.flag("fine"));
    EXPECT_EQ(args.get("out", "fallback"), "fallback");
    EXPECT_DOUBLE_EQ(args.getDouble("budget", 1.5), 1.5);
    EXPECT_EQ(args.getInt("budget", 7), 7);
}

TEST(ArgParser, NumericConversions)
{
    ArgParser args = parser();
    args.parse({"--budget", "1.25"});
    EXPECT_DOUBLE_EQ(args.getDouble("budget", 0.0), 1.25);

    ArgParser ints("test");
    ints.addOption("n");
    ints.parse({"--n", "42"});
    EXPECT_EQ(ints.getInt("n", 0), 42);
}

TEST(ArgParser, BoundedIntInRange)
{
    ArgParser args("test");
    args.addOption("jobs");
    args.parse({"--jobs", "8"});
    EXPECT_EQ(args.getInt("jobs", 1, 1, 1024), 8);
    EXPECT_EQ(args.getInt("jobs", 1, 8, 8), 8);
}

TEST(ArgParser, BoundedIntBelowMinThrows)
{
    ArgParser args("test");
    args.addOption("jobs");
    args.parse({"--jobs", "0"});
    EXPECT_THROW(args.getInt("jobs", 1, 1, 1024), FatalError);

    ArgParser negative("test");
    negative.addOption("jobs");
    negative.parse({"--jobs", "-3"});
    EXPECT_THROW(negative.getInt("jobs", 1, 1, 1024), FatalError);
}

TEST(ArgParser, BoundedIntAboveMaxThrows)
{
    ArgParser args("test");
    args.addOption("jobs");
    args.parse({"--jobs", "4096"});
    EXPECT_THROW(args.getInt("jobs", 1, 1, 1024), FatalError);
}

TEST(ArgParser, BoundedIntAbsentReturnsFallbackUnchecked)
{
    // The fallback is the caller's default and is deliberately not
    // range-checked, so callers may use sentinel defaults outside
    // the range they accept from users.
    ArgParser args("test");
    args.addOption("jobs");
    args.parse({"cmd"});
    EXPECT_EQ(args.getInt("jobs", 0, 1, 1024), 0);
}

TEST(ArgParser, BadNumberThrows)
{
    ArgParser args = parser();
    args.parse({"--budget", "abc"});
    EXPECT_THROW(args.getDouble("budget", 0.0), FatalError);
}

TEST(ArgParser, UnknownOptionThrows)
{
    ArgParser args = parser();
    EXPECT_THROW(args.parse({"--bogus", "1"}), FatalError);
}

TEST(ArgParser, MissingValueThrows)
{
    ArgParser args = parser();
    EXPECT_THROW(args.parse({"--budget"}), FatalError);
}

TEST(ArgParser, DoubleDashEndsOptions)
{
    ArgParser args = parser();
    args.parse({"--fine", "--", "--budget"});
    EXPECT_TRUE(args.flag("fine"));
    ASSERT_EQ(args.positionals().size(), 1u);
    EXPECT_EQ(args.positionals()[0], "--budget");
}

} // namespace
} // namespace mcdvfs
