/**
 * @file
 * Unit and property tests for the joint settings space.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "dvfs/settings_space.hh"

namespace mcdvfs
{
namespace
{

TEST(SettingsSpace, CoarseHas70Settings)
{
    EXPECT_EQ(SettingsSpace::coarse().size(), 70u);
}

TEST(SettingsSpace, FineHas496Settings)
{
    EXPECT_EQ(SettingsSpace::fine().size(), 496u);
}

TEST(SettingsSpace, IndexRoundTrip)
{
    const SettingsSpace space = SettingsSpace::coarse();
    for (std::size_t k = 0; k < space.size(); ++k)
        EXPECT_EQ(space.indexOf(space.at(k)), k);
}

TEST(SettingsSpace, IndexOfUnknownThrows)
{
    const SettingsSpace space = SettingsSpace::coarse();
    EXPECT_THROW(
        space.indexOf(FrequencySetting{megaHertz(550), megaHertz(800)}),
        FatalError);
    EXPECT_THROW(
        space.indexOf(FrequencySetting{megaHertz(500), megaHertz(850)}),
        FatalError);
}

TEST(SettingsSpace, MaxAndMinSettings)
{
    const SettingsSpace space = SettingsSpace::coarse();
    EXPECT_DOUBLE_EQ(space.maxSetting().cpu, megaHertz(1000));
    EXPECT_DOUBLE_EQ(space.maxSetting().mem, megaHertz(800));
    EXPECT_DOUBLE_EQ(space.minSetting().cpu, megaHertz(100));
    EXPECT_DOUBLE_EQ(space.minSetting().mem, megaHertz(200));
}

TEST(SettingsSpace, AllEnumeratesEverySetting)
{
    const SettingsSpace space = SettingsSpace::coarse();
    const auto all = space.all();
    ASSERT_EQ(all.size(), 70u);
    EXPECT_TRUE(all.front() ==
                (FrequencySetting{megaHertz(100), megaHertz(200)}));
    EXPECT_TRUE(all.back() == space.maxSetting());
}

TEST(FrequencySetting, Label)
{
    const FrequencySetting setting{megaHertz(920), megaHertz(580)};
    EXPECT_EQ(setting.label(), "920/580");
}

TEST(FrequencySetting, PreferenceOrderingCpuFirst)
{
    // The paper's tie-break: highest CPU frequency first, then
    // highest memory frequency.
    const FrequencySetting a{megaHertz(900), megaHertz(200)};
    const FrequencySetting b{megaHertz(800), megaHertz(800)};
    EXPECT_TRUE(settingPreferred(a, b));
    EXPECT_FALSE(settingPreferred(b, a));
}

TEST(FrequencySetting, PreferenceOrderingMemSecond)
{
    const FrequencySetting a{megaHertz(900), megaHertz(700)};
    const FrequencySetting b{megaHertz(900), megaHertz(500)};
    EXPECT_TRUE(settingPreferred(a, b));
    EXPECT_FALSE(settingPreferred(b, a));
    EXPECT_FALSE(settingPreferred(a, a));  // strict ordering
}

/** Property: at() is CPU-major and consistent with the ladders. */
TEST(SettingsSpace, CpuMajorLayout)
{
    const SettingsSpace space = SettingsSpace::coarse();
    const std::size_t mem_steps = space.memLadder().size();
    for (std::size_t k = 0; k < space.size(); ++k) {
        const FrequencySetting setting = space.at(k);
        EXPECT_DOUBLE_EQ(setting.cpu,
                         space.cpuLadder().at(k / mem_steps));
        EXPECT_DOUBLE_EQ(setting.mem,
                         space.memLadder().at(k % mem_steps));
    }
}

} // namespace
} // namespace mcdvfs
