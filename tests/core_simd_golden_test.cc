/**
 * @file
 * Golden bit-identity tests for the explicit vector kernels.
 *
 * Every AVX2/NEON path in the repo — SettingMask::filterGE and
 * andInplaceAny, the ClusterFinder compare passes, the grid kernel's
 * fixed-point strip — must produce exactly the bits of its scalar
 * fallback.  These tests pin that: each runs the scalar path (via
 * simd::forceLevel) and the best active path over the same inputs and
 * compares bit for bit, across noise settings, serial and pooled
 * sweeps, and the budget x threshold grids the figure benches use
 * (fig04/05 clusters, fig09 region lengths, fig12 step sensitivity).
 *
 * In a default (non-MCDVFS_NATIVE) build no vector path is compiled,
 * forceLevel clamps every request to Scalar, and the tests compare the
 * scalar path against itself — trivially green, still exercising the
 * dispatch plumbing.
 */

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/simd.hh"
#include "core/analysis_sweep.hh"
#include "core/reference_analysis.hh"
#include "exec/thread_pool.hh"
#include "test_grid.hh"

namespace mcdvfs
{
namespace
{

/** Pins the dispatch level for one scope, restoring on exit. */
class LevelGuard
{
  public:
    explicit LevelGuard(simd::Level level)
        : previous_(simd::level())
    {
        simd::forceLevel(level);
    }
    ~LevelGuard() { simd::forceLevel(previous_); }

  private:
    simd::Level previous_;
};

/** The best level the build + CPU provide (what auto resolves to). */
simd::Level
bestLevel()
{
    return simd::forceLevel(simd::Level::Avx2);
}

/** Sweep points covering the fig04/05/09/12 budget x threshold use. */
std::vector<SweepPoint>
figureSweepPoints()
{
    std::vector<SweepPoint> points;
    for (const double budget : {1.0, 1.1, 1.3, 1.6}) {
        for (const double threshold : {0.01, 0.03, 0.05})
            points.push_back({budget, threshold});
    }
    return points;
}

MeasuredGrid
buildGrid(const WorkloadProfile &workload, double noise)
{
    SystemConfig config = test::fastSystemConfig();
    config.measurementNoise = noise;
    GridRunner runner(config);
    return runner.run(workload, SettingsSpace::coarse());
}

void
expectGridsIdentical(const MeasuredGrid &a, const MeasuredGrid &b)
{
    ASSERT_EQ(a.sampleCount(), b.sampleCount());
    ASSERT_EQ(a.settingCount(), b.settingCount());
    for (std::size_t s = 0; s < a.sampleCount(); ++s) {
        for (std::size_t k = 0; k < a.settingCount(); ++k) {
            const GridCell ca = a.cell(s, k);
            const GridCell cb = b.cell(s, k);
            ASSERT_EQ(ca.seconds, cb.seconds)
                << "seconds at (" << s << ", " << k << ")";
            ASSERT_EQ(ca.cpuEnergy, cb.cpuEnergy)
                << "cpuEnergy at (" << s << ", " << k << ")";
            ASSERT_EQ(ca.memEnergy, cb.memEnergy)
                << "memEnergy at (" << s << ", " << k << ")";
            ASSERT_EQ(ca.busyFrac, cb.busyFrac)
                << "busyFrac at (" << s << ", " << k << ")";
            ASSERT_EQ(ca.bwUtil, cb.bwUtil)
                << "bwUtil at (" << s << ", " << k << ")";
        }
    }
}

void
expectChoicesIdentical(const OptimalChoice &a, const OptimalChoice &b)
{
    ASSERT_EQ(a.settingIndex, b.settingIndex);
    ASSERT_TRUE(a.setting == b.setting);
    ASSERT_EQ(a.speedup, b.speedup);
    ASSERT_EQ(a.inefficiency, b.inefficiency);
}

void
expectRegionsIdentical(const std::vector<StableRegion> &a,
                       const std::vector<StableRegion> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].first, b[i].first);
        ASSERT_EQ(a[i].last, b[i].last);
        ASSERT_EQ(a[i].availableSettings, b[i].availableSettings);
        ASSERT_EQ(a[i].chosenSettingIndex, b[i].chosenSettingIndex);
        ASSERT_TRUE(a[i].chosenSetting == b[i].chosenSetting);
    }
}

void
expectSweepsIdentical(const std::vector<SweepResult> &a,
                      const std::vector<SweepResult> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t p = 0; p < a.size(); ++p) {
        ASSERT_EQ(a[p].table.masks, b[p].table.masks)
            << "masks diverge at point " << p;
        ASSERT_EQ(a[p].table.sampleCount(), b[p].table.sampleCount());
        for (std::size_t s = 0; s < a[p].table.sampleCount(); ++s) {
            expectChoicesIdentical(a[p].table.optimal[s],
                                   b[p].table.optimal[s]);
        }
        expectRegionsIdentical(a[p].regions, b[p].regions);
    }
}

TEST(SimdDispatch, ForceLevelClampsAndRestores)
{
    const simd::Level best = bestLevel();
    EXPECT_EQ(simd::forceLevel(simd::Level::Scalar),
              simd::Level::Scalar);
    EXPECT_EQ(simd::level(), simd::Level::Scalar);
    EXPECT_FALSE(simd::haveAvx2());
    EXPECT_FALSE(simd::haveNeon());
    // Requesting more than the build/CPU provide clamps to the best.
    EXPECT_EQ(simd::forceLevel(simd::Level::Avx2), best);
    EXPECT_EQ(simd::level(), best);
}

TEST(SimdGolden, FilterGEMatchesScalar)
{
    // Values exercising ties, infinities and NaN: the GE compare must
    // behave identically in every lane (ordered-quiet: NaN drops out).
    const std::size_t n = 131;  // odd size exercises the scalar tail
    std::vector<double> values(n);
    SettingMask mask(n);
    for (std::size_t i = 0; i < n; ++i) {
        values[i] = 0.1 * static_cast<double>(i % 23) - 1.0;
        if (i % 17 == 0)
            values[i] = std::numeric_limits<double>::quiet_NaN();
        if (i % 13 == 0)
            values[i] = 0.5;  // exact tie with one cutoff below
        if (i % 3 != 0)
            mask.set(i);
    }
    for (const double cutoff :
         {0.5, 0.0, -2.0, std::numeric_limits<double>::infinity()}) {
        SettingMask scalar_out(0);
        {
            LevelGuard guard(simd::Level::Scalar);
            scalar_out = mask.filterGE(values.data(), cutoff);
        }
        LevelGuard guard(bestLevel());
        const SettingMask best_out = mask.filterGE(values.data(), cutoff);
        EXPECT_EQ(scalar_out, best_out) << "cutoff " << cutoff;
    }
}

TEST(SimdGolden, AndInplaceAnyMatchesScalar)
{
    const std::size_t n = 200;
    SettingMask a(n);
    SettingMask b(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (i % 2 == 0)
            a.set(i);
        if (i % 3 == 0)
            b.set(i);
    }
    SettingMask scalar_a = a;
    bool scalar_any = false;
    {
        LevelGuard guard(simd::Level::Scalar);
        scalar_any = scalar_a.andInplaceAny(b);
    }
    LevelGuard guard(bestLevel());
    SettingMask best_a = a;
    EXPECT_EQ(best_a.andInplaceAny(b), scalar_any);
    EXPECT_EQ(best_a, scalar_a);

    // Disjoint masks: the survived report must also agree on empty.
    SettingMask odd(n);
    SettingMask even(n);
    for (std::size_t i = 0; i < n; ++i)
        (i % 2 ? odd : even).set(i);
    EXPECT_FALSE(odd.andInplaceAny(even));
    EXPECT_TRUE(odd.none());
}

TEST(SimdGolden, FilterGEMatchesScalarHeapTier)
{
    // Same compare-semantics pin as FilterGEMatchesScalar, but past
    // the inline tier: 1500 settings spill to the heap word vector,
    // whose rounded-up register count the AVX2 path relies on.
    const std::size_t n = 1500;
    std::vector<double> values(n);
    SettingMask mask(n);
    for (std::size_t i = 0; i < n; ++i) {
        values[i] = 0.05 * static_cast<double>(i % 61) - 1.5;
        if (i % 19 == 0)
            values[i] = std::numeric_limits<double>::quiet_NaN();
        if (i % 11 == 0)
            values[i] = 0.5;
        if (i % 5 != 0)
            mask.set(i);
    }
    for (const double cutoff :
         {0.5, 0.0, -2.0, std::numeric_limits<double>::infinity()}) {
        SettingMask scalar_out(0);
        {
            LevelGuard guard(simd::Level::Scalar);
            scalar_out = mask.filterGE(values.data(), cutoff);
        }
        LevelGuard guard(bestLevel());
        const SettingMask best_out = mask.filterGE(values.data(), cutoff);
        EXPECT_EQ(scalar_out, best_out) << "cutoff " << cutoff;
    }
}

TEST(SimdGolden, AndInplaceAnyMatchesScalarHeapTier)
{
    const std::size_t n = 1500;
    SettingMask a(n);
    SettingMask b(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (i % 2 == 0)
            a.set(i);
        if (i % 7 == 0)
            b.set(i);
    }
    SettingMask scalar_a = a;
    bool scalar_any = false;
    {
        LevelGuard guard(simd::Level::Scalar);
        scalar_any = scalar_a.andInplaceAny(b);
    }
    LevelGuard guard(bestLevel());
    SettingMask best_a = a;
    EXPECT_EQ(best_a.andInplaceAny(b), scalar_any);
    EXPECT_EQ(best_a, scalar_a);

    // A single surviving bit in the last heap word must be reported.
    SettingMask lone(n);
    SettingMask all(n);
    lone.set(n - 1);
    for (std::size_t i = 0; i < n; ++i)
        all.set(i);
    EXPECT_TRUE(lone.andInplaceAny(all));
    EXPECT_EQ(lone.count(), 1u);
}

TEST(SimdGolden, ThreeDomainAnalysisBitIdenticalAcrossLevels)
{
    // A 560-setting CPU x mem x GPU space exercises the heap mask tier
    // through the full cluster/region chain: scalar and best vector
    // level must agree bit for bit, as on the two-domain fast path.
    const SettingsSpace space = SettingsSpace::coarse3();
    ASSERT_GT(space.size(), SettingMask::kCapacity);

    const auto run_sweep = [&] {
        GridRunner runner(test::fastSystemConfig());
        const MeasuredGrid grid =
            runner.run(test::phasedWorkload(), space);
        InefficiencyAnalysis analysis(grid);
        OptimalSettingsFinder finder(analysis);
        ClusterFinder clusters(finder);
        AnalysisSweep sweep(clusters);
        return sweep.run(figureSweepPoints());
    };

    std::vector<SweepResult> scalar_results;
    {
        LevelGuard guard(simd::Level::Scalar);
        scalar_results = run_sweep();
    }
    LevelGuard guard(bestLevel());
    expectSweepsIdentical(scalar_results, run_sweep());
}

TEST(SimdGolden, GridBuildBitIdenticalAcrossLevels)
{
    for (const double noise : {0.0, 0.02}) {
        for (const WorkloadProfile &workload :
             {test::phasedWorkload(), test::steadyWorkload()}) {
            MeasuredGrid scalar_grid = [&] {
                LevelGuard guard(simd::Level::Scalar);
                return buildGrid(workload, noise);
            }();
            LevelGuard guard(bestLevel());
            const MeasuredGrid best_grid = buildGrid(workload, noise);
            expectGridsIdentical(scalar_grid, best_grid);
            EXPECT_EQ(scalar_grid.prefixDigest(
                          scalar_grid.sampleCount()),
                      best_grid.prefixDigest(best_grid.sampleCount()));
        }
    }
}

TEST(SimdGolden, AnalysisSweepBitIdenticalSerialAndPooled)
{
    const std::vector<SweepPoint> points = figureSweepPoints();
    for (const WorkloadProfile &workload :
         {test::phasedWorkload(), test::steadyWorkload()}) {
        // One grid (built under the scalar level) feeds every sweep,
        // so any divergence below is the analysis kernel's.
        LevelGuard scalar_guard(simd::Level::Scalar);
        const MeasuredGrid grid = buildGrid(workload, 0.01);
        InefficiencyAnalysis analysis(grid);
        OptimalSettingsFinder finder(analysis);
        ClusterFinder clusters(finder);
        AnalysisSweep sweep(clusters);

        const std::vector<SweepResult> scalar_serial =
            sweep.run(points);

        LevelGuard best_guard(bestLevel());
        expectSweepsIdentical(scalar_serial, sweep.run(points));
        exec::ThreadPool pool(3);
        expectSweepsIdentical(scalar_serial,
                              sweep.run(points, &pool));
    }
}

TEST(SimdGolden, VectorKernelsMatchScalarReference)
{
    // The scalar reference chain (core/reference_analysis) is the
    // oracle the bitset kernel is pinned to; run it against the best
    // vector level directly.
    LevelGuard guard(bestLevel());
    const MeasuredGrid &grid = test::phasedGrid();
    const SettingsSpace space = SettingsSpace::coarse();
    InefficiencyAnalysis analysis(grid);
    OptimalSettingsFinder finder(analysis);
    ClusterFinder clusters(finder);
    StableRegionFinder region_finder(clusters);

    for (const SweepPoint &point : figureSweepPoints()) {
        const ClusterTable table =
            clusters.table(point.budget, point.threshold);
        const std::vector<PerformanceCluster> reference =
            referenceClusters(finder, point.budget, point.threshold);
        ASSERT_EQ(table.sampleCount(), reference.size());
        for (std::size_t s = 0; s < reference.size(); ++s) {
            const PerformanceCluster cluster = table.materialize(s);
            expectChoicesIdentical(cluster.optimal,
                                   reference[s].optimal);
            ASSERT_EQ(cluster.settings, reference[s].settings);
        }
        expectRegionsIdentical(
            region_finder.fromTable(table),
            referenceStableRegions(space, reference));
    }
}

} // namespace
} // namespace mcdvfs
