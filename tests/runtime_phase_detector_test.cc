/**
 * @file
 * Unit tests for the counter-driven phase-change detector.
 */

#include <gtest/gtest.h>

#include "runtime/phase_detector.hh"
#include "test_grid.hh"

namespace mcdvfs
{
namespace
{

SampleProfile
profileWith(double cpi, double l1, double l2, double dram)
{
    SampleProfile p;
    p.baseCpi = cpi;
    p.l1Mpki = l1;
    p.l2Mpki = l2;
    p.dramReadsPerInstr = dram;
    return p;
}

TEST(PhaseDetector, FirstSampleStartsPhase)
{
    PhaseDetector detector;
    EXPECT_TRUE(detector.observe(profileWith(1.0, 10, 2, 0.002)));
    EXPECT_EQ(detector.phaseChanges(), 0u);
}

TEST(PhaseDetector, SteadyBehaviourFlagsNothing)
{
    PhaseDetector detector;
    detector.observe(profileWith(1.0, 10, 2, 0.002));
    for (int i = 0; i < 50; ++i) {
        const double w = 1.0 + 0.02 * ((i % 3) - 1);  // tiny wobble
        EXPECT_FALSE(detector.observe(
            profileWith(1.0 * w, 10 * w, 2 * w, 0.002 * w)));
    }
    EXPECT_EQ(detector.phaseChanges(), 0u);
}

TEST(PhaseDetector, LargeShiftFlagsChange)
{
    PhaseDetector detector;
    detector.observe(profileWith(0.8, 8, 1, 0.001));
    detector.observe(profileWith(0.8, 8, 1, 0.001));
    EXPECT_TRUE(detector.observe(profileWith(2.2, 40, 15, 0.015)));
    EXPECT_EQ(detector.phaseChanges(), 1u);
}

TEST(PhaseDetector, TracksDriftWithoutFlagging)
{
    // A slow drift (2% per sample) stays under the 25% threshold as
    // the centroid follows.
    PhaseDetector detector;
    double cpi = 1.0;
    detector.observe(profileWith(cpi, 10, 2, 0.002));
    std::size_t flags = 0;
    for (int i = 0; i < 40; ++i) {
        cpi *= 1.02;
        flags += detector.observe(profileWith(cpi, 10, 2, 0.002));
    }
    EXPECT_EQ(flags, 0u);
    // Total drift was >2x: the detector tracked, not ignored.
    EXPECT_GT(cpi, 2.0);
}

TEST(PhaseDetector, CountsAlternationOnRealWorkload)
{
    // The phased fixture alternates cpu/mem phases every 3 samples;
    // the detector should flag roughly those boundaries.
    const MeasuredGrid &grid = test::phasedGrid();
    PhaseDetector detector;
    for (std::size_t s = 0; s < grid.sampleCount(); ++s)
        detector.observe(grid.profile(s));
    EXPECT_GE(detector.phaseChanges(), 2u);
    EXPECT_LE(detector.phaseChanges(), grid.sampleCount() / 2);
}

TEST(PhaseDetector, ThresholdControlsSensitivity)
{
    PhaseDetectorParams loose;
    loose.changeThreshold = 1.5;
    PhaseDetector tolerant(loose);
    tolerant.observe(profileWith(0.8, 8, 1, 0.001));
    EXPECT_FALSE(tolerant.observe(profileWith(1.4, 16, 3, 0.003)));

    PhaseDetectorParams tight;
    tight.changeThreshold = 0.05;
    PhaseDetector touchy(tight);
    touchy.observe(profileWith(0.8, 8, 1, 0.001));
    EXPECT_TRUE(touchy.observe(profileWith(1.0, 9, 1.2, 0.0012)));
}

} // namespace
} // namespace mcdvfs
