/**
 * @file
 * Unit tests for RunningStats and Distribution.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hh"

namespace mcdvfs
{
namespace
{

TEST(RunningStats, EmptyDefaults)
{
    RunningStats stats;
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_EQ(stats.mean(), 0.0);
    EXPECT_EQ(stats.variance(), 0.0);
    EXPECT_EQ(stats.min(), 0.0);
    EXPECT_EQ(stats.max(), 0.0);
    EXPECT_EQ(stats.sum(), 0.0);
}

TEST(RunningStats, SingleValue)
{
    RunningStats stats;
    stats.add(4.5);
    EXPECT_EQ(stats.count(), 1u);
    EXPECT_DOUBLE_EQ(stats.mean(), 4.5);
    EXPECT_EQ(stats.variance(), 0.0);
    EXPECT_DOUBLE_EQ(stats.min(), 4.5);
    EXPECT_DOUBLE_EQ(stats.max(), 4.5);
}

TEST(RunningStats, KnownMoments)
{
    RunningStats stats;
    for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stats.add(v);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    // Sample variance with n-1 denominator: 32/7.
    EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(stats.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_DOUBLE_EQ(stats.min(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
    EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStats, NegativeValues)
{
    RunningStats stats;
    stats.add(-3.0);
    stats.add(3.0);
    EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
    EXPECT_DOUBLE_EQ(stats.min(), -3.0);
    EXPECT_DOUBLE_EQ(stats.max(), 3.0);
}

TEST(Distribution, QuantilesOfKnownSet)
{
    Distribution dist;
    for (const double v : {1.0, 2.0, 3.0, 4.0, 5.0})
        dist.add(v);
    EXPECT_DOUBLE_EQ(dist.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(dist.quantile(0.25), 2.0);
    EXPECT_DOUBLE_EQ(dist.quantile(0.5), 3.0);
    EXPECT_DOUBLE_EQ(dist.quantile(0.75), 4.0);
    EXPECT_DOUBLE_EQ(dist.quantile(1.0), 5.0);
}

TEST(Distribution, QuantileInterpolates)
{
    Distribution dist;
    dist.add(0.0);
    dist.add(10.0);
    EXPECT_DOUBLE_EQ(dist.quantile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(dist.quantile(0.1), 1.0);
}

TEST(Distribution, InsertionOrderIrrelevant)
{
    Distribution a;
    Distribution b;
    for (const double v : {5.0, 1.0, 3.0})
        a.add(v);
    for (const double v : {1.0, 3.0, 5.0})
        b.add(v);
    EXPECT_DOUBLE_EQ(a.quantile(0.5), b.quantile(0.5));
}

TEST(Distribution, SingleValueSummary)
{
    Distribution dist;
    dist.add(7.0);
    const BoxSummary box = dist.summary();
    EXPECT_DOUBLE_EQ(box.min, 7.0);
    EXPECT_DOUBLE_EQ(box.median, 7.0);
    EXPECT_DOUBLE_EQ(box.max, 7.0);
    EXPECT_DOUBLE_EQ(box.mean, 7.0);
    EXPECT_EQ(box.count, 1u);
}

TEST(Distribution, EmptySummaryIsZero)
{
    const BoxSummary box = Distribution{}.summary();
    EXPECT_EQ(box.count, 0u);
    EXPECT_EQ(box.median, 0.0);
}

TEST(Distribution, MeanMatchesRunningStats)
{
    Distribution dist;
    RunningStats stats;
    for (int i = 1; i <= 50; ++i) {
        dist.add(i * 0.5);
        stats.add(i * 0.5);
    }
    EXPECT_NEAR(dist.mean(), stats.mean(), 1e-12);
}

TEST(DistributionDeathTest, QuantileOfEmptyPanics)
{
    Distribution dist;
    EXPECT_DEATH(dist.quantile(0.5), "empty distribution");
}

TEST(DistributionDeathTest, QuantileOutOfRangePanics)
{
    Distribution dist;
    dist.add(1.0);
    EXPECT_DEATH(dist.quantile(1.5), "q in");
}

} // namespace
} // namespace mcdvfs
