/**
 * @file
 * Unit tests for the §VII online tuning-loop simulation.
 */

#include <gtest/gtest.h>

#include "runtime/tuning_loop.hh"
#include "test_grid.hh"

namespace mcdvfs
{
namespace
{

struct Chain
{
    InefficiencyAnalysis analysis;
    OptimalSettingsFinder finder;
    ClusterFinder clusters;
    StableRegionFinder regions;
    TuningCostModel cost;
    TuningLoop loop;

    explicit Chain(const MeasuredGrid &grid)
        : analysis(grid), finder(analysis), clusters(finder),
          regions(clusters), cost(),
          loop(clusters, regions, cost)
    {
    }
};

constexpr double kBudget = 1.3;
constexpr double kThreshold = 0.03;

TEST(TuningLoop, EverySampleTunesEverySample)
{
    const MeasuredGrid &grid = test::phasedGrid();
    Chain chain(grid);
    const TuningLoopResult result =
        chain.loop.runEverySample(kBudget, kThreshold);
    EXPECT_EQ(result.tuningEvents, grid.sampleCount());
    EXPECT_EQ(result.policy, "every-sample");
}

TEST(TuningLoop, OracleTunesOncePerRegion)
{
    Chain chain(test::phasedGrid());
    const auto regions = chain.regions.find(kBudget, kThreshold);
    const TuningLoopResult result =
        chain.loop.runOracle(kBudget, kThreshold);
    EXPECT_EQ(result.tuningEvents, regions.size());
    EXPECT_EQ(result.budgetViolationFrac, 0.0);
}

TEST(TuningLoop, PredictiveTunesNoMoreThanEverySample)
{
    Chain chain(test::phasedGrid());
    const TuningLoopResult every =
        chain.loop.runEverySample(kBudget, kThreshold);
    const TuningLoopResult predictive =
        chain.loop.runPredictive(kBudget, kThreshold);
    EXPECT_LE(predictive.tuningEvents, every.tuningEvents);
    EXPECT_GE(predictive.tuningEvents, 1u);
}

TEST(TuningLoop, PredictiveSkipsOnSteadyWorkload)
{
    // A single-phase workload should let the predictor skip most
    // re-tunes.
    Chain chain(test::steadyGrid());
    const TuningLoopResult predictive =
        chain.loop.runPredictive(kBudget, 0.05);
    EXPECT_LT(predictive.tuningEvents,
              test::steadyGrid().sampleCount());
}

TEST(TuningLoop, ProfileDrivenFollowsProfile)
{
    const MeasuredGrid &grid = test::phasedGrid();
    Chain chain(grid);
    const auto regions = chain.regions.find(kBudget, kThreshold);
    const OfflineProfile profile = OfflineProfile::fromRegions(
        grid.workload(), regions, grid.space());
    const TuningLoopResult result =
        chain.loop.runProfileDriven(kBudget, kThreshold, profile);
    EXPECT_EQ(result.tuningEvents, regions.size());
    // Following its own profile reproduces the oracle outcome.
    const TuningLoopResult oracle =
        chain.loop.runOracle(kBudget, kThreshold);
    EXPECT_NEAR(result.time, oracle.time, oracle.time * 1e-12);
    EXPECT_NEAR(result.energy, oracle.energy, oracle.energy * 1e-12);
}

TEST(TuningLoop, OverheadChargedPerEvent)
{
    const MeasuredGrid &grid = test::phasedGrid();
    Chain chain(grid);
    const TuningLoopResult result =
        chain.loop.runEverySample(kBudget, kThreshold);
    const TuningOverhead overhead = chain.cost.overhead(
        result.tuningEvents, grid.settingCount());
    EXPECT_NEAR(result.timeWithOverhead, result.time + overhead.latency,
                1e-12);
    EXPECT_NEAR(result.energyWithOverhead,
                result.energy + overhead.energy, 1e-12);
}

TEST(TuningLoop, OnlinePoliciesRarelyViolateBudget)
{
    // Last-value prediction can miss a phase change by one sample;
    // violations must stay a small fraction of the run.
    Chain chain(test::phasedGrid());
    for (const TuningLoopResult &result :
         {chain.loop.runEverySample(kBudget, kThreshold),
          chain.loop.runPredictive(kBudget, kThreshold)}) {
        EXPECT_LE(result.budgetViolationFrac, 0.5)
            << result.policy;
        EXPECT_GE(result.achievedInefficiency, 1.0);
    }
}

TEST(TuningLoop, TransitionsNeverExceedSamples)
{
    const MeasuredGrid &grid = test::phasedGrid();
    Chain chain(grid);
    for (const TuningLoopResult &result :
         {chain.loop.runOracle(kBudget, kThreshold),
          chain.loop.runEverySample(kBudget, kThreshold),
          chain.loop.runPredictive(kBudget, kThreshold)}) {
        EXPECT_LT(result.transitions, grid.sampleCount())
            << result.policy;
    }
}

} // namespace
} // namespace mcdvfs
