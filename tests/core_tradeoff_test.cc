/**
 * @file
 * Unit and property tests for the Fig. 10/11 trade-off evaluation.
 */

#include <gtest/gtest.h>

#include "core/tradeoff.hh"
#include "test_grid.hh"

namespace mcdvfs
{
namespace
{

struct Chain
{
    InefficiencyAnalysis analysis;
    OptimalSettingsFinder finder;
    ClusterFinder clusters;
    StableRegionFinder regions;
    TuningCostModel cost;
    TradeoffEvaluator tradeoff;

    explicit Chain(const MeasuredGrid &grid)
        : analysis(grid), finder(analysis), clusters(finder),
          regions(clusters), cost(),
          tradeoff(regions, clusters, cost)
    {
    }
};

TEST(Tradeoff, OptimalTrackingStaysWithinBudget)
{
    // The paper's §VI-C verification: every run remains under its
    // inefficiency budget.
    Chain chain(test::phasedGrid());
    for (const double budget : {1.0, 1.1, 1.2, 1.3, 1.6}) {
        const PolicyOutcome outcome =
            chain.tradeoff.optimalTracking(budget);
        ASSERT_LE(outcome.achievedInefficiency, budget + 1e-9);
    }
}

TEST(Tradeoff, ClusterPolicyStaysWithinBudget)
{
    Chain chain(test::phasedGrid());
    for (const double budget : {1.0, 1.2, 1.3, 1.6}) {
        for (const double threshold : {0.01, 0.03, 0.05}) {
            const PolicyOutcome outcome =
                chain.tradeoff.clusterPolicy(budget, threshold);
            ASSERT_LE(outcome.achievedInefficiency, budget + 1e-9);
        }
    }
}

TEST(Tradeoff, OptimalTrackingTunesEverySample)
{
    const MeasuredGrid &grid = test::phasedGrid();
    Chain chain(grid);
    const PolicyOutcome outcome = chain.tradeoff.optimalTracking(1.3);
    EXPECT_EQ(outcome.tuningEvents, grid.sampleCount());
}

TEST(Tradeoff, ClusterPolicyTunesOncePerRegion)
{
    Chain chain(test::phasedGrid());
    const auto regions = chain.regions.find(1.3, 0.03);
    const PolicyOutcome outcome =
        chain.tradeoff.clusterPolicy(1.3, 0.03);
    EXPECT_EQ(outcome.tuningEvents, regions.size());
    EXPECT_LE(outcome.transitions, regions.size() - 1 + 1);
}

TEST(Tradeoff, OverheadAddsLatencyAndEnergy)
{
    const MeasuredGrid &grid = test::phasedGrid();
    Chain chain(grid);
    const PolicyOutcome outcome = chain.tradeoff.optimalTracking(1.3);
    const TuningOverhead overhead = chain.cost.overhead(
        outcome.tuningEvents, grid.settingCount());
    EXPECT_NEAR(outcome.timeWithOverhead,
                outcome.time + overhead.latency, 1e-12);
    EXPECT_NEAR(outcome.energyWithOverhead,
                outcome.energy + overhead.energy, 1e-12);
}

TEST(Tradeoff, PerfDegradationWithinThreshold)
{
    // Fig. 11(a): the cluster policy never degrades performance by
    // more than the cluster threshold.
    Chain chain(test::phasedGrid());
    for (const double threshold : {0.01, 0.03, 0.05}) {
        const TradeoffRow row = chain.tradeoff.compare(1.3, threshold);
        ASSERT_GE(row.perfPct, -threshold * 100.0 - 1e-6);
        ASSERT_LE(row.perfPct, 1e-6);  // never faster without overhead
    }
}

TEST(Tradeoff, ClusterPolicySavesEnergyOrTies)
{
    Chain chain(test::phasedGrid());
    for (const double threshold : {0.01, 0.03, 0.05}) {
        const TradeoffRow row = chain.tradeoff.compare(1.3, threshold);
        ASSERT_LE(row.energyPct, 1e-6);
    }
}

TEST(Tradeoff, OverheadMakesClusterPolicyRelativelyFaster)
{
    // Fig. 11(b): charging per-event overhead always moves the
    // comparison in the cluster policy's favour (it tunes less).
    Chain chain(test::phasedGrid());
    for (const double threshold : {0.01, 0.03, 0.05}) {
        const TradeoffRow row = chain.tradeoff.compare(1.3, threshold);
        ASSERT_GE(row.perfPctWithOverhead, row.perfPct - 1e-9);
    }
}

TEST(Tradeoff, NormalizedTimeAtUnityIsOne)
{
    Chain chain(test::phasedGrid());
    EXPECT_NEAR(chain.tradeoff.normalizedExecutionTime(1.0), 1.0,
                1e-12);
}

TEST(Tradeoff, OptimalTrackingBeatsAnyFixedSetting)
{
    // Per-sample optimal selection can never lose to holding a single
    // setting, at the same budget feasibility.
    const MeasuredGrid &grid = test::phasedGrid();
    Chain chain(grid);
    const PolicyOutcome outcome =
        chain.tradeoff.optimalTracking(kUnboundedBudget);
    for (std::size_t k = 0; k < grid.settingCount(); ++k)
        ASSERT_LE(outcome.time, grid.totalTime(k) + 1e-12);
}

/** Property (Fig. 10): execution time non-increasing in the budget. */
class BudgetSweepProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(BudgetSweepProperty, TimeNonIncreasingInBudget)
{
    const MeasuredGrid &grid =
        GetParam() == 0 ? test::phasedGrid() : test::steadyGrid();
    Chain chain(grid);
    Seconds prev = 1e18;
    for (const double budget :
         {1.0, 1.05, 1.1, 1.2, 1.3, 1.45, 1.6, 2.0}) {
        const Seconds time = chain.tradeoff.optimalTracking(budget).time;
        ASSERT_LE(time, prev + 1e-12);
        prev = time;
    }
}

INSTANTIATE_TEST_SUITE_P(Grids, BudgetSweepProperty,
                         ::testing::Values(0, 1));

} // namespace
} // namespace mcdvfs
