/**
 * @file
 * Unit and property tests for performance clusters (§VI-A).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

#include <algorithm>

#include "core/performance_clusters.hh"
#include "test_grid.hh"

namespace mcdvfs
{
namespace
{

struct Chain
{
    InefficiencyAnalysis analysis;
    OptimalSettingsFinder finder;
    ClusterFinder clusters;

    explicit Chain(const MeasuredGrid &grid)
        : analysis(grid), finder(analysis), clusters(finder)
    {
    }
};

TEST(Clusters, ContainsItsOptimum)
{
    Chain chain(test::phasedGrid());
    for (std::size_t s = 0; s < test::phasedGrid().sampleCount();
         ++s) {
        const PerformanceCluster cluster =
            chain.clusters.clusterForSample(s, 1.3, 0.03);
        ASSERT_TRUE(cluster.contains(cluster.optimal.settingIndex));
        ASSERT_FALSE(cluster.settings.empty());
    }
}

TEST(Clusters, MembersAreFeasibleAndNearOptimal)
{
    const MeasuredGrid &grid = test::phasedGrid();
    Chain chain(grid);
    const double budget = 1.3;
    const double threshold = 0.05;
    for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
        const PerformanceCluster cluster =
            chain.clusters.clusterForSample(s, budget, threshold);
        for (const std::size_t k : cluster.settings) {
            ASSERT_LE(chain.analysis.sampleInefficiency(s, k),
                      budget + 1e-12);
            ASSERT_GE(chain.analysis.sampleSpeedup(s, k),
                      cluster.optimal.speedup * (1.0 - threshold) -
                          1e-12);
        }
    }
}

TEST(Clusters, GrowWithThreshold)
{
    Chain chain(test::phasedGrid());
    for (std::size_t s = 0; s < test::phasedGrid().sampleCount();
         s += 2) {
        const auto narrow =
            chain.clusters.clusterForSample(s, 1.3, 0.01);
        const auto wide =
            chain.clusters.clusterForSample(s, 1.3, 0.05);
        ASSERT_GE(wide.settings.size(), narrow.settings.size());
        for (const std::size_t k : narrow.settings) {
            ASSERT_TRUE(std::find(wide.settings.begin(),
                                  wide.settings.end(),
                                  k) != wide.settings.end());
        }
    }
}

TEST(Clusters, NegativeThresholdThrows)
{
    Chain chain(test::phasedGrid());
    EXPECT_THROW(chain.clusters.clusterForSample(0, 1.3, -0.01),
                 FatalError);
}

TEST(Clusters, ZeroThresholdStillHasNoiseWindowMembers)
{
    // With threshold 0 the cluster reduces to settings matching the
    // optimal speedup exactly — at least the optimum itself.
    Chain chain(test::phasedGrid());
    const PerformanceCluster cluster =
        chain.clusters.clusterForSample(0, 1.3, 0.0);
    EXPECT_GE(cluster.settings.size(), 1u);
}

TEST(Clusters, PerSampleVectorCoversRun)
{
    const MeasuredGrid &grid = test::phasedGrid();
    Chain chain(grid);
    const auto all = chain.clusters.clusters(1.3, 0.03);
    ASSERT_EQ(all.size(), grid.sampleCount());
}

TEST(Clusters, CpuBoundSampleSpansMemoryFrequencies)
{
    // §VI-A (milc): for CPU-intensive samples a cluster covers a wide
    // range of memory settings at a given CPU frequency.  Sample 0 of
    // the fixture is a cpu phase.
    const MeasuredGrid &grid = test::phasedGrid();
    Chain chain(grid);
    const PerformanceCluster cluster =
        chain.clusters.clusterForSample(0, 1.3, 0.05);
    Hertz mem_lo = megaHertz(800);
    Hertz mem_hi = megaHertz(200);
    for (const std::size_t k : cluster.settings) {
        mem_lo = std::min(mem_lo, grid.space().at(k).mem);
        mem_hi = std::max(mem_hi, grid.space().at(k).mem);
    }
    EXPECT_GE(mem_hi - mem_lo, megaHertz(100) - 1.0);
}

/** Property: cluster membership is monotone in the budget too. */
class ClusterBudgetProperty : public ::testing::TestWithParam<double>
{
};

TEST_P(ClusterBudgetProperty, OptimalSpeedupNonDecreasingInBudget)
{
    Chain chain(test::phasedGrid());
    const double threshold = GetParam();
    for (std::size_t s = 0; s < test::phasedGrid().sampleCount();
         s += 3) {
        double prev = 0.0;
        for (const double budget : {1.0, 1.2, 1.4, 1.8}) {
            const PerformanceCluster cluster =
                chain.clusters.clusterForSample(s, budget, threshold);
            ASSERT_GE(cluster.optimal.speedup, prev - 1e-12);
            prev = cluster.optimal.speedup;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ClusterBudgetProperty,
                         ::testing::Values(0.01, 0.03, 0.05));

} // namespace
} // namespace mcdvfs
