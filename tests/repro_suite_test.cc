/**
 * @file
 * Unit tests for the memoized experiment suite and the analysis
 * bundle.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

#include "repro/analyses.hh"
#include "repro/suite.hh"

namespace mcdvfs
{
namespace
{

SystemConfig
fastConfig()
{
    SystemConfig config;
    config.sampler.simInstructionsPerSample = 10'000;
    config.sampler.warmupInstructions = 50'000;
    return config;
}

TEST(ReproSuite, BenchmarkNamesInPaperOrder)
{
    const auto &names = ReproSuite::benchmarkNames();
    ASSERT_EQ(names.size(), 6u);
    EXPECT_EQ(names.front(), "bzip2");
    EXPECT_EQ(names.back(), "milc");
}

TEST(ReproSuite, GridsAreMemoized)
{
    ReproSuite suite(fastConfig());
    const MeasuredGrid &first = suite.grid("gobmk");
    const MeasuredGrid &second = suite.grid("gobmk");
    EXPECT_EQ(&first, &second);
}

TEST(ReproSuite, GridMatchesWorkloadShape)
{
    ReproSuite suite(fastConfig());
    const MeasuredGrid &grid = suite.grid("gobmk");
    EXPECT_EQ(grid.sampleCount(), 50u);
    EXPECT_EQ(grid.settingCount(), 70u);
    EXPECT_EQ(grid.workload(), "gobmk");
}

TEST(ReproSuite, UnknownWorkloadThrows)
{
    ReproSuite suite(fastConfig());
    EXPECT_THROW(suite.grid("quake"), FatalError);
}

TEST(GridAnalyses, ChainIsConsistent)
{
    ReproSuite suite(fastConfig());
    const MeasuredGrid &grid = suite.grid("bzip2");
    GridAnalyses a(grid);
    EXPECT_EQ(&a.analysis.grid(), &grid);
    EXPECT_EQ(&a.finder.analysis(), &a.analysis);
    EXPECT_EQ(&a.clusters.finder(), &a.finder);
    // The chain produces sane end-to-end numbers.
    const PolicyOutcome outcome = a.tradeoff.optimalTracking(1.3);
    EXPECT_GT(outcome.time, 0.0);
    EXPECT_LE(outcome.achievedInefficiency, 1.3 + 1e-9);
}

} // namespace
} // namespace mcdvfs
