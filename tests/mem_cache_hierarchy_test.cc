/**
 * @file
 * Unit tests for the two-level cache hierarchy.
 */

#include <gtest/gtest.h>

#include "mem/cache_hierarchy.hh"

namespace mcdvfs
{
namespace
{

HierarchyConfig
tinyConfig()
{
    HierarchyConfig config;
    config.l1.name = "l1";
    config.l1.sizeBytes = 512;
    config.l1.associativity = 2;
    config.l1.lineBytes = 64;
    config.l2.name = "l2";
    config.l2.sizeBytes = 2048;
    config.l2.associativity = 2;
    config.l2.lineBytes = 64;
    return config;
}

TEST(HierarchyConfig, PaperDefaultMatchesSection3)
{
    const HierarchyConfig config = HierarchyConfig::paperDefault();
    EXPECT_EQ(config.l1.sizeBytes, 64u * kKiB);
    EXPECT_EQ(config.l1.latencyCycles, 2u);
    EXPECT_EQ(config.l2.sizeBytes, 2u * kMiB);
    EXPECT_EQ(config.l2.latencyCycles, 12u);
}

TEST(CacheHierarchy, FirstTouchGoesToDram)
{
    CacheHierarchy hierarchy(tinyConfig());
    const HierarchyOutcome outcome = hierarchy.access(0x10000, false);
    EXPECT_EQ(outcome.level, ServiceLevel::Dram);
    ASSERT_EQ(outcome.dramCount, 1u);
    EXPECT_EQ(outcome.dram[0].addr, 0x10000u);
    EXPECT_FALSE(outcome.dram[0].isWrite);
}

TEST(CacheHierarchy, SecondTouchHitsL1)
{
    CacheHierarchy hierarchy(tinyConfig());
    hierarchy.access(0x10000, false);
    const HierarchyOutcome outcome = hierarchy.access(0x10000, false);
    EXPECT_EQ(outcome.level, ServiceLevel::L1);
    EXPECT_EQ(outcome.dramCount, 0u);
}

TEST(CacheHierarchy, L1VictimServedByL2)
{
    CacheHierarchy hierarchy(tinyConfig());
    // L1: 512B/2-way/64B = 4 sets; lines 4 sets apart conflict.
    const std::uint64_t stride = 4 * 64;
    hierarchy.access(0 * stride, false);
    hierarchy.access(1 * stride, false);
    hierarchy.access(2 * stride, false);  // evicts line 0 from L1
    const HierarchyOutcome outcome = hierarchy.access(0, false);
    EXPECT_EQ(outcome.level, ServiceLevel::L2);
    EXPECT_EQ(outcome.dramCount, 0u);
}

TEST(CacheHierarchy, DirtyL2EvictionReachesDram)
{
    CacheHierarchy hierarchy(tinyConfig());
    // Write lines that conflict in both L1 and L2 until a dirty line
    // falls out of L2.  L2: 2048/2/64 = 16 sets; stride of 16 lines.
    const std::uint64_t stride = 16 * 64;
    bool saw_dram_write = false;
    for (int i = 0; i < 8 && !saw_dram_write; ++i) {
        const HierarchyOutcome outcome =
            hierarchy.access(i * stride, true);
        for (std::uint8_t d = 0; d < outcome.dramCount; ++d)
            saw_dram_write |= outcome.dram[d].isWrite;
    }
    EXPECT_TRUE(saw_dram_write);
}

TEST(CacheHierarchy, ResetRestoresColdState)
{
    CacheHierarchy hierarchy(tinyConfig());
    hierarchy.access(0x4000, false);
    hierarchy.reset();
    EXPECT_EQ(hierarchy.access(0x4000, false).level,
              ServiceLevel::Dram);
    EXPECT_EQ(hierarchy.l1().stats().accesses(), 1u);
}

TEST(CacheHierarchy, ClearStatsKeepsWarmContents)
{
    CacheHierarchy hierarchy(tinyConfig());
    hierarchy.access(0x4000, false);
    hierarchy.clearStats();
    EXPECT_EQ(hierarchy.l1().stats().accesses(), 0u);
    EXPECT_EQ(hierarchy.access(0x4000, false).level, ServiceLevel::L1);
}

TEST(CacheHierarchy, StatsAccumulatePerLevel)
{
    CacheHierarchy hierarchy(tinyConfig());
    hierarchy.access(0x0, false);
    hierarchy.access(0x0, false);
    EXPECT_EQ(hierarchy.l1().stats().reads, 2u);
    EXPECT_EQ(hierarchy.l1().stats().readMisses, 1u);
    // L2 consulted only on the L1 miss.
    EXPECT_EQ(hierarchy.l2().stats().accesses(), 1u);
}

} // namespace
} // namespace mcdvfs
