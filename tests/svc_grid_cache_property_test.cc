/**
 * @file
 * Property tests for GridCache and the service's use of it.  The
 * invariants, checked over seeded random operation streams and under
 * concurrent traffic:
 *
 *   hits + misses == lookups issued
 *   entries       <= configured capacity (per-shard capacities sum
 *                    exactly to the total; no rounding overrun)
 *   evictions     monotone non-decreasing
 *   distinct-key inserts - evictions == resident entries
 */

#include <gtest/gtest.h>

#include <random>
#include <thread>
#include <vector>

#include "svc/characterization_service.hh"
#include "svc/grid_cache.hh"
#include "test_grid.hh"

namespace mcdvfs
{
namespace
{

std::shared_ptr<const MeasuredGrid>
dummyGrid()
{
    static const auto grid = std::make_shared<const MeasuredGrid>(
        "dummy", SettingsSpace::coarse(), 4, 10'000'000);
    return grid;
}

svc::GridKey
keyOf(std::uint64_t id)
{
    return svc::GridKey{id, 1, 1};
}

/** Assert the cross-operation invariants against a running tally. */
void
checkInvariants(const svc::GridCache &cache, std::uint64_t lookups,
                std::uint64_t last_evictions)
{
    const svc::GridCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.hits + stats.misses, lookups);
    EXPECT_LE(stats.entries, cache.capacity());
    EXPECT_GE(stats.evictions, last_evictions);
}

TEST(GridCacheProperty, RandomOpsKeepInvariants)
{
    // Deliberately include capacities that do not divide evenly by
    // the shard count: the ceil-rounded per-shard sizing this test
    // originally exposed let the cache exceed its configured total.
    const std::size_t combos[][2] = {
        {1, 1}, {1, 8}, {2, 2}, {5, 4}, {7, 3}, {8, 8}, {13, 8},
    };
    for (const auto &combo : combos) {
        const std::size_t capacity = combo[0], shards = combo[1];
        svc::GridCache cache(capacity, shards);
        std::mt19937_64 rng(99 + capacity * 31 + shards);
        std::uniform_int_distribution<std::uint64_t> pick_key(1, 12);
        std::uniform_int_distribution<int> pick_op(0, 9);

        std::uint64_t lookups = 0;
        std::uint64_t last_evictions = 0;
        for (int step = 0; step < 600; ++step) {
            const std::uint64_t id = pick_key(rng);
            const int op = pick_op(rng);
            if (op < 5) {
                cache.find(keyOf(id));
                ++lookups;
            } else if (op < 9) {
                cache.insert(keyOf(id), dummyGrid());
            } else if (step % 97 == 0) {
                cache.clear();
            }
            checkInvariants(cache, lookups, last_evictions);
            last_evictions = cache.stats().evictions;
        }
    }
}

TEST(GridCacheProperty, DistinctInsertsBalanceEvictionsAndResidency)
{
    for (const std::size_t shards : {1u, 3u, 4u, 8u}) {
        const std::size_t capacity = 5;
        svc::GridCache cache(capacity, shards);
        // Every key distinct: each insert adds exactly one entry or
        // (once its shard is full) trades one for an eviction.
        const std::size_t inserted = 40;
        for (std::size_t id = 1; id <= inserted; ++id)
            cache.insert(keyOf(id), dummyGrid());

        const svc::GridCache::Stats stats = cache.stats();
        EXPECT_LE(stats.entries, capacity) << "shards " << shards;
        EXPECT_EQ(inserted - stats.evictions, stats.entries)
            << "shards " << shards;
    }
}

TEST(GridCacheProperty, ReinsertingResidentKeysNeverGrows)
{
    svc::GridCache cache(3, /*shards=*/2);
    for (int round = 0; round < 10; ++round) {
        for (std::uint64_t id = 1; id <= 3; ++id)
            cache.insert(keyOf(id), dummyGrid());
    }
    const svc::GridCache::Stats stats = cache.stats();
    EXPECT_LE(stats.entries, 3u);
    // Refreshing a resident key must not evict anything by itself.
    const std::uint64_t evictions_before = stats.evictions;
    cache.insert(keyOf(1), dummyGrid());
    EXPECT_EQ(cache.stats().evictions, evictions_before);
}

TEST(GridCacheProperty, ConcurrentTrafficKeepsAccountingExact)
{
    svc::GridCache cache(5, /*shards=*/4);
    constexpr std::size_t kThreads = 4;
    constexpr std::size_t kOpsPerThread = 800;

    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    std::vector<std::uint64_t> lookups(kThreads, 0);
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&cache, &lookups, t] {
            std::mt19937_64 rng(7 + t);  // deterministic per thread
            std::uniform_int_distribution<std::uint64_t> pick_key(1, 9);
            for (std::size_t op = 0; op < kOpsPerThread; ++op) {
                const std::uint64_t id = pick_key(rng);
                if (op % 2 == 0) {
                    cache.find(keyOf(id));
                    ++lookups[t];
                } else {
                    cache.insert(keyOf(id), dummyGrid());
                }
            }
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    std::uint64_t total_lookups = 0;
    for (const std::uint64_t count : lookups)
        total_lookups += count;
    const svc::GridCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.hits + stats.misses, total_lookups);
    EXPECT_LE(stats.entries, cache.capacity());
}

TEST(GridCacheProperty, ConcurrentSubmitBatchKeepsServiceAccounting)
{
    // N client threads push identical batches (two workloads, two
    // budgets each) through one service.  submitBatch groups the four
    // requests into two grid lookups, so the cache sees exactly
    // (threads * rounds * 2) lookups; everything beyond the first
    // build of each workload must be a hit or a coalesced wait, and
    // the cache never exceeds its capacity.
    constexpr std::size_t kThreads = 4;
    constexpr std::size_t kRounds = 3;
    svc::CharacterizationService service(test::fastSystemConfig(),
                                         svc::ServiceOptions{2, 4, 4});

    std::vector<svc::TuningRequest> batch;
    for (const double budget : {1.1, 1.5}) {
        batch.push_back(svc::TuningRequest{test::steadyWorkload(),
                                           SettingsSpace::coarse(),
                                           budget, 0.03});
        batch.push_back(svc::TuningRequest{test::phasedWorkload(),
                                           SettingsSpace::coarse(),
                                           budget, 0.03});
    }

    std::vector<std::thread> clients;
    clients.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        clients.emplace_back([&service, &batch] {
            for (std::size_t round = 0; round < kRounds; ++round) {
                const std::vector<svc::TuningResult> results =
                    service.submitBatch(batch);
                ASSERT_EQ(results.size(), batch.size());
                for (std::size_t i = 0; i < results.size(); ++i) {
                    ASSERT_NE(results[i].grid, nullptr);
                    EXPECT_EQ(results[i].budget, batch[i].budget);
                    EXPECT_EQ(results[i].grid->sampleCount(),
                              batch[i].workload.sampleCount());
                }
            }
        });
    }
    for (std::thread &client : clients)
        client.join();

    const svc::GridCache::Stats stats = service.cacheStats();
    EXPECT_EQ(stats.hits + stats.misses, kThreads * kRounds * 2);
    EXPECT_LE(stats.entries, 4u);
    // Two workloads were ever built; with coalescing the number of
    // misses is at most the number of builds that actually ran, and
    // at least one per distinct workload.
    EXPECT_GE(stats.misses, 2u);
    EXPECT_GE(stats.hits, 1u);
}

} // namespace
} // namespace mcdvfs
