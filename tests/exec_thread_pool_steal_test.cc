/**
 * @file
 * Work-stealing stress tests for ThreadPool::parallelFor (ctest label
 * "stress"): skewed chunk costs, exactly-once execution under heavy
 * stealing, nested loops stealing from each other, exception delivery
 * from stolen chunks, and the exec.steal.* counters.  Sizes are modest
 * enough for a single-core CI machine; all randomness is seeded.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/thread_pool.hh"
#include "obs/metrics.hh"

namespace mcdvfs
{
namespace
{

std::uint64_t
counterValue(const char *name)
{
    const obs::MetricsSnapshot snapshot =
        obs::MetricsRegistry::global().snapshot();
    for (const auto &[key, value] : snapshot.counters) {
        if (key == name)
            return value;
    }
    return 0;
}

TEST(ThreadPoolSteal, SkewedChunkCostsRunEveryIndexOnce)
{
    // One strip starts with a pathologically slow chunk; the other
    // participants must drain their strips and then steal the slow
    // strip's parked remainder instead of idling.  Every index runs
    // exactly once no matter who ends up owning it.
    exec::ThreadPool pool(4);
    constexpr std::size_t kRange = 256;
    std::vector<std::atomic<int>> visits(kRange);
    for (auto &v : visits)
        v.store(0);

    pool.parallelFor(
        0, kRange,
        [&](std::size_t i) {
            if (i == 0)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(20));
            visits[i].fetch_add(1, std::memory_order_relaxed);
        },
        /*grain=*/2);

    for (std::size_t i = 0; i < kRange; ++i)
        EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolSteal, RandomCostsExactlyOnceAcrossManyLoops)
{
    // Seeded random per-index busy-work over repeated loops: stealing
    // must never duplicate or drop an index regardless of how the
    // strips get carved up.
    exec::ThreadPool pool(3);
    constexpr std::size_t kRange = 500;
    constexpr int kLoops = 20;
    std::mt19937_64 rng(99);
    std::vector<std::uint32_t> cost(kRange);
    for (auto &c : cost)
        c = static_cast<std::uint32_t>(rng() % 64);

    for (int loop = 0; loop < kLoops; ++loop) {
        std::vector<std::atomic<int>> visits(kRange);
        for (auto &v : visits)
            v.store(0);
        std::atomic<std::uint64_t> sink{0};
        pool.parallelFor(
            0, kRange,
            [&](std::size_t i) {
                std::uint64_t acc = i;
                for (std::uint32_t k = 0; k < cost[i] * 100; ++k)
                    acc = acc * 6364136223846793005ull + 1;
                sink.fetch_add(acc, std::memory_order_relaxed);
                visits[i].fetch_add(1, std::memory_order_relaxed);
            },
            /*grain=*/3);
        for (std::size_t i = 0; i < kRange; ++i)
            ASSERT_EQ(visits[i].load(), 1)
                << "loop " << loop << " index " << i;
    }
}

TEST(ThreadPoolSteal, NestedLoopsStealWithoutDeadlock)
{
    // Outer chunks each run an inner parallelFor on the same pool;
    // inner strips are stolen by workers that finished other outer
    // chunks.  The count must come out exact and the test must not
    // hang (caller participation keeps nested loops live).
    exec::ThreadPool pool(4);
    constexpr std::size_t kOuter = 24;
    constexpr std::size_t kInner = 96;
    std::atomic<std::uint64_t> count{0};
    pool.parallelFor(0, kOuter, [&](std::size_t) {
        pool.parallelFor(
            0, kInner,
            [&](std::size_t) {
                count.fetch_add(1, std::memory_order_relaxed);
            },
            /*grain=*/5);
    });
    EXPECT_EQ(count.load(), kOuter * kInner);
}

TEST(ThreadPoolSteal, ExceptionFromStolenChunkPropagates)
{
    // The throwing index lives at the back of the range, where it is
    // likely to be stolen; whoever runs it, the documented contract
    // holds: the first error is rethrown after the range completes.
    exec::ThreadPool pool(4);
    constexpr std::size_t kRange = 300;
    std::atomic<std::size_t> visited{0};
    EXPECT_THROW(
        pool.parallelFor(
            0, kRange,
            [&](std::size_t i) {
                if (i == 0)
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(10));
                ++visited;
                if (i == kRange - 1)
                    throw std::runtime_error("stolen boom");
            },
            /*grain=*/2),
        std::runtime_error);
    EXPECT_EQ(visited.load(), kRange);
}

TEST(ThreadPoolSteal, ConcurrentLoopsFromClientThreads)
{
    // Several client threads each run their own parallelFor on one
    // shared pool; strips of different loops coexist and every loop's
    // sum must match the serial result.
    exec::ThreadPool pool(3);
    constexpr std::size_t kClients = 4;
    constexpr std::size_t kRange = 400;
    std::uint64_t expected = 0;
    for (std::size_t i = 0; i < kRange; ++i)
        expected += i;

    std::vector<std::thread> clients;
    std::vector<std::uint64_t> sums(kClients, 0);
    for (std::size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&pool, &sums, c] {
            std::atomic<std::uint64_t> sum{0};
            pool.parallelFor(
                0, kRange,
                [&sum](std::size_t i) {
                    sum.fetch_add(i, std::memory_order_relaxed);
                },
                /*grain=*/7);
            sums[c] = sum.load();
        });
    }
    for (std::thread &client : clients)
        client.join();
    for (std::size_t c = 0; c < kClients; ++c)
        EXPECT_EQ(sums[c], expected) << "client " << c;
}

TEST(ThreadPoolSteal, StealCountersAdvance)
{
    // With helpers in play every participant sweeps the other strips
    // at least once before exiting, so the attempts counter must
    // advance; chunks_stolen never exceeds the chunks of the loop.
    exec::ThreadPool pool(2);
    const std::uint64_t attempts_before =
        counterValue("exec.steal.attempts");
    const std::uint64_t stolen_before =
        counterValue("exec.steal.chunks_stolen");
    pool.parallelFor(
        0, 128,
        [](std::size_t i) {
            if (i < 4)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(2));
        },
        /*grain=*/1);
    EXPECT_GT(counterValue("exec.steal.attempts"), attempts_before);
    EXPECT_LE(counterValue("exec.steal.chunks_stolen") - stolen_before,
              128u);
}

TEST(ThreadPoolSteal, SerialPoolStillCompletes)
{
    // Zero workers: one strip, no stealing, plain serial execution.
    exec::ThreadPool pool(0);
    std::uint64_t sum = 0;
    pool.parallelFor(0, 100, [&](std::size_t i) { sum += i; });
    EXPECT_EQ(sum, 4950u);
    // A worker-less loop must not count steal attempts.
}

} // namespace
} // namespace mcdvfs
