/**
 * @file
 * Unit tests for the policy-comparison harness.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/comparison.hh"
#include "test_grid.hh"

namespace mcdvfs
{
namespace
{

TEST(BaselineComparison, ProducesAllPolicies)
{
    BaselineComparison comparison(test::phasedGrid());
    const auto rows = comparison.compare(1.3, 0.03, 0.10);
    ASSERT_EQ(rows.size(), 6u);
    auto has = [&rows](const std::string &name) {
        return std::any_of(rows.begin(), rows.end(),
                           [&name](const PolicyComparisonRow &row) {
                               return row.policy == name;
                           });
    };
    EXPECT_TRUE(has("inefficiency-cluster"));
    EXPECT_TRUE(has("inefficiency-optimal"));
    EXPECT_TRUE(has("coscale-from-max"));
    EXPECT_TRUE(has("coscale-warm-start"));
    EXPECT_TRUE(has("rate-limiter"));
    EXPECT_TRUE(has("performance-governor"));
}

TEST(BaselineComparison, AllOutcomesPositive)
{
    BaselineComparison comparison(test::phasedGrid());
    for (const auto &row : comparison.compare(1.3, 0.03, 0.10)) {
        EXPECT_GT(row.time, 0.0) << row.policy;
        EXPECT_GT(row.energy, 0.0) << row.policy;
        EXPECT_GE(row.achievedInefficiency, 1.0) << row.policy;
        EXPECT_FALSE(row.note.empty()) << row.policy;
    }
}

TEST(BaselineComparison, InefficiencyPoliciesHonorBudget)
{
    BaselineComparison comparison(test::phasedGrid());
    const double budget = 1.3;
    for (const auto &row : comparison.compare(budget, 0.03, 0.10)) {
        if (row.policy.rfind("inefficiency", 0) == 0)
            EXPECT_LE(row.achievedInefficiency, budget + 1e-9)
                << row.policy;
    }
}

TEST(BaselineComparison, PerformanceGovernorIsFastest)
{
    BaselineComparison comparison(test::phasedGrid());
    const auto rows = comparison.compare(1.3, 0.03, 0.10);
    double perf_time = 0.0;
    for (const auto &row : rows) {
        if (row.policy == "performance-governor")
            perf_time = row.time;
    }
    for (const auto &row : rows)
        EXPECT_GE(row.time, perf_time - 1e-12) << row.policy;
}

} // namespace
} // namespace mcdvfs
