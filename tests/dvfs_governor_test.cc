/**
 * @file
 * Unit tests for the simple cpufreq/devfreq-style governors.
 */

#include <gtest/gtest.h>

#include "dvfs/governor.hh"

namespace mcdvfs
{
namespace
{

SampleObservation
obs(std::size_t index, double busy, double bw)
{
    SampleObservation observation;
    observation.sampleIndex = index;
    observation.cpuBusyFrac = busy;
    observation.memBwUtil = bw;
    return observation;
}

TEST(UserspaceGovernor, HoldsProgrammedSetting)
{
    const FrequencySetting pinned{megaHertz(300), megaHertz(400)};
    UserspaceGovernor governor(pinned);
    EXPECT_TRUE(governor.decide(nullptr) == pinned);
    const SampleObservation last = obs(0, 1.0, 1.0);
    EXPECT_TRUE(governor.decide(&last) == pinned);
}

TEST(UserspaceGovernor, Reprogrammable)
{
    UserspaceGovernor governor({megaHertz(300), megaHertz(400)});
    const FrequencySetting next{megaHertz(800), megaHertz(600)};
    governor.set(next);
    EXPECT_TRUE(governor.decide(nullptr) == next);
}

TEST(PerformanceGovernor, AlwaysMax)
{
    const SettingsSpace space = SettingsSpace::coarse();
    PerformanceGovernor governor(space);
    EXPECT_TRUE(governor.decide(nullptr) == space.maxSetting());
}

TEST(PowersaveGovernor, AlwaysMin)
{
    const SettingsSpace space = SettingsSpace::coarse();
    PowersaveGovernor governor(space);
    EXPECT_TRUE(governor.decide(nullptr) == space.minSetting());
}

TEST(OndemandGovernor, StartsAtMax)
{
    const SettingsSpace space = SettingsSpace::coarse();
    OndemandGovernor governor(space);
    EXPECT_TRUE(governor.decide(nullptr) == space.maxSetting());
}

TEST(OndemandGovernor, StepsDownWhenIdle)
{
    const SettingsSpace space = SettingsSpace::coarse();
    OndemandGovernor governor(space);
    governor.decide(nullptr);
    const SampleObservation idle = obs(0, 0.1, 0.1);
    const FrequencySetting next = governor.decide(&idle);
    EXPECT_LT(next.cpu, space.maxSetting().cpu);
    EXPECT_LT(next.mem, space.maxSetting().mem);
}

TEST(OndemandGovernor, JumpsToMaxCpuWhenBusy)
{
    const SettingsSpace space = SettingsSpace::coarse();
    OndemandGovernor governor(space);
    governor.decide(nullptr);
    // Drain down first.
    for (int i = 0; i < 20; ++i) {
        const SampleObservation idle = obs(i, 0.1, 0.1);
        governor.decide(&idle);
    }
    const SampleObservation busy = obs(21, 0.95, 0.2);
    EXPECT_DOUBLE_EQ(governor.decide(&busy).cpu,
                     space.maxSetting().cpu);
}

TEST(OndemandGovernor, MemoryStepsUpGradually)
{
    const SettingsSpace space = SettingsSpace::coarse();
    OndemandGovernor governor(space);
    governor.decide(nullptr);
    for (int i = 0; i < 20; ++i) {
        const SampleObservation idle = obs(i, 0.1, 0.1);
        governor.decide(&idle);
    }
    const SampleObservation bw_bound = obs(21, 0.3, 0.95);
    const Hertz before = governor.decide(&bw_bound).mem;
    const SampleObservation again = obs(22, 0.3, 0.95);
    const Hertz after = governor.decide(&again).mem;
    EXPECT_GT(after, before * 0.999);
    EXPECT_LE(after - before, megaHertz(100) + 1.0);
}

TEST(OndemandGovernor, NeverLeavesLadder)
{
    const SettingsSpace space = SettingsSpace::coarse();
    OndemandGovernor governor(space);
    governor.decide(nullptr);
    for (int i = 0; i < 50; ++i) {
        const SampleObservation idle = obs(i, 0.0, 0.0);
        const FrequencySetting setting = governor.decide(&idle);
        EXPECT_GE(setting.cpu, space.minSetting().cpu);
        EXPECT_GE(setting.mem, space.minSetting().mem);
    }
}

} // namespace
} // namespace mcdvfs
