/**
 * @file
 * Unit tests for offline stable-region profiles (§VII).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

#include "runtime/offline_profile.hh"
#include "test_grid.hh"

namespace mcdvfs
{
namespace
{

OfflineProfile
handProfile()
{
    OfflineProfile profile("gobmk");
    profile.addRegion(
        {0, 9, FrequencySetting{megaHertz(900), megaHertz(500)}});
    profile.addRegion(
        {10, 24, FrequencySetting{megaHertz(700), megaHertz(800)}});
    profile.addRegion(
        {25, 30, FrequencySetting{megaHertz(1000), megaHertz(800)}});
    return profile;
}

TEST(OfflineProfile, RegionLookup)
{
    const OfflineProfile profile = handProfile();
    ASSERT_NE(profile.regionAt(0), nullptr);
    EXPECT_EQ(profile.regionAt(0)->first, 0u);
    ASSERT_NE(profile.regionAt(17), nullptr);
    EXPECT_DOUBLE_EQ(profile.regionAt(17)->setting.cpu,
                     megaHertz(700));
    EXPECT_EQ(profile.regionAt(31), nullptr);
}

TEST(OfflineProfile, SerializeParseRoundTrip)
{
    const OfflineProfile original = handProfile();
    const OfflineProfile parsed =
        OfflineProfile::parse(original.serialize());
    EXPECT_EQ(parsed.workload(), "gobmk");
    ASSERT_EQ(parsed.regions().size(), original.regions().size());
    for (std::size_t r = 0; r < parsed.regions().size(); ++r) {
        EXPECT_EQ(parsed.regions()[r].first,
                  original.regions()[r].first);
        EXPECT_EQ(parsed.regions()[r].last,
                  original.regions()[r].last);
        EXPECT_DOUBLE_EQ(parsed.regions()[r].setting.cpu,
                         original.regions()[r].setting.cpu);
        EXPECT_DOUBLE_EQ(parsed.regions()[r].setting.mem,
                         original.regions()[r].setting.mem);
    }
}

TEST(OfflineProfile, ParseRejectsMalformedInput)
{
    EXPECT_THROW(OfflineProfile::parse(""), FatalError);
    EXPECT_THROW(OfflineProfile::parse("bogus gobmk"), FatalError);
    EXPECT_THROW(
        OfflineProfile::parse("workload w\nregion 0"), FatalError);
    EXPECT_THROW(
        OfflineProfile::parse("workload w\nelephant 0 1 2 3"),
        FatalError);
}

TEST(OfflineProfile, RegionsMustTile)
{
    OfflineProfile profile("x");
    EXPECT_THROW(profile.addRegion({5, 9, {}}), FatalError);
    profile.addRegion({0, 4, {}});
    EXPECT_THROW(profile.addRegion({6, 9, {}}), FatalError);
    EXPECT_THROW(profile.addRegion({4, 9, {}}), FatalError);
    EXPECT_THROW(profile.addRegion({5, 4, {}}), FatalError);
    EXPECT_NO_THROW(profile.addRegion({5, 9, {}}));
}

TEST(OfflineProfile, FromRegionsMatchesAnalysis)
{
    const MeasuredGrid &grid = test::phasedGrid();
    InefficiencyAnalysis analysis(grid);
    OptimalSettingsFinder finder(analysis);
    ClusterFinder clusters(finder);
    StableRegionFinder region_finder(clusters);
    const auto regions = region_finder.find(1.3, 0.03);

    const OfflineProfile profile = OfflineProfile::fromRegions(
        "phased", regions, grid.space());
    ASSERT_EQ(profile.regions().size(), regions.size());
    for (std::size_t r = 0; r < regions.size(); ++r) {
        EXPECT_EQ(profile.regions()[r].first, regions[r].first);
        EXPECT_EQ(profile.regions()[r].last, regions[r].last);
        EXPECT_TRUE(profile.regions()[r].setting ==
                    grid.space().at(regions[r].chosenSettingIndex));
    }
}

} // namespace
} // namespace mcdvfs
