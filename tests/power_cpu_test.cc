/**
 * @file
 * Unit and property tests for the CPU power model (§III-B
 * decomposition: dynamic ∝ V²f, clocked background, leakage ∝ V).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "power/cpu_power.hh"

namespace mcdvfs
{
namespace
{

TEST(CpuPower, PeakPowerMatchesCalibration)
{
    const CpuPowerModel model = CpuPowerModel::paperDefault();
    const CpuPowerBreakdown peak =
        model.power(model.curve().fMax(), 1.0);
    EXPECT_NEAR(peak.dynamic, model.params().peakDynamic, 1e-12);
    EXPECT_NEAR(peak.background, model.params().peakBackground, 1e-12);
    EXPECT_NEAR(peak.leakage, model.params().leakageAtVmax, 1e-12);
}

TEST(CpuPower, DynamicScalesWithActivity)
{
    const CpuPowerModel model = CpuPowerModel::paperDefault();
    const Hertz f = megaHertz(700);
    const auto at_half = model.power(f, 0.5);
    const auto at_full = model.power(f, 1.0);
    EXPECT_NEAR(at_half.dynamic, at_full.dynamic * 0.5, 1e-12);
    // Background and leakage are activity independent.
    EXPECT_DOUBLE_EQ(at_half.background, at_full.background);
    EXPECT_DOUBLE_EQ(at_half.leakage, at_full.leakage);
}

TEST(CpuPower, DynamicFollowsVSquaredF)
{
    const CpuPowerModel model = CpuPowerModel::paperDefault();
    const VoltageCurve &curve = model.curve();
    const Hertz fa = megaHertz(400);
    const Hertz fb = megaHertz(900);
    const double expected_ratio =
        (curve.voltageAt(fb) * curve.voltageAt(fb) * fb) /
        (curve.voltageAt(fa) * curve.voltageAt(fa) * fa);
    const double actual_ratio =
        model.power(fb, 0.8).dynamic / model.power(fa, 0.8).dynamic;
    EXPECT_NEAR(actual_ratio, expected_ratio, 1e-9);
}

TEST(CpuPower, BackgroundScalesLikeDynamic)
{
    // §III-B: "Because background power is clocked, it is scaled in a
    // similar manner to dynamic power."
    const CpuPowerModel model = CpuPowerModel::paperDefault();
    const double bg_ratio = model.power(megaHertz(900), 1.0).background /
                            model.power(megaHertz(300), 1.0).background;
    const double dyn_ratio = model.power(megaHertz(900), 1.0).dynamic /
                             model.power(megaHertz(300), 1.0).dynamic;
    EXPECT_NEAR(bg_ratio, dyn_ratio, 1e-9);
}

TEST(CpuPower, LeakageLinearInVoltage)
{
    const CpuPowerModel model = CpuPowerModel::paperDefault();
    const VoltageCurve &curve = model.curve();
    const double ratio = model.power(megaHertz(1000), 0.0).leakage /
                         model.power(megaHertz(100), 0.0).leakage;
    EXPECT_NEAR(ratio,
                curve.voltageAt(megaHertz(1000)) /
                    curve.voltageAt(megaHertz(100)),
                1e-9);
}

TEST(CpuPower, ActivityClamped)
{
    const CpuPowerModel model = CpuPowerModel::paperDefault();
    EXPECT_DOUBLE_EQ(model.power(megaHertz(500), -1.0).dynamic, 0.0);
    EXPECT_DOUBLE_EQ(model.power(megaHertz(500), 2.0).dynamic,
                     model.power(megaHertz(500), 1.0).dynamic);
}

TEST(CpuPower, EnergySplitsBusyAndStall)
{
    const CpuPowerModel model = CpuPowerModel::paperDefault();
    const Hertz f = megaHertz(800);
    const double act = 0.7;
    const Joules busy_only = model.energy(f, act, 1.0, 0.0);
    const Joules stall_only = model.energy(f, act, 0.0, 1.0);
    // Stalled time burns less dynamic energy than busy time but the
    // same background + leakage.
    EXPECT_LT(stall_only, busy_only);
    const auto p = model.power(f, act);
    EXPECT_GT(stall_only, (p.background + p.leakage) * 1.0 * 0.99);
}

TEST(CpuPower, EnergyAdditivity)
{
    const CpuPowerModel model = CpuPowerModel::paperDefault();
    const Hertz f = megaHertz(600);
    const Joules combined = model.energy(f, 0.6, 2.0, 3.0);
    const Joules split = model.energy(f, 0.6, 2.0, 0.0) +
                         model.energy(f, 0.6, 0.0, 3.0);
    EXPECT_NEAR(combined, split, 1e-12);
}

TEST(CpuPower, Validation)
{
    CpuPowerParams params;
    params.peakDynamic = 0.0;
    EXPECT_THROW(CpuPowerModel(params, VoltageCurve::paperCpu()),
                 FatalError);
    params = CpuPowerParams{};
    params.stallActivity = 1.5;
    EXPECT_THROW(CpuPowerModel(params, VoltageCurve::paperCpu()),
                 FatalError);
}

TEST(CpuPowerDeathTest, NegativeTimePanics)
{
    const CpuPowerModel model = CpuPowerModel::paperDefault();
    EXPECT_DEATH(model.energy(megaHertz(500), 0.5, -1.0, 0.0),
                 "negative execution time");
}

/**
 * Property: the energy-per-work curve of a purely CPU-bound task has
 * an interior minimum — running at either frequency extreme is less
 * efficient (the effect behind inefficiency > 1 at both grid corners).
 */
TEST(CpuPower, EnergyPerWorkHasInteriorMinimum)
{
    const CpuPowerModel model = CpuPowerModel::paperDefault();
    auto energy_per_cycle = [&](double mhz) {
        const Hertz f = megaHertz(mhz);
        return model.energy(f, 0.65, 1.0 / f, 0.0);
    };
    const double at_min = energy_per_cycle(100);
    const double at_max = energy_per_cycle(1000);
    double best = 1e18;
    for (double mhz = 100; mhz <= 1000; mhz += 100)
        best = std::min(best, energy_per_cycle(mhz));
    EXPECT_LT(best, at_min);
    EXPECT_LT(best, at_max);
}

} // namespace
} // namespace mcdvfs
