/**
 * @file
 * SettingMask unit tests: bit operations, word-wise intersection, the
 * set-bit iterator, the branchless cutoff filter, and the capacity
 * contract behind the reference-path fallback.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/setting_mask.hh"

namespace mcdvfs
{
namespace
{

std::vector<std::size_t>
toVector(const SettingMask &mask)
{
    std::vector<std::size_t> out;
    for (const std::size_t k : mask)
        out.push_back(k);
    return out;
}

TEST(SettingMask, StartsEmpty)
{
    SettingMask mask(70);
    EXPECT_EQ(mask.size(), 70u);
    EXPECT_EQ(mask.count(), 0u);
    EXPECT_FALSE(mask.any());
    EXPECT_TRUE(mask.none());
    EXPECT_EQ(mask.firstSet(), SettingMask::kNpos);
}

TEST(SettingMask, SetResetTest)
{
    SettingMask mask(496);
    mask.set(0);
    mask.set(63);
    mask.set(64);
    mask.set(495);
    EXPECT_TRUE(mask.test(0));
    EXPECT_TRUE(mask.test(63));
    EXPECT_TRUE(mask.test(64));
    EXPECT_TRUE(mask.test(495));
    EXPECT_FALSE(mask.test(1));
    EXPECT_FALSE(mask.test(128));
    EXPECT_EQ(mask.count(), 4u);
    EXPECT_EQ(mask.firstSet(), 0u);

    mask.reset(0);
    EXPECT_FALSE(mask.test(0));
    EXPECT_EQ(mask.count(), 3u);
    EXPECT_EQ(mask.firstSet(), 63u);

    mask.clear();
    EXPECT_TRUE(mask.none());
    EXPECT_EQ(mask.size(), 496u);
}

TEST(SettingMask, IteratorWalksSetBitsAscending)
{
    // Bits straddling several word boundaries.
    const std::vector<std::size_t> bits = {3, 62, 63, 64, 130, 255, 495};
    SettingMask mask(496);
    for (const std::size_t k : bits)
        mask.set(k);
    EXPECT_EQ(toVector(mask), bits);
    EXPECT_EQ(toVector(SettingMask(496)), std::vector<std::size_t>{});
}

TEST(SettingMask, AndInplaceIntersects)
{
    SettingMask a(70);
    SettingMask b(70);
    for (const std::size_t k : {1u, 5u, 64u, 69u})
        a.set(k);
    for (const std::size_t k : {5u, 6u, 64u})
        b.set(k);
    a.andInplace(b);
    EXPECT_EQ(toVector(a), (std::vector<std::size_t>{5, 64}));
    EXPECT_TRUE(a.intersects(b));

    SettingMask empty(70);
    a.andInplace(empty);
    EXPECT_TRUE(a.none());
    EXPECT_FALSE(a.intersects(b));
}

TEST(SettingMask, EqualityCoversSizeAndBits)
{
    SettingMask a(70);
    SettingMask b(70);
    EXPECT_EQ(a, b);
    a.set(12);
    EXPECT_NE(a, b);
    b.set(12);
    EXPECT_EQ(a, b);
    // Same bits over a different space are a different mask.
    SettingMask c(71);
    c.set(12);
    EXPECT_NE(a, c);
}

TEST(SettingMask, FilterKeepsSetBitsAtOrAboveCutoff)
{
    SettingMask mask(70);
    std::vector<double> values(70, 0.0);
    for (const std::size_t k : {2u, 10u, 64u, 69u})
        mask.set(k);
    values[2] = 1.0;    // above
    values[10] = 0.5;   // exactly at the cutoff: kept
    values[64] = 0.49;  // below: dropped
    values[69] = 2.0;   // above
    values[3] = 9.0;    // not set: stays out no matter the value

    const SettingMask kept = mask.filterGE(values.data(), 0.5);
    EXPECT_EQ(toVector(kept), (std::vector<std::size_t>{2, 10, 69}));
    EXPECT_EQ(kept.size(), mask.size());
    // The source mask is untouched.
    EXPECT_EQ(mask.count(), 4u);
}

TEST(SettingMask, CapacityContract)
{
    EXPECT_TRUE(SettingMask::supports(0));
    EXPECT_TRUE(SettingMask::supports(496));
    EXPECT_TRUE(SettingMask::supports(SettingMask::kCapacity));
    // The heap tier carries spaces past the inline capacity up to the
    // (generous) hard cap.
    EXPECT_TRUE(SettingMask::supports(SettingMask::kCapacity + 1));
    EXPECT_TRUE(SettingMask::supports(SettingMask::kMaxCapacity));
    EXPECT_FALSE(SettingMask::supports(SettingMask::kMaxCapacity + 1));
    EXPECT_THROW(SettingMask(SettingMask::kMaxCapacity + 1), FatalError);
}

TEST(SettingMask, HeapTierBehavesLikeInlineTier)
{
    // A 3-domain-sized space past the inline capacity: same bit
    // semantics, word count rounded up to whole 256-bit registers.
    SettingMask mask(1500);
    EXPECT_EQ(mask.size(), 1500u);
    EXPECT_EQ(mask.wordCount(), 24u);  // ceil(1500/64)=24, already x4
    EXPECT_TRUE(mask.none());

    const std::vector<std::size_t> bits = {0, 63, 512, 513, 1023, 1499};
    for (const std::size_t k : bits)
        mask.set(k);
    EXPECT_EQ(toVector(mask), bits);
    EXPECT_EQ(mask.count(), bits.size());
    EXPECT_EQ(mask.firstSet(), 0u);
    EXPECT_TRUE(mask.test(512));
    EXPECT_FALSE(mask.test(511));

    SettingMask other(1500);
    other.set(513);
    other.set(1499);
    other.set(700);
    EXPECT_TRUE(mask.intersects(other));
    EXPECT_TRUE(mask.andInplaceAny(other));
    EXPECT_EQ(toVector(mask), (std::vector<std::size_t>{513, 1499}));

    std::vector<double> values(1500, 0.0);
    values[513] = 2.0;
    const SettingMask kept = mask.filterGE(values.data(), 1.0);
    EXPECT_EQ(toVector(kept), std::vector<std::size_t>{513});

    mask.clear();
    EXPECT_TRUE(mask.none());
    EXPECT_EQ(mask.size(), 1500u);
}

TEST(SettingMask, InlineTierKeepsHistoricalWordCount)
{
    // Small spaces must keep the fixed kWords backing so the vector
    // kernels' trip counts (and the golden bit patterns) are unchanged.
    EXPECT_EQ(SettingMask(70).wordCount(), SettingMask::kWords);
    EXPECT_EQ(SettingMask(496).wordCount(), SettingMask::kWords);
    EXPECT_EQ(SettingMask(512).wordCount(), SettingMask::kWords);
    EXPECT_EQ(SettingMask(513).wordCount(), 12u);
}

} // namespace
} // namespace mcdvfs
