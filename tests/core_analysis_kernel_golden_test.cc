/**
 * @file
 * Golden tests pinning the bitset analysis kernel to the scalar
 * reference (core/reference_analysis.hh): every cluster, stable region
 * and step-sensitivity row must match the pre-bitset algorithms
 * exactly — serial and fanned over a thread pool.  Any kernel change
 * that shifts a single bit fails here.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/analysis_sweep.hh"
#include "core/reference_analysis.hh"
#include "exec/thread_pool.hh"
#include "test_grid.hh"

namespace mcdvfs
{
namespace
{

const std::vector<SweepPoint> &
goldenPoints()
{
    static const std::vector<SweepPoint> points = {
        {1.0, 0.0},  {1.0, 0.01}, {1.0, 0.05},
        {1.3, 0.0},  {1.3, 0.01}, {1.3, 0.05},
        {1.6, 0.03}, {2.0, 0.05},
    };
    return points;
}

void
expectSameChoice(const OptimalChoice &got, const OptimalChoice &want)
{
    EXPECT_EQ(got.settingIndex, want.settingIndex);
    EXPECT_TRUE(got.setting == want.setting);
    EXPECT_EQ(got.speedup, want.speedup);            // bit-exact
    EXPECT_EQ(got.inefficiency, want.inefficiency);  // bit-exact
}

void
expectSameClusters(const std::vector<PerformanceCluster> &got,
                   const std::vector<PerformanceCluster> &want)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t s = 0; s < got.size(); ++s) {
        expectSameChoice(got[s].optimal, want[s].optimal);
        EXPECT_EQ(got[s].settings, want[s].settings) << "sample " << s;
    }
}

void
expectSameRegions(const std::vector<StableRegion> &got,
                  const std::vector<StableRegion> &want)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t r = 0; r < got.size(); ++r) {
        EXPECT_EQ(got[r].first, want[r].first);
        EXPECT_EQ(got[r].last, want[r].last);
        EXPECT_EQ(got[r].availableSettings, want[r].availableSettings);
        EXPECT_EQ(got[r].chosenSettingIndex, want[r].chosenSettingIndex);
        EXPECT_TRUE(got[r].chosenSetting == want[r].chosenSetting);
    }
}

TEST(AnalysisKernelGolden, ClustersMatchReference)
{
    const MeasuredGrid &grid = test::phasedGrid();
    InefficiencyAnalysis analysis(grid);
    OptimalSettingsFinder finder(analysis);
    ClusterFinder clusters(finder);
    for (const SweepPoint &p : goldenPoints()) {
        expectSameClusters(
            clusters.clusters(p.budget, p.threshold),
            referenceClusters(finder, p.budget, p.threshold));
    }
}

TEST(AnalysisKernelGolden, RegionsMatchReference)
{
    const MeasuredGrid &grid = test::phasedGrid();
    InefficiencyAnalysis analysis(grid);
    OptimalSettingsFinder finder(analysis);
    ClusterFinder clusters(finder);
    StableRegionFinder regions(clusters);
    for (const SweepPoint &p : goldenPoints()) {
        expectSameRegions(
            regions.find(p.budget, p.threshold),
            referenceStableRegions(
                grid.space(),
                referenceClusters(finder, p.budget, p.threshold)));
    }
}

TEST(AnalysisKernelGolden, PooledRunsMatchSerial)
{
    const MeasuredGrid &grid = test::phasedGrid();
    InefficiencyAnalysis analysis(grid);
    OptimalSettingsFinder finder(analysis);
    ClusterFinder clusters(finder);
    StableRegionFinder regions(clusters);
    exec::ThreadPool pool(4);
    for (const SweepPoint &p : goldenPoints()) {
        expectSameClusters(clusters.clusters(p.budget, p.threshold, &pool),
                           clusters.clusters(p.budget, p.threshold));
        expectSameRegions(regions.find(p.budget, p.threshold, &pool),
                          regions.find(p.budget, p.threshold));
    }
}

TEST(AnalysisKernelGolden, SweepMatchesPointwiseQueries)
{
    const MeasuredGrid &grid = test::steadyGrid();
    InefficiencyAnalysis analysis(grid);
    OptimalSettingsFinder finder(analysis);
    ClusterFinder clusters(finder);
    StableRegionFinder regions(clusters);
    AnalysisSweep sweep(clusters);

    exec::ThreadPool pool(3);
    const std::vector<SweepResult> serial = sweep.run(goldenPoints());
    const std::vector<SweepResult> pooled =
        sweep.run(goldenPoints(), &pool);
    ASSERT_EQ(serial.size(), goldenPoints().size());

    for (std::size_t p = 0; p < serial.size(); ++p) {
        const SweepPoint point = goldenPoints()[p];
        const std::vector<PerformanceCluster> want =
            referenceClusters(finder, point.budget, point.threshold);
        ASSERT_EQ(serial[p].table.sampleCount(), want.size());
        for (std::size_t s = 0; s < want.size(); ++s) {
            const PerformanceCluster got = serial[p].table.materialize(s);
            expectSameChoice(got.optimal, want[s].optimal);
            EXPECT_EQ(got.settings, want[s].settings);
        }
        expectSameRegions(serial[p].regions,
                          referenceStableRegions(grid.space(), want));
        // The pooled sweep is bit-identical to the serial sweep.
        EXPECT_EQ(pooled[p].table.masks, serial[p].table.masks);
        expectSameRegions(pooled[p].regions, serial[p].regions);
    }
}

TEST(AnalysisKernelGolden, CharacterizeSpaceMatchesReference)
{
    const MeasuredGrid &grid = test::phasedGrid();
    exec::ThreadPool pool(4);
    for (const SweepPoint &p :
         {SweepPoint{1.0, 0.01}, SweepPoint{1.3, 0.03},
          SweepPoint{1.6, 0.05}}) {
        const SpaceCharacterization want =
            referenceCharacterizeSpace(grid, p.budget, p.threshold);
        for (exec::ThreadPool *worker : {(exec::ThreadPool *)nullptr,
                                         &pool}) {
            const SpaceCharacterization got =
                StepSensitivity::characterizeSpace(grid, p.budget,
                                                   p.threshold, worker);
            EXPECT_EQ(got.settings, want.settings);
            EXPECT_EQ(got.transitions, want.transitions);
            EXPECT_EQ(got.avgRegionLength, want.avgRegionLength);
            EXPECT_EQ(got.avgClusterSize, want.avgClusterSize);
            EXPECT_EQ(got.optimalTime, want.optimalTime);
        }
    }
}

TEST(AnalysisKernelGolden, SplitKernelMatchesFillSample)
{
    // fillBudget + fillCluster (the sweep's split) must equal the
    // one-shot fillSample for any (budget, threshold).
    const MeasuredGrid &grid = test::steadyGrid();
    InefficiencyAnalysis analysis(grid);
    OptimalSettingsFinder finder(analysis);
    ClusterFinder clusters(finder);
    for (const SweepPoint &p : goldenPoints()) {
        for (std::size_t s = 0; s < grid.sampleCount(); ++s) {
            OptimalChoice whole_choice;
            SettingMask whole_mask;
            clusters.fillSample(s, p.budget, p.threshold, whole_choice,
                                whole_mask);

            OptimalChoice split_choice;
            SettingMask feasible;
            SettingMask split_mask;
            clusters.fillBudget(s, p.budget, split_choice, feasible);
            clusters.fillCluster(s, p.threshold, split_choice, feasible,
                                 split_mask);
            expectSameChoice(split_choice, whole_choice);
            EXPECT_EQ(split_mask, whole_mask);
            EXPECT_TRUE(feasible.test(split_choice.settingIndex));
        }
    }
}

} // namespace
} // namespace mcdvfs
