/**
 * @file
 * Unit tests for the sample characterization pass.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

#include "sim/sample_simulator.hh"

namespace mcdvfs
{
namespace
{

PhaseSpec
cpuBoundPhase()
{
    PhaseSpec spec;
    spec.name = "cpu";
    spec.hotFrac = 1.0;
    spec.warmFrac = 0.0;
    spec.hotBytes = 16 * kKiB;
    return spec;
}

PhaseSpec
memBoundPhase()
{
    PhaseSpec spec;
    spec.name = "mem";
    spec.hotFrac = 0.5;
    spec.warmFrac = 0.0;
    spec.coldSeqFrac = 0.0;  // random: misses everywhere
    spec.coldBytes = 64ull << 20;
    return spec;
}

WorkloadProfile
tinyWorkload(const PhaseSpec &spec, std::size_t samples)
{
    return WorkloadProfile("tiny", samples,
                           [spec](std::size_t) { return spec; }, 99,
                           /*jitter=*/0.0);
}

SampleSimulatorConfig
fastConfig()
{
    SampleSimulatorConfig config;
    config.simInstructionsPerSample = 20'000;
    config.warmupInstructions = 60'000;
    return config;
}

TEST(SampleSimulator, Deterministic)
{
    const WorkloadProfile workload = tinyWorkload(memBoundPhase(), 3);
    SampleSimulator a(fastConfig());
    SampleSimulator b(fastConfig());
    const auto pa = a.characterize(workload);
    const auto pb = b.characterize(workload);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t s = 0; s < pa.size(); ++s) {
        EXPECT_DOUBLE_EQ(pa[s].l1Mpki, pb[s].l1Mpki);
        EXPECT_DOUBLE_EQ(pa[s].dramReadsPerInstr,
                         pb[s].dramReadsPerInstr);
        EXPECT_DOUBLE_EQ(pa[s].rowHitFrac, pb[s].rowHitFrac);
    }
}

TEST(SampleSimulator, OneProfilePerSample)
{
    const WorkloadProfile workload = tinyWorkload(cpuBoundPhase(), 5);
    SampleSimulator simulator(fastConfig());
    EXPECT_EQ(simulator.characterize(workload).size(), 5u);
}

TEST(SampleSimulator, CpuBoundPhaseHasNoDramTraffic)
{
    // A 16 KiB hot set lives entirely in the 64 KiB L1 after warmup.
    const WorkloadProfile workload = tinyWorkload(cpuBoundPhase(), 3);
    SampleSimulator simulator(fastConfig());
    const auto profiles = simulator.characterize(workload);
    EXPECT_LT(profiles[2].l2Mpki, 0.5);
    EXPECT_LT(profiles[2].dramPerInstr(), 0.001);
}

TEST(SampleSimulator, MemBoundPhaseMissesEverywhere)
{
    const WorkloadProfile workload = tinyWorkload(memBoundPhase(), 3);
    SampleSimulator simulator(fastConfig());
    const auto profiles = simulator.characterize(workload);
    // Half the accesses hit a 64 MiB random set: far beyond L2.
    EXPECT_GT(profiles[2].l2Mpki, 20.0);
    EXPECT_GT(profiles[2].l1Mpki, 20.0);
}

TEST(SampleSimulator, RandomColdAccessesRarelyRowHit)
{
    const WorkloadProfile workload = tinyWorkload(memBoundPhase(), 2);
    SampleSimulator simulator(fastConfig());
    const auto profiles = simulator.characterize(workload);
    EXPECT_LT(profiles[1].rowHitFrac, 0.2);
    EXPECT_NEAR(profiles[1].rowHitFrac + profiles[1].rowClosedFrac +
                    profiles[1].rowConflictFrac,
                1.0, 1e-9);
}

TEST(SampleSimulator, SequentialColdAccessesMostlyRowHit)
{
    PhaseSpec spec = memBoundPhase();
    spec.coldSeqFrac = 1.0;
    const WorkloadProfile workload = tinyWorkload(spec, 2);
    SampleSimulator simulator(fastConfig());
    const auto profiles = simulator.characterize(workload);
    EXPECT_GT(profiles[1].rowHitFrac, 0.7);
}

TEST(SampleSimulator, PhaseAttributesPassThrough)
{
    PhaseSpec spec = cpuBoundPhase();
    spec.baseCpi = 1.23;
    spec.mlp = 2.5;
    spec.activity = 0.77;
    const WorkloadProfile workload = tinyWorkload(spec, 1);
    SampleSimulator simulator(fastConfig());
    const auto profiles = simulator.characterize(workload);
    EXPECT_DOUBLE_EQ(profiles[0].baseCpi, 1.23);
    EXPECT_DOUBLE_EQ(profiles[0].mlp, 2.5);
    EXPECT_DOUBLE_EQ(profiles[0].activity, 0.77);
    EXPECT_EQ(profiles[0].phaseName, "cpu");
}

TEST(SampleSimulator, WarmupRemovesColdStartTransient)
{
    // With warmup, the first sample of a steady workload looks like
    // the later ones; without, it carries compulsory misses.
    PhaseSpec spec;
    spec.hotFrac = 0.85;
    spec.warmFrac = 0.15;
    spec.warmBytes = 256 * kKiB;  // L2-resident once warm
    const WorkloadProfile workload = tinyWorkload(spec, 4);

    SampleSimulatorConfig cold = fastConfig();
    cold.warmupInstructions = 0;
    SampleSimulator cold_sim(cold);
    const auto cold_profiles = cold_sim.characterize(workload);

    SampleSimulatorConfig warm = fastConfig();
    warm.warmupInstructions = 500'000;
    SampleSimulator warm_sim(warm);
    const auto warm_profiles = warm_sim.characterize(workload);

    EXPECT_GT(cold_profiles[0].l2Mpki, warm_profiles[0].l2Mpki * 2.0);
}

TEST(SampleSimulator, CharacterizeOneResetsState)
{
    SampleSimulator simulator(fastConfig());
    const SampleProfile a =
        simulator.characterizeOne(memBoundPhase(), 7, 20'000);
    const SampleProfile b =
        simulator.characterizeOne(memBoundPhase(), 7, 20'000);
    EXPECT_DOUBLE_EQ(a.l1Mpki, b.l1Mpki);
    EXPECT_DOUBLE_EQ(a.rowHitFrac, b.rowHitFrac);
}

TEST(SampleSimulator, ZeroInstructionConfigThrows)
{
    SampleSimulatorConfig config;
    config.simInstructionsPerSample = 0;
    EXPECT_THROW(SampleSimulator{config}, FatalError);
}

} // namespace
} // namespace mcdvfs
