/**
 * @file
 * Incremental (streaming) analysis tests: AnalysisCheckpoint extension
 * must be bit-identical to a full recompute at every split point, the
 * grid prefix digests that key the checkpoints must be prefix-stable
 * and mutation-sensitive, the AnalysisCache checkpoint store must obey
 * its LRU/disable semantics, and the CharacterizationService must
 * resume a grown workload from its longest cached prefix with exactly
 * the results of a from-scratch service.
 */

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/incremental_analysis.hh"
#include "svc/characterization_service.hh"
#include "test_grid.hh"

namespace mcdvfs
{
namespace
{

void
expectChoicesIdentical(const OptimalChoice &a, const OptimalChoice &b)
{
    ASSERT_EQ(a.settingIndex, b.settingIndex);
    ASSERT_TRUE(a.setting == b.setting);
    ASSERT_EQ(a.speedup, b.speedup);
    ASSERT_EQ(a.inefficiency, b.inefficiency);
}

void
expectRegionsIdentical(const std::vector<StableRegion> &a,
                       const std::vector<StableRegion> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].first, b[i].first);
        ASSERT_EQ(a[i].last, b[i].last);
        ASSERT_EQ(a[i].availableSettings, b[i].availableSettings);
        ASSERT_EQ(a[i].chosenSettingIndex, b[i].chosenSettingIndex);
        ASSERT_TRUE(a[i].chosenSetting == b[i].chosenSetting);
    }
}

void
expectCheckpointsIdentical(const AnalysisCheckpoint &a,
                           const AnalysisCheckpoint &b,
                           const SettingsSpace &space)
{
    ASSERT_EQ(a.samples, b.samples);
    ASSERT_EQ(a.masks, b.masks);
    ASSERT_EQ(a.optimal.size(), b.optimal.size());
    for (std::size_t s = 0; s < a.optimal.size(); ++s)
        expectChoicesIdentical(a.optimal[s], b.optimal[s]);
    expectRegionsIdentical(a.regions.regions(space),
                           b.regions.regions(space));
}

/** steadyWorkload() with a parameterized length: same name, script and
 *  seed, so a longer run is a content-prefix extension of a shorter
 *  one (the streaming-growth shape the checkpoint store keys on). */
WorkloadProfile
grownSteady(std::size_t samples)
{
    PhaseSpec spec;
    spec.name = "steady";
    spec.hotFrac = 0.94;
    spec.warmFrac = 0.05;
    return WorkloadProfile(
        "steady", samples, [spec](std::size_t) { return spec; }, 23,
        /*jitter=*/0.01);
}

MeasuredGrid
buildGrid(const WorkloadProfile &workload)
{
    GridRunner runner(test::fastSystemConfig());
    return runner.run(workload, SettingsSpace::coarse());
}

TEST(IncrementalAnalysis, ExtendMatchesRecomputeAtEverySplit)
{
    const MeasuredGrid &grid = test::phasedGrid();
    const SettingsSpace space = SettingsSpace::coarse();
    InefficiencyAnalysis analysis(grid);
    OptimalSettingsFinder finder(analysis);
    ClusterFinder clusters(finder);
    const std::size_t n = grid.sampleCount();

    for (const double budget : {1.0, 1.3}) {
        const double threshold = budget == 1.0 ? 0.0 : 0.03;
        const AnalysisCheckpoint oracle = IncrementalAnalyzer::build(
            clusters, budget, threshold, n);
        for (const std::size_t split : {std::size_t{0}, std::size_t{1},
                                        n / 2, n - 1, n}) {
            AnalysisCheckpoint cp = IncrementalAnalyzer::build(
                clusters, budget, threshold, split);
            ASSERT_EQ(cp.samples, split);
            // A tail-range finder covering [split, n) is all the
            // extension may touch — exactly what the service hands it.
            const ClusterFinder tail(finder, split);
            IncrementalAnalyzer::extend(cp, tail, n);
            expectCheckpointsIdentical(oracle, cp, space);
        }
    }
}

TEST(IncrementalAnalysis, ExtendToCurrentLengthIsANoOp)
{
    const MeasuredGrid &grid = test::steadyGrid();
    InefficiencyAnalysis analysis(grid);
    OptimalSettingsFinder finder(analysis);
    ClusterFinder clusters(finder);
    const std::size_t n = grid.sampleCount();

    AnalysisCheckpoint cp =
        IncrementalAnalyzer::build(clusters, 1.3, 0.03, n);
    AnalysisCheckpoint again = cp;
    IncrementalAnalyzer::extend(again, clusters, n);
    expectCheckpointsIdentical(cp, again, SettingsSpace::coarse());
}

TEST(IncrementalAnalysis, FromTableMatchesBuild)
{
    const MeasuredGrid &grid = test::phasedGrid();
    const SettingsSpace space = SettingsSpace::coarse();
    InefficiencyAnalysis analysis(grid);
    OptimalSettingsFinder finder(analysis);
    ClusterFinder clusters(finder);

    const ClusterTable table = clusters.table(1.3, 0.03);
    const AnalysisCheckpoint from_table =
        IncrementalAnalyzer::fromTable(space, table);
    const AnalysisCheckpoint built = IncrementalAnalyzer::build(
        clusters, 1.3, 0.03, grid.sampleCount());
    expectCheckpointsIdentical(built, from_table, space);

    // materializeCluster must agree with the table's own vector form.
    for (std::size_t s = 0; s < table.sampleCount(); ++s) {
        const PerformanceCluster a = table.materialize(s);
        const PerformanceCluster b =
            IncrementalAnalyzer::materializeCluster(
                from_table.optimal[s], from_table.masks[s]);
        expectChoicesIdentical(a.optimal, b.optimal);
        ASSERT_EQ(a.settings, b.settings);
    }
}

TEST(GridPrefixDigest, SharedPrefixesDigestEqually)
{
    // Both runs are at least as long as the warmup span, so the short
    // grid's rows are a bit-identical prefix of the long grid's.
    const MeasuredGrid short_grid = buildGrid(grownSteady(8));
    const MeasuredGrid long_grid = buildGrid(grownSteady(12));
    for (std::size_t len = 1; len <= 8; ++len) {
        EXPECT_EQ(short_grid.prefixDigest(len),
                  long_grid.prefixDigest(len))
            << "prefix length " << len;
    }
    // Longer prefixes of the long grid are new content.
    EXPECT_NE(long_grid.prefixDigest(12), long_grid.prefixDigest(8));
}

TEST(GridPrefixDigest, MutationInvalidatesTheDigest)
{
    MeasuredGrid grid = buildGrid(grownSteady(8));
    const std::uint64_t before = grid.prefixDigest(8);
    EXPECT_EQ(grid.prefixDigest(8), before);  // cached, stable
    GridCellRef cell = grid.cell(3, 5);
    cell.seconds += 1.0;
    EXPECT_NE(grid.prefixDigest(8), before);
    // A prefix strictly before the touched row keeps its digest.
    const MeasuredGrid pristine = buildGrid(grownSteady(8));
    EXPECT_EQ(grid.prefixDigest(3), pristine.prefixDigest(3));
}

TEST(AnalysisCacheCheckpoints, LongestPrefixWinsAndCountsOnce)
{
    svc::AnalysisCache cache(4, 2, 4);
    const auto make = [](std::size_t samples) {
        auto cp = std::make_shared<AnalysisCheckpoint>();
        cp->samples = samples;
        return cp;
    };
    const svc::AnalysisKey short_key{0x1111, 1.3, 0.03};
    const svc::AnalysisKey long_key{0x2222, 1.3, 0.03};
    const svc::AnalysisKey absent_key{0x3333, 1.3, 0.03};
    cache.insertCheckpoint(short_key, make(3));
    cache.insertCheckpoint(long_key, make(5));

    // Longest-first walk: the first present key wins even when later
    // keys are present too, and the walk counts exactly one hit.
    const auto hit = cache.findLongestCheckpoint(
        {absent_key, long_key, short_key});
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->samples, 5u);
    svc::AnalysisCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.checkpointHits, 1u);
    EXPECT_EQ(stats.checkpointMisses, 0u);
    EXPECT_EQ(stats.checkpointEntries, 2u);

    // A walk probing only absent prefixes counts exactly one miss.
    EXPECT_EQ(cache.findLongestCheckpoint({absent_key}), nullptr);
    stats = cache.stats();
    EXPECT_EQ(stats.checkpointHits, 1u);
    EXPECT_EQ(stats.checkpointMisses, 1u);
}

TEST(AnalysisCacheCheckpoints, EvictsLeastRecentlyUsed)
{
    // One shard of capacity 1: the second insert evicts the first.
    svc::AnalysisCache cache(1, 1, 1);
    const svc::AnalysisKey first{0xaaaa, 1.3, 0.03};
    const svc::AnalysisKey second{0xbbbb, 1.3, 0.03};
    cache.insertCheckpoint(first,
                           std::make_shared<AnalysisCheckpoint>());
    cache.insertCheckpoint(second,
                           std::make_shared<AnalysisCheckpoint>());
    const svc::AnalysisCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.checkpointEvictions, 1u);
    EXPECT_EQ(stats.checkpointEntries, 1u);
    EXPECT_EQ(cache.findLongestCheckpoint({first}), nullptr);
    EXPECT_NE(cache.findLongestCheckpoint({second}), nullptr);
}

TEST(AnalysisCacheCheckpoints, ZeroCapacityDisablesTheStore)
{
    svc::AnalysisCache cache(4, 2, 0);
    EXPECT_EQ(cache.checkpointCapacity(), 0u);
    const svc::AnalysisKey key{0x1234, 1.3, 0.03};
    cache.insertCheckpoint(key,
                           std::make_shared<AnalysisCheckpoint>());
    EXPECT_EQ(cache.findLongestCheckpoint({key}), nullptr);
    const svc::AnalysisCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.checkpointEntries, 0u);
    EXPECT_EQ(stats.checkpointMisses, 1u);
    // The result half is unaffected by a disabled checkpoint store.
    cache.insert(key, std::make_shared<svc::AnalysisResult>());
    EXPECT_NE(cache.find(key), nullptr);
}

void
expectResultsIdentical(const svc::TuningResult &a,
                       const svc::TuningResult &b)
{
    ASSERT_EQ(a.optimal.size(), b.optimal.size());
    for (std::size_t s = 0; s < a.optimal.size(); ++s)
        expectChoicesIdentical(a.optimal[s], b.optimal[s]);
    ASSERT_EQ(a.clusters.size(), b.clusters.size());
    for (std::size_t s = 0; s < a.clusters.size(); ++s) {
        expectChoicesIdentical(a.clusters[s].optimal,
                               b.clusters[s].optimal);
        ASSERT_EQ(a.clusters[s].settings, b.clusters[s].settings);
    }
    expectRegionsIdentical(a.regions, b.regions);
}

TEST(ServiceStreaming, GrownWorkloadResumesFromCachedPrefix)
{
    svc::ServiceOptions streaming_options;
    svc::ServiceOptions control_options;
    control_options.checkpointCapacity = 0;  // resume disabled
    svc::CharacterizationService service(test::fastSystemConfig(),
                                         streaming_options);
    svc::CharacterizationService control(test::fastSystemConfig(),
                                         control_options);

    svc::TuningRequest request{grownSteady(8), SettingsSpace::coarse(),
                               1.3, 0.03};

    // First sight of the workload: full compute, no prefix to resume
    // from, but the analysis leaves a checkpoint behind.
    const svc::TuningResult base = service.submit(request);
    EXPECT_FALSE(base.analysisResumed);
    EXPECT_EQ(base.resumedFromSamples, 0u);

    // The workload grows: new grid fingerprint (result-cache miss),
    // but the first 8 samples digest identically, so the analysis
    // resumes from the cached checkpoint instead of recomputing.
    request.workload = grownSteady(12);
    const svc::TuningResult grown = service.submit(request);
    EXPECT_TRUE(grown.analysisResumed);
    EXPECT_EQ(grown.resumedFromSamples, 8u);
    EXPECT_FALSE(grown.analysisCacheHit);
    EXPECT_GE(service.analysisStats().checkpointHits, 1u);

    // The resumed chain must be bit-identical to the from-scratch one.
    const svc::TuningResult oracle = control.submit(request);
    EXPECT_FALSE(oracle.analysisResumed);
    expectResultsIdentical(oracle, grown);

    // A repeat of the grown request is now a plain result-cache hit.
    const svc::TuningResult repeat = service.submit(request);
    EXPECT_TRUE(repeat.analysisCacheHit);
    expectResultsIdentical(oracle, repeat);
}

} // namespace
} // namespace mcdvfs
