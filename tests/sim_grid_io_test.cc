/**
 * @file
 * Unit tests for grid serialization.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/inefficiency.hh"
#include "sim/grid_io.hh"
#include "test_grid.hh"

namespace mcdvfs
{
namespace
{

TEST(GridIo, RoundTripPreservesEverything)
{
    const MeasuredGrid &original = test::phasedGrid();
    const MeasuredGrid loaded =
        loadGridFromString(saveGridToString(original));

    EXPECT_EQ(loaded.workload(), original.workload());
    ASSERT_EQ(loaded.sampleCount(), original.sampleCount());
    ASSERT_EQ(loaded.settingCount(), original.settingCount());
    EXPECT_EQ(loaded.instructionsPerSample(),
              original.instructionsPerSample());

    for (std::size_t s = 0; s < original.sampleCount(); ++s) {
        for (std::size_t k = 0; k < original.settingCount(); ++k) {
            ASSERT_DOUBLE_EQ(loaded.cell(s, k).seconds,
                             original.cell(s, k).seconds);
            ASSERT_DOUBLE_EQ(loaded.cell(s, k).cpuEnergy,
                             original.cell(s, k).cpuEnergy);
            ASSERT_DOUBLE_EQ(loaded.cell(s, k).memEnergy,
                             original.cell(s, k).memEnergy);
            ASSERT_DOUBLE_EQ(loaded.cell(s, k).busyFrac,
                             original.cell(s, k).busyFrac);
        }
    }
}

TEST(GridIo, RoundTripPreservesProfiles)
{
    const MeasuredGrid &original = test::phasedGrid();
    const MeasuredGrid loaded =
        loadGridFromString(saveGridToString(original));
    ASSERT_TRUE(loaded.hasProfiles());
    for (std::size_t s = 0; s < original.sampleCount(); ++s) {
        EXPECT_DOUBLE_EQ(loaded.profile(s).l1Mpki,
                         original.profile(s).l1Mpki);
        EXPECT_DOUBLE_EQ(loaded.profile(s).baseCpi,
                         original.profile(s).baseCpi);
        EXPECT_EQ(loaded.profile(s).phaseName,
                  original.profile(s).phaseName);
    }
}

TEST(GridIo, RoundTripPreservesLadders)
{
    const MeasuredGrid &original = test::phasedGrid();
    const MeasuredGrid loaded =
        loadGridFromString(saveGridToString(original));
    ASSERT_EQ(loaded.space().cpuLadder().size(),
              original.space().cpuLadder().size());
    for (std::size_t i = 0; i < loaded.space().cpuLadder().size(); ++i)
        EXPECT_DOUBLE_EQ(loaded.space().cpuLadder().at(i),
                         original.space().cpuLadder().at(i));
}

TEST(GridIo, AnalysesAgreeAfterRoundTrip)
{
    const MeasuredGrid &original = test::phasedGrid();
    const MeasuredGrid loaded =
        loadGridFromString(saveGridToString(original));
    InefficiencyAnalysis a(original);
    InefficiencyAnalysis b(loaded);
    EXPECT_DOUBLE_EQ(a.eminTotal(), b.eminTotal());
    EXPECT_DOUBLE_EQ(a.maxRunInefficiency(), b.maxRunInefficiency());
}

TEST(GridIo, RejectsBadHeader)
{
    EXPECT_THROW(loadGridFromString("not a grid\n"), FatalError);
    EXPECT_THROW(loadGridFromString("mcdvfs-grid v999\nworkload x\n"),
                 FatalError);
}

TEST(GridIo, RejectsTruncatedInput)
{
    std::string text = saveGridToString(test::phasedGrid());
    text.resize(text.size() / 2);
    // Either a malformed line or a cell-count mismatch must be
    // reported as a fatal parse error.
    EXPECT_THROW(loadGridFromString(text), FatalError);
}

TEST(GridIo, RejectsOutOfRangeCell)
{
    EXPECT_THROW(
        loadGridFromString("mcdvfs-grid v1\n"
                           "workload x\n"
                           "samples 1 instructions 10\n"
                           "cpu 100\n"
                           "mem 200\n"
                           "cell 5 0 1 1 1 1 0\n"),
        FatalError);
}

// Binary snapshot layout (for the corruption tests below): 8-byte
// magic, u32 version at offset 8, u64 payload size at 12, u64 payload
// checksum at 20, payload from 28.

TEST(GridIoBinary, RoundTripIsBitIdentical)
{
    const MeasuredGrid &original = test::phasedGrid();
    const std::string bytes = saveGridBinaryToString(original);
    const MeasuredGrid loaded = loadGridBinaryFromString(bytes);

    // Doubles travel by bit pattern, so re-serializing the loaded grid
    // must reproduce the snapshot byte for byte.
    EXPECT_EQ(saveGridBinaryToString(loaded), bytes);

    EXPECT_EQ(loaded.workload(), original.workload());
    EXPECT_EQ(loaded.sampleCount(), original.sampleCount());
    EXPECT_EQ(loaded.settingCount(), original.settingCount());
    ASSERT_TRUE(loaded.hasProfiles());
}

TEST(GridIoBinary, AnalysesAgreeAfterRoundTrip)
{
    const MeasuredGrid &original = test::phasedGrid();
    const MeasuredGrid loaded =
        loadGridBinaryFromString(saveGridBinaryToString(original));
    InefficiencyAnalysis a(original);
    InefficiencyAnalysis b(loaded);
    EXPECT_DOUBLE_EQ(a.eminTotal(), b.eminTotal());
    EXPECT_DOUBLE_EQ(a.maxRunInefficiency(), b.maxRunInefficiency());
}

TEST(GridIoBinary, RejectsTruncatedHeader)
{
    EXPECT_THROW(loadGridBinaryFromString(""), FatalError);
    EXPECT_THROW(loadGridBinaryFromString("mcdvfs"), FatalError);
    std::string bytes = saveGridBinaryToString(test::phasedGrid());
    bytes.resize(20);  // cuts the header mid-checksum
    EXPECT_THROW(loadGridBinaryFromString(bytes), FatalError);
}

TEST(GridIoBinary, RejectsBadMagic)
{
    std::string bytes = saveGridBinaryToString(test::phasedGrid());
    bytes[0] = 'X';
    EXPECT_THROW(loadGridBinaryFromString(bytes), FatalError);
}

TEST(GridIoBinary, RejectsUnsupportedVersion)
{
    std::string bytes = saveGridBinaryToString(test::phasedGrid());
    bytes[8] = static_cast<char>(0xEE);  // low byte of the version word
    EXPECT_THROW(loadGridBinaryFromString(bytes), FatalError);
}

TEST(GridIoBinary, RejectsTruncatedPayload)
{
    std::string bytes = saveGridBinaryToString(test::phasedGrid());
    bytes.resize(bytes.size() - 3);
    EXPECT_THROW(loadGridBinaryFromString(bytes), FatalError);
}

TEST(GridIoBinary, RejectsCorruptPayload)
{
    std::string bytes = saveGridBinaryToString(test::phasedGrid());
    bytes[bytes.size() - 1] ^= 0x01;  // checksum no longer matches
    EXPECT_THROW(loadGridBinaryFromString(bytes), FatalError);
    bytes = saveGridBinaryToString(test::phasedGrid());
    bytes[40] ^= 0x40;  // flip a payload bit near the front
    EXPECT_THROW(loadGridBinaryFromString(bytes), FatalError);
}

} // namespace
} // namespace mcdvfs
