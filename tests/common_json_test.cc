/**
 * @file
 * Tests of the minimal JSON reader (common/json.hh) used by
 * tools/bench_gate: value access, insertion-ordered objects, string
 * escapes, strict error handling with byte offsets, and file I/O.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/json.hh"
#include "common/logging.hh"

namespace mcdvfs
{
namespace json
{
namespace
{

TEST(Json, ParsesScalars)
{
    EXPECT_TRUE(parse("null").isNull());
    EXPECT_TRUE(parse("true").asBool());
    EXPECT_FALSE(parse("false").asBool());
    EXPECT_DOUBLE_EQ(parse("42").asNumber(), 42.0);
    EXPECT_DOUBLE_EQ(parse("-1.5e3").asNumber(), -1500.0);
    EXPECT_EQ(parse("\"hi\"").asString(), "hi");
}

TEST(Json, ParsesNestedDocumentInInsertionOrder)
{
    const Value doc = parse(
        "{\"schema\": \"v1\", \"results\": [{\"name\": \"a\", "
        "\"build_seconds\": 0.25}, {\"name\": \"b\"}], "
        "\"count\": 2}");
    ASSERT_TRUE(doc.isObject());
    ASSERT_EQ(doc.members().size(), 3u);
    EXPECT_EQ(doc.members()[0].first, "schema");
    EXPECT_EQ(doc.members()[1].first, "results");
    EXPECT_EQ(doc.members()[2].first, "count");

    EXPECT_EQ(doc.at("schema").asString(), "v1");
    const auto &results = doc.at("results").asArray();
    ASSERT_EQ(results.size(), 2u);
    EXPECT_EQ(results[0].at("name").asString(), "a");
    EXPECT_DOUBLE_EQ(results[0].at("build_seconds").asNumber(), 0.25);
    EXPECT_TRUE(doc.has("count"));
    EXPECT_FALSE(doc.has("missing"));
}

TEST(Json, FallbackAccessors)
{
    const Value doc = parse("{\"n\": 7, \"s\": \"x\"}");
    EXPECT_DOUBLE_EQ(doc.numberOr("n", -1.0), 7.0);
    EXPECT_DOUBLE_EQ(doc.numberOr("absent", -1.0), -1.0);
    EXPECT_EQ(doc.stringOr("s", "d"), "x");
    EXPECT_EQ(doc.stringOr("absent", "d"), "d");
}

TEST(Json, StringEscapes)
{
    EXPECT_EQ(parse("\"a\\\"b\\\\c\\n\\t\"").asString(), "a\"b\\c\n\t");
    EXPECT_EQ(parse("\"\\u0041\"").asString(), "A");
}

TEST(Json, EmptyContainers)
{
    EXPECT_TRUE(parse("{}").members().empty());
    EXPECT_TRUE(parse("[]").asArray().empty());
    EXPECT_TRUE(parse("  { }  ").isObject());
}

TEST(Json, RejectsMalformedDocuments)
{
    EXPECT_THROW(parse(""), FatalError);
    EXPECT_THROW(parse("{"), FatalError);
    EXPECT_THROW(parse("{\"a\": }"), FatalError);
    EXPECT_THROW(parse("[1, 2,]"), FatalError);
    EXPECT_THROW(parse("tru"), FatalError);
    EXPECT_THROW(parse("\"unterminated"), FatalError);
    EXPECT_THROW(parse("1 2"), FatalError); // trailing garbage
    EXPECT_THROW(parse("nan"), FatalError);
}

TEST(Json, TypeMismatchThrows)
{
    const Value doc = parse("{\"a\": 1}");
    EXPECT_THROW(doc.at("a").asString(), FatalError);
    EXPECT_THROW(doc.at("missing"), FatalError);
    EXPECT_THROW(parse("[]").members(), FatalError);
    EXPECT_THROW(parse("1").asArray(), FatalError);
}

TEST(Json, ParseFileRoundTrip)
{
    const std::string path =
        testing::TempDir() + "common_json_test_doc.json";
    {
        std::ofstream out(path);
        out << "{\"schema\": \"mcdvfs-bench-grid-v1\", \"results\": "
               "[{\"cells_per_sec\": 1e6}]}";
    }
    const Value doc = parseFile(path);
    EXPECT_EQ(doc.at("schema").asString(), "mcdvfs-bench-grid-v1");
    EXPECT_DOUBLE_EQ(
        doc.at("results").asArray()[0].at("cells_per_sec").asNumber(),
        1e6);
    std::remove(path.c_str());
    EXPECT_THROW(parseFile(path), FatalError);
}

} // namespace
} // namespace json
} // namespace mcdvfs
