/**
 * @file
 * Unit tests for the absolute-energy rate-limiting baseline.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

#include "baselines/rate_limiter.hh"
#include "test_grid.hh"

namespace mcdvfs
{
namespace
{

RateLimiterConfig
baseConfig(const MeasuredGrid &grid)
{
    RateLimiterConfig config;
    config.setting = grid.space().maxSetting();
    const std::size_t max_idx =
        grid.space().indexOf(grid.space().maxSetting());
    config.epochLength = grid.totalTime(max_idx) / 10.0;
    // Generous: twice the whole run's energy in the first epoch alone
    // (headroom over floating-point accumulation).
    config.energyPerEpoch = grid.totalEnergy(max_idx) * 2.0;
    return config;
}

TEST(RateLimiter, Validation)
{
    RateLimiterConfig config = baseConfig(test::phasedGrid());
    config.energyPerEpoch = 0.0;
    EXPECT_THROW(RateLimiter{config}, FatalError);
    config = baseConfig(test::phasedGrid());
    config.epochLength = 0.0;
    EXPECT_THROW(RateLimiter{config}, FatalError);
    config = baseConfig(test::phasedGrid());
    config.idlePower = -1.0;
    EXPECT_THROW(RateLimiter{config}, FatalError);
}

TEST(RateLimiter, GenerousBudgetNeverPauses)
{
    const MeasuredGrid &grid = test::phasedGrid();
    const RateLimiterConfig config = baseConfig(grid);
    const RateLimiterResult result = RateLimiter(config).run(grid);
    const std::size_t max_idx =
        grid.space().indexOf(grid.space().maxSetting());
    EXPECT_EQ(result.pausedTime, 0.0);
    EXPECT_EQ(result.idleEnergy, 0.0);
    EXPECT_NEAR(result.time, grid.totalTime(max_idx), 1e-12);
    EXPECT_NEAR(result.taskEnergy, grid.totalEnergy(max_idx), 1e-12);
}

TEST(RateLimiter, TightBudgetForcesPauses)
{
    const MeasuredGrid &grid = test::phasedGrid();
    RateLimiterConfig config = baseConfig(grid);
    const std::size_t max_idx =
        grid.space().indexOf(grid.space().maxSetting());
    // Grant per epoch only a twentieth of what the run needs over ten
    // epochs: the limiter must stall.
    config.energyPerEpoch = grid.totalEnergy(max_idx) / 20.0;
    const RateLimiterResult result = RateLimiter(config).run(grid);
    EXPECT_GT(result.pausedTime, 0.0);
    EXPECT_GT(result.idleEnergy, 0.0);
    EXPECT_GT(result.time, grid.totalTime(max_idx));
}

TEST(RateLimiter, PausingWastesEnergy)
{
    // §II/§IV: pauses burn idle energy without progress, so the
    // achieved inefficiency of a tight rate limit exceeds the
    // no-pause baseline.
    const MeasuredGrid &grid = test::phasedGrid();
    RateLimiterConfig generous = baseConfig(grid);
    RateLimiterConfig tight = baseConfig(grid);
    const std::size_t max_idx =
        grid.space().indexOf(grid.space().maxSetting());
    tight.energyPerEpoch = grid.totalEnergy(max_idx) / 20.0;

    const RateLimiterResult g = RateLimiter(generous).run(grid);
    const RateLimiterResult t = RateLimiter(tight).run(grid);
    EXPECT_GT(t.achievedInefficiency, g.achievedInefficiency);
    EXPECT_GT(t.totalEnergy(), g.totalEnergy());
}

TEST(RateLimiter, TaskEnergyIndependentOfEpochs)
{
    // The task itself runs at a fixed setting; pausing changes only
    // wall-clock and idle energy.
    const MeasuredGrid &grid = test::phasedGrid();
    RateLimiterConfig a = baseConfig(grid);
    RateLimiterConfig b = baseConfig(grid);
    const std::size_t max_idx =
        grid.space().indexOf(grid.space().maxSetting());
    b.energyPerEpoch = grid.totalEnergy(max_idx) / 15.0;
    EXPECT_NEAR(RateLimiter(a).run(grid).taskEnergy,
                RateLimiter(b).run(grid).taskEnergy, 1e-12);
}

TEST(RateLimiter, RunsAtConfiguredSetting)
{
    const MeasuredGrid &grid = test::phasedGrid();
    RateLimiterConfig config = baseConfig(grid);
    config.setting = grid.space().minSetting();
    const std::size_t min_idx =
        grid.space().indexOf(grid.space().minSetting());
    // Generous budget relative to the low-frequency energy.
    config.energyPerEpoch = grid.totalEnergy(min_idx) * 2.0;
    const RateLimiterResult result = RateLimiter(config).run(grid);
    EXPECT_NEAR(result.taskEnergy, grid.totalEnergy(min_idx), 1e-12);
}

} // namespace
} // namespace mcdvfs
