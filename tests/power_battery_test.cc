/**
 * @file
 * Unit tests for the battery model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "power/battery.hh"

namespace mcdvfs
{
namespace
{

TEST(Battery, Validation)
{
    BatteryConfig config;
    config.capacityWh = 0.0;
    EXPECT_THROW(Battery{config}, FatalError);
    config = BatteryConfig{};
    config.usableFraction = 1.5;
    EXPECT_THROW(Battery{config}, FatalError);
}

TEST(Battery, CapacityConversion)
{
    BatteryConfig config;
    config.capacityWh = 10.0;
    config.usableFraction = 1.0;
    const Battery battery(config);
    EXPECT_DOUBLE_EQ(battery.capacity(), 36000.0);  // 10 Wh in J
    EXPECT_DOUBLE_EQ(battery.stateOfCharge(), 1.0);
}

TEST(Battery, DrainAccounting)
{
    BatteryConfig config;
    config.capacityWh = 1.0;
    config.usableFraction = 1.0;
    Battery battery(config);  // 3600 J
    EXPECT_DOUBLE_EQ(battery.drain(600.0), 600.0);
    EXPECT_DOUBLE_EQ(battery.remaining(), 3000.0);
    EXPECT_NEAR(battery.stateOfCharge(), 3000.0 / 3600.0, 1e-12);
}

TEST(Battery, ClampsAtEmpty)
{
    BatteryConfig config;
    config.capacityWh = 1.0;
    config.usableFraction = 1.0;
    Battery battery(config);
    EXPECT_DOUBLE_EQ(battery.drain(5000.0), 3600.0);
    EXPECT_TRUE(battery.depleted());
    EXPECT_DOUBLE_EQ(battery.drain(1.0), 0.0);
}

TEST(Battery, LifetimeEstimate)
{
    BatteryConfig config;
    config.capacityWh = 1.0;
    config.usableFraction = 1.0;
    const Battery battery(config);
    EXPECT_NEAR(battery.lifetimeAt(1.0), 3600.0, 1e-9);
    EXPECT_NEAR(battery.lifetimeAt(2.0), 1800.0, 1e-9);
    EXPECT_TRUE(std::isinf(battery.lifetimeAt(0.0)));
}

TEST(Battery, UsableFractionReducesCapacity)
{
    BatteryConfig full;
    full.usableFraction = 1.0;
    BatteryConfig derated = full;
    derated.usableFraction = 0.5;
    EXPECT_NEAR(Battery(derated).capacity(),
                Battery(full).capacity() * 0.5, 1e-9);
}

TEST(BatteryDeathTest, NegativeDrainPanics)
{
    Battery battery;
    EXPECT_DEATH(battery.drain(-1.0), "negative");
}

} // namespace
} // namespace mcdvfs
