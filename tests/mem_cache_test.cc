/**
 * @file
 * Unit and property tests for the set-associative cache model.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "mem/cache.hh"

namespace mcdvfs
{
namespace
{

CacheConfig
smallConfig()
{
    CacheConfig config;
    config.name = "test";
    config.sizeBytes = 1024;
    config.associativity = 2;
    config.lineBytes = 64;
    return config;
}

TEST(CacheConfig, GeometryValidation)
{
    CacheConfig config = smallConfig();
    EXPECT_NO_THROW(config.validate());

    config.lineBytes = 48;  // not a power of two
    EXPECT_THROW(config.validate(), FatalError);

    config = smallConfig();
    config.associativity = 0;
    EXPECT_THROW(config.validate(), FatalError);

    config = smallConfig();
    config.sizeBytes = 1000;  // not divisible
    EXPECT_THROW(config.validate(), FatalError);

    config = smallConfig();
    config.associativity = 3;  // 1024/64/3 not a power of two
    EXPECT_THROW(config.validate(), FatalError);
}

TEST(CacheConfig, NumSets)
{
    EXPECT_EQ(smallConfig().numSets(), 8u);
    CacheConfig paper;
    paper.sizeBytes = 64 * kKiB;
    paper.associativity = 4;
    paper.lineBytes = 64;
    EXPECT_EQ(paper.numSets(), 256u);
}

TEST(Cache, MissThenHit)
{
    Cache cache(smallConfig());
    EXPECT_FALSE(cache.access(0x1000, false).hit);
    EXPECT_TRUE(cache.access(0x1000, false).hit);
    // Same line, different offset also hits.
    EXPECT_TRUE(cache.access(0x1038, false).hit);
}

TEST(Cache, DistinctSetsDoNotConflict)
{
    Cache cache(smallConfig());
    cache.access(0x0, false);
    cache.access(0x40, false);  // next set
    EXPECT_TRUE(cache.access(0x0, false).hit);
    EXPECT_TRUE(cache.access(0x40, false).hit);
}

TEST(Cache, LruEviction)
{
    // 2-way set: three conflicting lines evict the least recent.
    Cache cache(smallConfig());
    const std::uint64_t set_stride = 8 * 64;  // 8 sets * 64B lines
    cache.access(0 * set_stride, false);      // A
    cache.access(1 * set_stride, false);      // B
    cache.access(0 * set_stride, false);      // touch A
    cache.access(2 * set_stride, false);      // C evicts B
    EXPECT_TRUE(cache.access(0 * set_stride, false).hit);
    EXPECT_FALSE(cache.access(1 * set_stride, false).hit);
}

TEST(Cache, DirtyEvictionGeneratesWriteback)
{
    Cache cache(smallConfig());
    const std::uint64_t set_stride = 8 * 64;
    cache.access(0, true);  // dirty line A
    cache.access(1 * set_stride, false);
    const CacheAccessResult result = cache.access(2 * set_stride, false);
    EXPECT_TRUE(result.writeback);
    EXPECT_EQ(result.writebackAddr, 0u);
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionHasNoWriteback)
{
    Cache cache(smallConfig());
    const std::uint64_t set_stride = 8 * 64;
    cache.access(0, false);
    cache.access(1 * set_stride, false);
    EXPECT_FALSE(cache.access(2 * set_stride, false).writeback);
}

TEST(Cache, WriteHitMarksLineDirty)
{
    Cache cache(smallConfig());
    const std::uint64_t set_stride = 8 * 64;
    cache.access(0, false);  // clean fill
    cache.access(0, true);   // write hit dirties it
    cache.access(1 * set_stride, false);
    const CacheAccessResult result = cache.access(2 * set_stride, false);
    EXPECT_TRUE(result.writeback);
}

TEST(Cache, FillInstallsWithoutAccessCounters)
{
    Cache cache(smallConfig());
    cache.fill(0x2000, /*dirty=*/true);
    EXPECT_EQ(cache.stats().accesses(), 0u);
    EXPECT_TRUE(cache.access(0x2000, false).hit);
}

TEST(Cache, StatsCounters)
{
    Cache cache(smallConfig());
    cache.access(0x0, false);   // read miss
    cache.access(0x0, false);   // read hit
    cache.access(0x40, true);   // write miss
    cache.access(0x40, true);   // write hit
    const CacheStats &stats = cache.stats();
    EXPECT_EQ(stats.reads, 2u);
    EXPECT_EQ(stats.writes, 2u);
    EXPECT_EQ(stats.readMisses, 1u);
    EXPECT_EQ(stats.writeMisses, 1u);
    EXPECT_DOUBLE_EQ(stats.missRatio(), 0.5);
}

TEST(Cache, ResetClearsContentsAndStats)
{
    Cache cache(smallConfig());
    cache.access(0x0, true);
    cache.reset();
    EXPECT_EQ(cache.stats().accesses(), 0u);
    EXPECT_FALSE(cache.access(0x0, false).hit);
}

TEST(Cache, ClearStatsKeepsContents)
{
    Cache cache(smallConfig());
    cache.access(0x0, false);
    cache.clearStats();
    EXPECT_EQ(cache.stats().accesses(), 0u);
    EXPECT_TRUE(cache.access(0x0, false).hit);
}

TEST(Cache, WorkingSetWithinCapacityAlwaysHitsAfterWarmup)
{
    Cache cache(smallConfig());  // 1 KiB
    // Touch 16 lines (exactly capacity), then re-touch: all hits.
    for (std::uint64_t line = 0; line < 16; ++line)
        cache.access(line * 64, false);
    for (std::uint64_t line = 0; line < 16; ++line)
        EXPECT_TRUE(cache.access(line * 64, false).hit);
}

/**
 * Property: the cache agrees with a simple reference model (per-set
 * LRU list) on hit/miss for random access streams, across geometries.
 */
struct Geometry
{
    std::uint64_t size;
    std::uint32_t assoc;
};

class CacheModelProperty : public ::testing::TestWithParam<Geometry>
{
};

TEST_P(CacheModelProperty, MatchesReferenceLru)
{
    CacheConfig config;
    config.sizeBytes = GetParam().size;
    config.associativity = GetParam().assoc;
    config.lineBytes = 64;
    Cache cache(config);

    const std::uint64_t sets = config.numSets();
    std::map<std::uint64_t, std::vector<std::uint64_t>> model;

    Rng rng(GetParam().size * 31 + GetParam().assoc);
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t line = rng.uniformInt(4 * sets *
                                                  config.associativity);
        const std::uint64_t addr = line * 64;
        const std::uint64_t set = line % sets;
        const std::uint64_t tag = line / sets;

        auto &ways = model[set];
        const auto it = std::find(ways.begin(), ways.end(), tag);
        const bool expect_hit = it != ways.end();
        if (expect_hit)
            ways.erase(it);
        ways.push_back(tag);  // most recent at the back
        if (ways.size() > config.associativity)
            ways.erase(ways.begin());

        ASSERT_EQ(cache.access(addr, false).hit, expect_hit)
            << "divergence at access " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheModelProperty,
    ::testing::Values(Geometry{1024, 1}, Geometry{1024, 2},
                      Geometry{4096, 4}, Geometry{8192, 8},
                      Geometry{64 * 1024, 4}, Geometry{4096, 64}));

} // namespace
} // namespace mcdvfs
