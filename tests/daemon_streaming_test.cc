/**
 * @file
 * Streaming-resume tests at the daemon layer: a fleet of workloads
 * grows a few samples between batches, grown requests land
 * concurrently from several submitter threads, and the daemon's
 * analysis stage must resume them from the checkpoint store without
 * changing a single result bit.  This is also the TSan target for the
 * checkpoint store: concurrent batch groups probe, clone and insert
 * checkpoints under load (scripts/sanitize.sh).
 */

#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "daemon/tuning_daemon.hh"
#include "test_grid.hh"

namespace mcdvfs
{
namespace
{

/** One steady fleet device, parameterized by name and history length:
 *  growing @c samples keeps every earlier sample bit-identical, which
 *  is what lets the daemon resume the analysis from a prefix
 *  checkpoint. */
WorkloadProfile
deviceWorkload(const std::string &name, std::uint64_t seed,
               std::size_t samples)
{
    PhaseSpec spec;
    spec.name = "steady";
    spec.hotFrac = 0.94;
    spec.warmFrac = 0.05;
    return WorkloadProfile(
        name, samples, [spec](std::size_t) { return spec; }, seed,
        /*jitter=*/0.01);
}

svc::TuningRequest
requestFor(const WorkloadProfile &workload, double budget)
{
    return svc::TuningRequest{workload, SettingsSpace::coarse(), budget,
                              0.03};
}

TEST(DaemonStreaming, ConcurrentGrownRequestsResumeFromCheckpoints)
{
    daemon::DaemonOptions options;
    options.service.jobs = 3;
    daemon::TuningDaemon daemon(test::fastSystemConfig(), options);

    const std::vector<std::pair<std::string, std::uint64_t>> devices = {
        {"dev-a", 101}, {"dev-b", 202}, {"dev-c", 303}};
    const std::vector<double> budgets = {1.2, 1.4};

    // Wave 1: every device's first 8 samples, at every budget.  These
    // full computes leave a checkpoint per (grid prefix, budget,
    // threshold) behind.
    std::vector<std::future<daemon::DaemonResponse>> wave1;
    for (const auto &[name, seed] : devices) {
        for (const double budget : budgets) {
            wave1.push_back(daemon.submit(
                requestFor(deviceWorkload(name, seed, 8), budget)));
        }
    }
    for (auto &future : wave1)
        ASSERT_TRUE(future.get().ok());
    EXPECT_EQ(daemon.stats().analysisResumed, 0u);

    // Wave 2: the fleet reports grown histories, submitted from
    // several threads at once so batch groups race on the checkpoint
    // store.  Each grown grid has a new fingerprint (result-cache
    // miss) but digests identically over its first 8 samples.
    std::vector<std::future<daemon::DaemonResponse>> wave2;
    std::mutex wave2_mutex;
    std::vector<std::thread> submitters;
    for (const auto &[name, seed] : devices) {
        submitters.emplace_back([&, name = name, seed = seed] {
            for (const std::size_t grown : {std::size_t{10},
                                            std::size_t{12}}) {
                for (const double budget : budgets) {
                    auto future = daemon.submit(requestFor(
                        deviceWorkload(name, seed, grown), budget));
                    std::lock_guard<std::mutex> lock(wave2_mutex);
                    wave2.push_back(std::move(future));
                }
            }
        });
    }
    for (std::thread &submitter : submitters)
        submitter.join();

    std::vector<daemon::DaemonResponse> responses;
    for (auto &future : wave2) {
        responses.push_back(future.get());
        ASSERT_TRUE(responses.back().ok());
    }
    daemon.drain();

    // Every grown request had an 8-sample (or longer) checkpointed
    // prefix available; at least one must have resumed (coalesced
    // duplicates and timing may dedupe the rest).
    EXPECT_GE(daemon.stats().analysisResumed, 1u);

    // Resumed analyses must be bit-identical to a from-scratch
    // service with the checkpoint store disabled.
    svc::ServiceOptions control_options;
    control_options.checkpointCapacity = 0;
    svc::CharacterizationService control(test::fastSystemConfig(),
                                         control_options);
    std::size_t resumed_seen = 0;
    for (const daemon::DaemonResponse &response : responses) {
        if (!response.result.analysisResumed)
            continue;
        ++resumed_seen;
        EXPECT_GE(response.result.resumedFromSamples, 8u);
        // Rebuild the request from the response's grid: name and
        // length identify the device and how far it had grown.
        const svc::TuningResult &got = response.result;
        const std::uint64_t seed =
            got.grid->workload() == "dev-a"   ? 101
            : got.grid->workload() == "dev-b" ? 202
                                              : 303;
        const svc::TuningRequest request{
            deviceWorkload(got.grid->workload(), seed,
                           got.grid->sampleCount()),
            SettingsSpace::coarse(), got.budget, got.threshold};
        const svc::TuningResult oracle = control.submit(request);
        ASSERT_EQ(got.optimal.size(), oracle.optimal.size());
        for (std::size_t s = 0; s < oracle.optimal.size(); ++s) {
            ASSERT_EQ(got.optimal[s].settingIndex,
                      oracle.optimal[s].settingIndex);
            ASSERT_EQ(got.optimal[s].speedup, oracle.optimal[s].speedup);
            ASSERT_EQ(got.optimal[s].inefficiency,
                      oracle.optimal[s].inefficiency);
        }
        ASSERT_EQ(got.clusters.size(), oracle.clusters.size());
        for (std::size_t s = 0; s < oracle.clusters.size(); ++s) {
            ASSERT_EQ(got.clusters[s].settings,
                      oracle.clusters[s].settings);
        }
        ASSERT_EQ(got.regions.size(), oracle.regions.size());
        for (std::size_t i = 0; i < oracle.regions.size(); ++i) {
            ASSERT_EQ(got.regions[i].first, oracle.regions[i].first);
            ASSERT_EQ(got.regions[i].last, oracle.regions[i].last);
            ASSERT_EQ(got.regions[i].availableSettings,
                      oracle.regions[i].availableSettings);
            ASSERT_EQ(got.regions[i].chosenSettingIndex,
                      oracle.regions[i].chosenSettingIndex);
        }
    }
    EXPECT_EQ(resumed_seen, daemon.stats().analysisResumed);
}

TEST(DaemonStreaming, DisabledCheckpointStoreNeverResumes)
{
    daemon::DaemonOptions options;
    options.service.jobs = 2;
    options.service.checkpointCapacity = 0;
    daemon::TuningDaemon daemon(test::fastSystemConfig(), options);

    auto base = daemon.submit(
        requestFor(deviceWorkload("dev-z", 7, 8), 1.3));
    ASSERT_TRUE(base.get().ok());
    auto grown = daemon.submit(
        requestFor(deviceWorkload("dev-z", 7, 12), 1.3));
    const daemon::DaemonResponse response = grown.get();
    ASSERT_TRUE(response.ok());
    EXPECT_FALSE(response.result.analysisResumed);
    daemon.drain();
    EXPECT_EQ(daemon.stats().analysisResumed, 0u);
}

} // namespace
} // namespace mcdvfs
