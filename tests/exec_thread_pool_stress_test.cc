/**
 * @file
 * ThreadPool stress tests (ctest label "stress"): nested parallelFor
 * from worker tasks, exception propagation under load, destruction
 * with tasks still queued, and a many-submitter soak.  Sizes are
 * modest enough for a single-core CI machine; all randomness is
 * seeded so failures reproduce.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <random>
#include <stdexcept>
#include <vector>

#include "exec/thread_pool.hh"

namespace mcdvfs
{
namespace
{

TEST(ThreadPoolStress, NestedParallelForFromWorkerTasks)
{
    // Tasks on the pool each run their own parallelFor over the same
    // workers; the caller-participates design must keep making
    // progress even when every worker is blocked inside a nested loop.
    exec::ThreadPool pool(3);
    constexpr std::size_t kOuter = 16;
    constexpr std::size_t kInner = 64;
    std::atomic<std::uint64_t> sum{0};

    std::vector<std::future<void>> tasks;
    tasks.reserve(kOuter);
    for (std::size_t t = 0; t < kOuter; ++t) {
        tasks.push_back(pool.submit([&pool, &sum] {
            pool.parallelFor(
                0, kInner,
                [&sum](std::size_t i) {
                    sum.fetch_add(i, std::memory_order_relaxed);
                },
                /*grain=*/4);
        }));
    }
    for (std::future<void> &task : tasks)
        task.get();

    // Each nested loop contributes sum(0..kInner-1).
    EXPECT_EQ(sum.load(), kOuter * (kInner * (kInner - 1) / 2));
}

TEST(ThreadPoolStress, DeeplyNestedParallelForTerminates)
{
    exec::ThreadPool pool(2);
    std::atomic<std::uint64_t> leaves{0};
    pool.parallelFor(0, 4, [&](std::size_t) {
        pool.parallelFor(0, 4, [&](std::size_t) {
            pool.parallelFor(0, 4,
                             [&](std::size_t) { ++leaves; });
        });
    });
    EXPECT_EQ(leaves.load(), 64u);
}

TEST(ThreadPoolStress, SubmitPropagatesExceptionsUnderLoad)
{
    exec::ThreadPool pool(2);
    constexpr int kTasks = 60;
    std::vector<std::future<int>> futures;
    futures.reserve(kTasks);
    for (int i = 0; i < kTasks; ++i) {
        futures.push_back(pool.submit([i]() -> int {
            if (i % 5 == 0)
                throw std::runtime_error("task " + std::to_string(i));
            return i;
        }));
    }
    for (int i = 0; i < kTasks; ++i) {
        if (i % 5 == 0)
            EXPECT_THROW(futures[i].get(), std::runtime_error);
        else
            EXPECT_EQ(futures[i].get(), i);
    }
}

TEST(ThreadPoolStress, ParallelForRethrowsButFinishesTheRange)
{
    exec::ThreadPool pool(2);
    constexpr std::size_t kRange = 200;
    std::atomic<std::size_t> visited{0};
    EXPECT_THROW(
        pool.parallelFor(0, kRange,
                         [&](std::size_t i) {
                             ++visited;
                             if (i == 17)
                                 throw std::runtime_error("boom");
                         }),
        std::runtime_error);
    // The documented contract: the first exception is rethrown after
    // the rest of the range still ran to completion.
    EXPECT_EQ(visited.load(), kRange);
}

TEST(ThreadPoolStress, DestructionDrainsQueuedTasks)
{
    std::atomic<int> ran{0};
    {
        exec::ThreadPool pool(2);
        for (int i = 0; i < 40; ++i) {
            // Discard the futures: destruction must still run every
            // queued task to completion before joining.
            pool.submit([&ran] { ++ran; });
        }
    }
    EXPECT_EQ(ran.load(), 40);
}

TEST(ThreadPoolStress, ManySubmitterSoak)
{
    // Several client threads hammer one pool with small tasks whose
    // payloads come from per-thread deterministic RNGs; the checksum
    // over all results must match a serial replay.
    exec::ThreadPool pool(2);
    constexpr std::size_t kClients = 4;
    constexpr std::size_t kTasksPerClient = 250;

    std::atomic<std::uint64_t> checksum{0};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
        clients.emplace_back([&pool, &checksum, c] {
            std::mt19937_64 rng(1234 + c);  // deterministic seed
            std::vector<std::future<std::uint64_t>> futures;
            futures.reserve(kTasksPerClient);
            for (std::size_t t = 0; t < kTasksPerClient; ++t) {
                const std::uint64_t payload = rng();
                futures.push_back(pool.submit(
                    [payload] { return payload ^ (payload >> 13); }));
            }
            for (auto &future : futures)
                checksum.fetch_add(future.get(),
                                   std::memory_order_relaxed);
        });
    }
    for (std::thread &client : clients)
        client.join();

    std::uint64_t expected = 0;
    for (std::size_t c = 0; c < kClients; ++c) {
        std::mt19937_64 rng(1234 + c);
        for (std::size_t t = 0; t < kTasksPerClient; ++t) {
            const std::uint64_t payload = rng();
            expected += payload ^ (payload >> 13);
        }
    }
    EXPECT_EQ(checksum.load(), expected);
}

TEST(ThreadPoolStress, MixedParallelForShapes)
{
    // Sweep degenerate and awkward shapes: empty ranges, grain larger
    // than the range, grain zero (clamped to 1), single elements.
    exec::ThreadPool pool(2);
    const std::size_t shapes[][3] = {
        {0, 0, 1},  {5, 5, 3},   {0, 1, 1},  {0, 7, 100},
        {3, 17, 0}, {0, 128, 7}, {2, 66, 1},
    };
    for (const auto &shape : shapes) {
        const std::size_t begin = shape[0], end = shape[1],
                          grain = shape[2];
        std::atomic<std::uint64_t> sum{0};
        pool.parallelFor(
            begin, end,
            [&](std::size_t i) {
                sum.fetch_add(i, std::memory_order_relaxed);
            },
            grain);
        std::uint64_t expected = 0;
        for (std::size_t i = begin; i < end; ++i)
            expected += i;
        EXPECT_EQ(sum.load(), expected)
            << "range [" << begin << ", " << end << ") grain " << grain;
    }
}

} // namespace
} // namespace mcdvfs
