/**
 * @file
 * Unit tests for the OPP voltage curve.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "power/opp.hh"

namespace mcdvfs
{
namespace
{

TEST(VoltageCurve, Endpoints)
{
    const VoltageCurve curve(megaHertz(100), megaHertz(1000), 0.8, 1.2);
    EXPECT_DOUBLE_EQ(curve.voltageAt(megaHertz(100)), 0.8);
    EXPECT_DOUBLE_EQ(curve.voltageAt(megaHertz(1000)), 1.2);
}

TEST(VoltageCurve, LinearMidpoint)
{
    const VoltageCurve curve(megaHertz(100), megaHertz(1000), 0.8, 1.2);
    EXPECT_NEAR(curve.voltageAt(megaHertz(550)), 1.0, 1e-12);
}

TEST(VoltageCurve, ClampsOutsideRange)
{
    const VoltageCurve curve(megaHertz(100), megaHertz(1000), 0.8, 1.2);
    EXPECT_DOUBLE_EQ(curve.voltageAt(megaHertz(50)), 0.8);
    EXPECT_DOUBLE_EQ(curve.voltageAt(megaHertz(2000)), 1.2);
}

TEST(VoltageCurve, MonotoneNonDecreasing)
{
    const VoltageCurve curve = VoltageCurve::paperCpu();
    Volts prev = 0.0;
    for (double mhz = 100; mhz <= 1000; mhz += 25) {
        const Volts v = curve.voltageAt(megaHertz(mhz));
        EXPECT_GE(v, prev);
        prev = v;
    }
}

TEST(VoltageCurve, PaperCurveTopsAt125V)
{
    // §III-C: "highest voltage being 1.25V" at 1 GHz.
    const VoltageCurve curve = VoltageCurve::paperCpu();
    EXPECT_DOUBLE_EQ(curve.voltageAt(megaHertz(1000)), 1.25);
    EXPECT_DOUBLE_EQ(curve.vMax(), 1.25);
}

TEST(VoltageCurve, Validation)
{
    EXPECT_THROW(VoltageCurve(0.0, megaHertz(1000), 0.8, 1.2),
                 FatalError);
    EXPECT_THROW(
        VoltageCurve(megaHertz(1000), megaHertz(100), 0.8, 1.2),
        FatalError);
    EXPECT_THROW(
        VoltageCurve(megaHertz(100), megaHertz(1000), 0.0, 1.2),
        FatalError);
    EXPECT_THROW(
        VoltageCurve(megaHertz(100), megaHertz(1000), 1.2, 0.8),
        FatalError);
}

} // namespace
} // namespace mcdvfs
