/**
 * @file
 * Unit tests for trace recording/replay.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "sim/sample_simulator.hh"
#include "trace/trace_generator.hh"
#include "trace/trace_io.hh"

namespace mcdvfs
{
namespace
{

PhaseSpec
mixedPhase()
{
    PhaseSpec spec;
    spec.hotFrac = 0.7;
    spec.warmFrac = 0.2;
    spec.coldSeqFrac = 0.5;
    return spec;
}

TEST(TraceIo, RecordReplayRoundTrip)
{
    TraceGenerator gen(mixedPhase(), 42);
    std::ostringstream os;
    recordTrace(gen, 5000, os);

    TraceGenerator reference(mixedPhase(), 42);
    TraceReplay replay = TraceReplay::fromString(os.str());
    ASSERT_EQ(replay.size(), 5000u);
    for (int i = 0; i < 5000; ++i) {
        const InstrRecord expected = reference.next();
        const InstrRecord actual = replay.next();
        ASSERT_EQ(actual.kind, expected.kind) << "instr " << i;
        if (isMemory(expected.kind))
            ASSERT_EQ(actual.addr, expected.addr) << "instr " << i;
    }
}

TEST(TraceIo, ReplayWrapsAround)
{
    TraceReplay replay = TraceReplay::fromString("A\nB\nL 1f40\n");
    EXPECT_EQ(replay.size(), 3u);
    EXPECT_FALSE(replay.wrapped());
    EXPECT_EQ(replay.next().kind, InstrKind::IntAlu);
    EXPECT_EQ(replay.next().kind, InstrKind::Branch);
    const InstrRecord load = replay.next();
    EXPECT_EQ(load.kind, InstrKind::Load);
    EXPECT_EQ(load.addr, 0x1f40u);
    EXPECT_TRUE(replay.wrapped());
    EXPECT_EQ(replay.next().kind, InstrKind::IntAlu);
}

TEST(TraceIo, AllKindsRoundTrip)
{
    TraceReplay replay =
        TraceReplay::fromString("A\nM\nF\nB\nL a0\nS b0\n");
    EXPECT_EQ(replay.next().kind, InstrKind::IntAlu);
    EXPECT_EQ(replay.next().kind, InstrKind::IntMul);
    EXPECT_EQ(replay.next().kind, InstrKind::FpOp);
    EXPECT_EQ(replay.next().kind, InstrKind::Branch);
    EXPECT_EQ(replay.next().addr, 0xa0u);
    const InstrRecord store = replay.next();
    EXPECT_EQ(store.kind, InstrKind::Store);
    EXPECT_EQ(store.addr, 0xb0u);
}

TEST(TraceIo, RejectsMalformedInput)
{
    EXPECT_THROW(TraceReplay::fromString(""), FatalError);
    EXPECT_THROW(TraceReplay::fromString("X\n"), FatalError);
    EXPECT_THROW(TraceReplay::fromString("L\n"), FatalError);
}

TEST(TraceIo, ReplayDrivesCharacterization)
{
    // Characterizing a replayed trace gives the same cache behaviour
    // as characterizing the generator it was recorded from.
    const PhaseSpec spec = mixedPhase();
    const Count n = 30'000;

    TraceGenerator gen(spec, 7);
    std::ostringstream os;
    recordTrace(gen, n, os);

    SampleSimulatorConfig config;
    config.simInstructionsPerSample = n;
    config.warmupInstructions = 0;

    SampleSimulator direct(config);
    const SampleProfile from_gen =
        direct.characterizeOne(spec, 7, n);

    SampleSimulator replayed(config);
    TraceReplay replay = TraceReplay::fromString(os.str());
    const SampleProfile from_replay =
        replayed.characterizeTrace(replay, n, spec);

    EXPECT_DOUBLE_EQ(from_replay.l1Mpki, from_gen.l1Mpki);
    EXPECT_DOUBLE_EQ(from_replay.l2Mpki, from_gen.l2Mpki);
    EXPECT_DOUBLE_EQ(from_replay.rowHitFrac, from_gen.rowHitFrac);
    EXPECT_DOUBLE_EQ(from_replay.dramWritesPerInstr,
                     from_gen.dramWritesPerInstr);
}

} // namespace
} // namespace mcdvfs
