# Empty dependencies file for calibration_regression_test.
# This may be replaced when dependencies are built.
