file(REMOVE_RECURSE
  "CMakeFiles/power_opp_test.dir/power_opp_test.cc.o"
  "CMakeFiles/power_opp_test.dir/power_opp_test.cc.o.d"
  "power_opp_test"
  "power_opp_test.pdb"
  "power_opp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_opp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
