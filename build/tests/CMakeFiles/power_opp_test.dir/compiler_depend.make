# Empty compiler generated dependencies file for power_opp_test.
# This may be replaced when dependencies are built.
