# Empty dependencies file for power_cpu_test.
# This may be replaced when dependencies are built.
