file(REMOVE_RECURSE
  "CMakeFiles/power_cpu_test.dir/power_cpu_test.cc.o"
  "CMakeFiles/power_cpu_test.dir/power_cpu_test.cc.o.d"
  "power_cpu_test"
  "power_cpu_test.pdb"
  "power_cpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_cpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
