file(REMOVE_RECURSE
  "CMakeFiles/power_dram_test.dir/power_dram_test.cc.o"
  "CMakeFiles/power_dram_test.dir/power_dram_test.cc.o.d"
  "power_dram_test"
  "power_dram_test.pdb"
  "power_dram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_dram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
