# Empty compiler generated dependencies file for power_dram_test.
# This may be replaced when dependencies are built.
