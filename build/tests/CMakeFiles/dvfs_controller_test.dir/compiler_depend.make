# Empty compiler generated dependencies file for dvfs_controller_test.
# This may be replaced when dependencies are built.
