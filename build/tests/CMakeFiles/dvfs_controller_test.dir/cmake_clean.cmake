file(REMOVE_RECURSE
  "CMakeFiles/dvfs_controller_test.dir/dvfs_controller_test.cc.o"
  "CMakeFiles/dvfs_controller_test.dir/dvfs_controller_test.cc.o.d"
  "dvfs_controller_test"
  "dvfs_controller_test.pdb"
  "dvfs_controller_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvfs_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
