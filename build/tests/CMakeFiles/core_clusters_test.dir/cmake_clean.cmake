file(REMOVE_RECURSE
  "CMakeFiles/core_clusters_test.dir/core_clusters_test.cc.o"
  "CMakeFiles/core_clusters_test.dir/core_clusters_test.cc.o.d"
  "core_clusters_test"
  "core_clusters_test.pdb"
  "core_clusters_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_clusters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
