# Empty compiler generated dependencies file for core_clusters_test.
# This may be replaced when dependencies are built.
