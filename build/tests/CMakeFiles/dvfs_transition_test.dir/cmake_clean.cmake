file(REMOVE_RECURSE
  "CMakeFiles/dvfs_transition_test.dir/dvfs_transition_test.cc.o"
  "CMakeFiles/dvfs_transition_test.dir/dvfs_transition_test.cc.o.d"
  "dvfs_transition_test"
  "dvfs_transition_test.pdb"
  "dvfs_transition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvfs_transition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
