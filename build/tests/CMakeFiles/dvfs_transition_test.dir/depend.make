# Empty dependencies file for dvfs_transition_test.
# This may be replaced when dependencies are built.
