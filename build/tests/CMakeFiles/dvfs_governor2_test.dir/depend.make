# Empty dependencies file for dvfs_governor2_test.
# This may be replaced when dependencies are built.
