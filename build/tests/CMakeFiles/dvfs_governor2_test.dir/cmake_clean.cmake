file(REMOVE_RECURSE
  "CMakeFiles/dvfs_governor2_test.dir/dvfs_governor2_test.cc.o"
  "CMakeFiles/dvfs_governor2_test.dir/dvfs_governor2_test.cc.o.d"
  "dvfs_governor2_test"
  "dvfs_governor2_test.pdb"
  "dvfs_governor2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvfs_governor2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
