# Empty dependencies file for runtime_governor_test.
# This may be replaced when dependencies are built.
