file(REMOVE_RECURSE
  "CMakeFiles/runtime_governor_test.dir/runtime_governor_test.cc.o"
  "CMakeFiles/runtime_governor_test.dir/runtime_governor_test.cc.o.d"
  "runtime_governor_test"
  "runtime_governor_test.pdb"
  "runtime_governor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_governor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
