# Empty dependencies file for trace_phase_test.
# This may be replaced when dependencies are built.
