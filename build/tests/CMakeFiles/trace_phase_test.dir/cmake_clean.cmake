file(REMOVE_RECURSE
  "CMakeFiles/trace_phase_test.dir/trace_phase_test.cc.o"
  "CMakeFiles/trace_phase_test.dir/trace_phase_test.cc.o.d"
  "trace_phase_test"
  "trace_phase_test.pdb"
  "trace_phase_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_phase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
