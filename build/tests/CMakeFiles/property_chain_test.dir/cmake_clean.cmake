file(REMOVE_RECURSE
  "CMakeFiles/property_chain_test.dir/property_chain_test.cc.o"
  "CMakeFiles/property_chain_test.dir/property_chain_test.cc.o.d"
  "property_chain_test"
  "property_chain_test.pdb"
  "property_chain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_chain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
