# Empty dependencies file for property_chain_test.
# This may be replaced when dependencies are built.
