file(REMOVE_RECURSE
  "CMakeFiles/dvfs_ladder_test.dir/dvfs_ladder_test.cc.o"
  "CMakeFiles/dvfs_ladder_test.dir/dvfs_ladder_test.cc.o.d"
  "dvfs_ladder_test"
  "dvfs_ladder_test.pdb"
  "dvfs_ladder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvfs_ladder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
