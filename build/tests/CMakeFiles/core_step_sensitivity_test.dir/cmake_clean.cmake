file(REMOVE_RECURSE
  "CMakeFiles/core_step_sensitivity_test.dir/core_step_sensitivity_test.cc.o"
  "CMakeFiles/core_step_sensitivity_test.dir/core_step_sensitivity_test.cc.o.d"
  "core_step_sensitivity_test"
  "core_step_sensitivity_test.pdb"
  "core_step_sensitivity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_step_sensitivity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
