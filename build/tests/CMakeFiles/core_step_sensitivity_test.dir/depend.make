# Empty dependencies file for core_step_sensitivity_test.
# This may be replaced when dependencies are built.
