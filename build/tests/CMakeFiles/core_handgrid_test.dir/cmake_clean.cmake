file(REMOVE_RECURSE
  "CMakeFiles/core_handgrid_test.dir/core_handgrid_test.cc.o"
  "CMakeFiles/core_handgrid_test.dir/core_handgrid_test.cc.o.d"
  "core_handgrid_test"
  "core_handgrid_test.pdb"
  "core_handgrid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_handgrid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
