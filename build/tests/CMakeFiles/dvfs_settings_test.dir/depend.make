# Empty dependencies file for dvfs_settings_test.
# This may be replaced when dependencies are built.
