file(REMOVE_RECURSE
  "CMakeFiles/dvfs_settings_test.dir/dvfs_settings_test.cc.o"
  "CMakeFiles/dvfs_settings_test.dir/dvfs_settings_test.cc.o.d"
  "dvfs_settings_test"
  "dvfs_settings_test.pdb"
  "dvfs_settings_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvfs_settings_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
