file(REMOVE_RECURSE
  "CMakeFiles/runtime_emin_predictor_test.dir/runtime_emin_predictor_test.cc.o"
  "CMakeFiles/runtime_emin_predictor_test.dir/runtime_emin_predictor_test.cc.o.d"
  "runtime_emin_predictor_test"
  "runtime_emin_predictor_test.pdb"
  "runtime_emin_predictor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_emin_predictor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
