# Empty dependencies file for runtime_emin_predictor_test.
# This may be replaced when dependencies are built.
