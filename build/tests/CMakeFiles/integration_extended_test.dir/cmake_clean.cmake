file(REMOVE_RECURSE
  "CMakeFiles/integration_extended_test.dir/integration_extended_test.cc.o"
  "CMakeFiles/integration_extended_test.dir/integration_extended_test.cc.o.d"
  "integration_extended_test"
  "integration_extended_test.pdb"
  "integration_extended_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_extended_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
