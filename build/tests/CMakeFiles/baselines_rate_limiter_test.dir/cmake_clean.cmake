file(REMOVE_RECURSE
  "CMakeFiles/baselines_rate_limiter_test.dir/baselines_rate_limiter_test.cc.o"
  "CMakeFiles/baselines_rate_limiter_test.dir/baselines_rate_limiter_test.cc.o.d"
  "baselines_rate_limiter_test"
  "baselines_rate_limiter_test.pdb"
  "baselines_rate_limiter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_rate_limiter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
