# Empty compiler generated dependencies file for baselines_rate_limiter_test.
# This may be replaced when dependencies are built.
