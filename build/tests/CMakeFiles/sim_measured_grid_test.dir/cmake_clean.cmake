file(REMOVE_RECURSE
  "CMakeFiles/sim_measured_grid_test.dir/sim_measured_grid_test.cc.o"
  "CMakeFiles/sim_measured_grid_test.dir/sim_measured_grid_test.cc.o.d"
  "sim_measured_grid_test"
  "sim_measured_grid_test.pdb"
  "sim_measured_grid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_measured_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
