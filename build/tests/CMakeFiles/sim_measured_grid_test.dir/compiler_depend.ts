# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for sim_measured_grid_test.
