file(REMOVE_RECURSE
  "CMakeFiles/mem_prefetch_test.dir/mem_prefetch_test.cc.o"
  "CMakeFiles/mem_prefetch_test.dir/mem_prefetch_test.cc.o.d"
  "mem_prefetch_test"
  "mem_prefetch_test.pdb"
  "mem_prefetch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_prefetch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
