# Empty dependencies file for mem_prefetch_test.
# This may be replaced when dependencies are built.
