# Empty compiler generated dependencies file for runtime_phase_detector_test.
# This may be replaced when dependencies are built.
