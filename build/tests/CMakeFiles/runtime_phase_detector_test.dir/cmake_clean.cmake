file(REMOVE_RECURSE
  "CMakeFiles/runtime_phase_detector_test.dir/runtime_phase_detector_test.cc.o"
  "CMakeFiles/runtime_phase_detector_test.dir/runtime_phase_detector_test.cc.o.d"
  "runtime_phase_detector_test"
  "runtime_phase_detector_test.pdb"
  "runtime_phase_detector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_phase_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
