# Empty compiler generated dependencies file for repro_suite_test.
# This may be replaced when dependencies are built.
