file(REMOVE_RECURSE
  "CMakeFiles/repro_suite_test.dir/repro_suite_test.cc.o"
  "CMakeFiles/repro_suite_test.dir/repro_suite_test.cc.o.d"
  "repro_suite_test"
  "repro_suite_test.pdb"
  "repro_suite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_suite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
