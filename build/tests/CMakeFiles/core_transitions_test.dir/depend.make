# Empty dependencies file for core_transitions_test.
# This may be replaced when dependencies are built.
