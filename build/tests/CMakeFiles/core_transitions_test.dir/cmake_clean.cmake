file(REMOVE_RECURSE
  "CMakeFiles/core_transitions_test.dir/core_transitions_test.cc.o"
  "CMakeFiles/core_transitions_test.dir/core_transitions_test.cc.o.d"
  "core_transitions_test"
  "core_transitions_test.pdb"
  "core_transitions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_transitions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
