# Empty compiler generated dependencies file for core_inefficiency_test.
# This may be replaced when dependencies are built.
