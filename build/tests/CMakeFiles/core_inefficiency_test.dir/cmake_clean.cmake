file(REMOVE_RECURSE
  "CMakeFiles/core_inefficiency_test.dir/core_inefficiency_test.cc.o"
  "CMakeFiles/core_inefficiency_test.dir/core_inefficiency_test.cc.o.d"
  "core_inefficiency_test"
  "core_inefficiency_test.pdb"
  "core_inefficiency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_inefficiency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
