file(REMOVE_RECURSE
  "CMakeFiles/common_args_test.dir/common_args_test.cc.o"
  "CMakeFiles/common_args_test.dir/common_args_test.cc.o.d"
  "common_args_test"
  "common_args_test.pdb"
  "common_args_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_args_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
