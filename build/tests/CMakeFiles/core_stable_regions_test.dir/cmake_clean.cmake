file(REMOVE_RECURSE
  "CMakeFiles/core_stable_regions_test.dir/core_stable_regions_test.cc.o"
  "CMakeFiles/core_stable_regions_test.dir/core_stable_regions_test.cc.o.d"
  "core_stable_regions_test"
  "core_stable_regions_test.pdb"
  "core_stable_regions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_stable_regions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
