# Empty dependencies file for core_stable_regions_test.
# This may be replaced when dependencies are built.
