
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace_workloads_test.cc" "tests/CMakeFiles/trace_workloads_test.dir/trace_workloads_test.cc.o" "gcc" "tests/CMakeFiles/trace_workloads_test.dir/trace_workloads_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/repro/CMakeFiles/mcdvfs_repro.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/mcdvfs_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/mcdvfs_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/mcdvfs_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mcdvfs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mcdvfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mcdvfs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/mcdvfs_power.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mcdvfs_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/dvfs/CMakeFiles/mcdvfs_dvfs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mcdvfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
