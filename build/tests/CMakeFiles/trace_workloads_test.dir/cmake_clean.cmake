file(REMOVE_RECURSE
  "CMakeFiles/trace_workloads_test.dir/trace_workloads_test.cc.o"
  "CMakeFiles/trace_workloads_test.dir/trace_workloads_test.cc.o.d"
  "trace_workloads_test"
  "trace_workloads_test.pdb"
  "trace_workloads_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_workloads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
