file(REMOVE_RECURSE
  "CMakeFiles/power_battery_test.dir/power_battery_test.cc.o"
  "CMakeFiles/power_battery_test.dir/power_battery_test.cc.o.d"
  "power_battery_test"
  "power_battery_test.pdb"
  "power_battery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_battery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
