file(REMOVE_RECURSE
  "CMakeFiles/baselines_comparison_test.dir/baselines_comparison_test.cc.o"
  "CMakeFiles/baselines_comparison_test.dir/baselines_comparison_test.cc.o.d"
  "baselines_comparison_test"
  "baselines_comparison_test.pdb"
  "baselines_comparison_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_comparison_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
