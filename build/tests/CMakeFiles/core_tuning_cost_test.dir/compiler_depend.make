# Empty compiler generated dependencies file for core_tuning_cost_test.
# This may be replaced when dependencies are built.
