# Empty dependencies file for core_handgrid2_test.
# This may be replaced when dependencies are built.
