file(REMOVE_RECURSE
  "CMakeFiles/core_handgrid2_test.dir/core_handgrid2_test.cc.o"
  "CMakeFiles/core_handgrid2_test.dir/core_handgrid2_test.cc.o.d"
  "core_handgrid2_test"
  "core_handgrid2_test.pdb"
  "core_handgrid2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_handgrid2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
