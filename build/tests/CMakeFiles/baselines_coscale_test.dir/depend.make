# Empty dependencies file for baselines_coscale_test.
# This may be replaced when dependencies are built.
