file(REMOVE_RECURSE
  "CMakeFiles/baselines_coscale_test.dir/baselines_coscale_test.cc.o"
  "CMakeFiles/baselines_coscale_test.dir/baselines_coscale_test.cc.o.d"
  "baselines_coscale_test"
  "baselines_coscale_test.pdb"
  "baselines_coscale_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_coscale_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
