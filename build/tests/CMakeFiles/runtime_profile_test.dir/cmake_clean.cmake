file(REMOVE_RECURSE
  "CMakeFiles/runtime_profile_test.dir/runtime_profile_test.cc.o"
  "CMakeFiles/runtime_profile_test.dir/runtime_profile_test.cc.o.d"
  "runtime_profile_test"
  "runtime_profile_test.pdb"
  "runtime_profile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
