# Empty compiler generated dependencies file for runtime_profile_test.
# This may be replaced when dependencies are built.
