file(REMOVE_RECURSE
  "CMakeFiles/core_tradeoff_test.dir/core_tradeoff_test.cc.o"
  "CMakeFiles/core_tradeoff_test.dir/core_tradeoff_test.cc.o.d"
  "core_tradeoff_test"
  "core_tradeoff_test.pdb"
  "core_tradeoff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tradeoff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
