# Empty dependencies file for core_tradeoff_test.
# This may be replaced when dependencies are built.
