file(REMOVE_RECURSE
  "CMakeFiles/runtime_tuning_loop_test.dir/runtime_tuning_loop_test.cc.o"
  "CMakeFiles/runtime_tuning_loop_test.dir/runtime_tuning_loop_test.cc.o.d"
  "runtime_tuning_loop_test"
  "runtime_tuning_loop_test.pdb"
  "runtime_tuning_loop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_tuning_loop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
