# Empty dependencies file for runtime_tuning_loop_test.
# This may be replaced when dependencies are built.
