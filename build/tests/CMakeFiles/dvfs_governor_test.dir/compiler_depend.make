# Empty compiler generated dependencies file for dvfs_governor_test.
# This may be replaced when dependencies are built.
