file(REMOVE_RECURSE
  "CMakeFiles/dvfs_governor_test.dir/dvfs_governor_test.cc.o"
  "CMakeFiles/dvfs_governor_test.dir/dvfs_governor_test.cc.o.d"
  "dvfs_governor_test"
  "dvfs_governor_test.pdb"
  "dvfs_governor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvfs_governor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
