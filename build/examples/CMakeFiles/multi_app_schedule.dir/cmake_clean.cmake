file(REMOVE_RECURSE
  "CMakeFiles/multi_app_schedule.dir/multi_app_schedule.cpp.o"
  "CMakeFiles/multi_app_schedule.dir/multi_app_schedule.cpp.o.d"
  "multi_app_schedule"
  "multi_app_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_app_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
