# Empty compiler generated dependencies file for multi_app_schedule.
# This may be replaced when dependencies are built.
