file(REMOVE_RECURSE
  "CMakeFiles/characterization_report.dir/characterization_report.cpp.o"
  "CMakeFiles/characterization_report.dir/characterization_report.cpp.o.d"
  "characterization_report"
  "characterization_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/characterization_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
