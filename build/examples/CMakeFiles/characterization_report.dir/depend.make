# Empty dependencies file for characterization_report.
# This may be replaced when dependencies are built.
