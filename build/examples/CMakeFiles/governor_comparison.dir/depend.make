# Empty dependencies file for governor_comparison.
# This may be replaced when dependencies are built.
