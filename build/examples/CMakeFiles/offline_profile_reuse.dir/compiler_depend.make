# Empty compiler generated dependencies file for offline_profile_reuse.
# This may be replaced when dependencies are built.
