file(REMOVE_RECURSE
  "CMakeFiles/offline_profile_reuse.dir/offline_profile_reuse.cpp.o"
  "CMakeFiles/offline_profile_reuse.dir/offline_profile_reuse.cpp.o.d"
  "offline_profile_reuse"
  "offline_profile_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_profile_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
