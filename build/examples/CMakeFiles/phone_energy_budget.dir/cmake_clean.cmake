file(REMOVE_RECURSE
  "CMakeFiles/phone_energy_budget.dir/phone_energy_budget.cpp.o"
  "CMakeFiles/phone_energy_budget.dir/phone_energy_budget.cpp.o.d"
  "phone_energy_budget"
  "phone_energy_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phone_energy_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
