# Empty dependencies file for phone_energy_budget.
# This may be replaced when dependencies are built.
