file(REMOVE_RECURSE
  "CMakeFiles/fig07_stable_regions_gcc_lbm.dir/fig07_stable_regions_gcc_lbm.cpp.o"
  "CMakeFiles/fig07_stable_regions_gcc_lbm.dir/fig07_stable_regions_gcc_lbm.cpp.o.d"
  "fig07_stable_regions_gcc_lbm"
  "fig07_stable_regions_gcc_lbm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_stable_regions_gcc_lbm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
