# Empty dependencies file for fig07_stable_regions_gcc_lbm.
# This may be replaced when dependencies are built.
