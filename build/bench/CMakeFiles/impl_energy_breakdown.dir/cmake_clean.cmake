file(REMOVE_RECURSE
  "CMakeFiles/impl_energy_breakdown.dir/impl_energy_breakdown.cpp.o"
  "CMakeFiles/impl_energy_breakdown.dir/impl_energy_breakdown.cpp.o.d"
  "impl_energy_breakdown"
  "impl_energy_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impl_energy_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
