# Empty compiler generated dependencies file for impl_energy_breakdown.
# This may be replaced when dependencies are built.
