file(REMOVE_RECURSE
  "CMakeFiles/impl_emin_prediction.dir/impl_emin_prediction.cpp.o"
  "CMakeFiles/impl_emin_prediction.dir/impl_emin_prediction.cpp.o.d"
  "impl_emin_prediction"
  "impl_emin_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impl_emin_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
