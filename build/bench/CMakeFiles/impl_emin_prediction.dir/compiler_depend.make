# Empty compiler generated dependencies file for impl_emin_prediction.
# This may be replaced when dependencies are built.
