file(REMOVE_RECURSE
  "CMakeFiles/fig03_optimal_settings.dir/fig03_optimal_settings.cpp.o"
  "CMakeFiles/fig03_optimal_settings.dir/fig03_optimal_settings.cpp.o.d"
  "fig03_optimal_settings"
  "fig03_optimal_settings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_optimal_settings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
