# Empty compiler generated dependencies file for fig03_optimal_settings.
# This may be replaced when dependencies are built.
