# Empty compiler generated dependencies file for impl_baseline_comparison.
# This may be replaced when dependencies are built.
