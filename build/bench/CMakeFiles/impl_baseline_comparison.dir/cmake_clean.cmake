file(REMOVE_RECURSE
  "CMakeFiles/impl_baseline_comparison.dir/impl_baseline_comparison.cpp.o"
  "CMakeFiles/impl_baseline_comparison.dir/impl_baseline_comparison.cpp.o.d"
  "impl_baseline_comparison"
  "impl_baseline_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impl_baseline_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
