file(REMOVE_RECURSE
  "CMakeFiles/fig08_transitions.dir/fig08_transitions.cpp.o"
  "CMakeFiles/fig08_transitions.dir/fig08_transitions.cpp.o.d"
  "fig08_transitions"
  "fig08_transitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_transitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
