# Empty dependencies file for fig08_transitions.
# This may be replaced when dependencies are built.
