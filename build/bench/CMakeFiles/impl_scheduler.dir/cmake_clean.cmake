file(REMOVE_RECURSE
  "CMakeFiles/impl_scheduler.dir/impl_scheduler.cpp.o"
  "CMakeFiles/impl_scheduler.dir/impl_scheduler.cpp.o.d"
  "impl_scheduler"
  "impl_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impl_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
