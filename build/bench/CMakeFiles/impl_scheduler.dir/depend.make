# Empty dependencies file for impl_scheduler.
# This may be replaced when dependencies are built.
