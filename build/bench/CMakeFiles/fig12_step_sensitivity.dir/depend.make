# Empty dependencies file for fig12_step_sensitivity.
# This may be replaced when dependencies are built.
