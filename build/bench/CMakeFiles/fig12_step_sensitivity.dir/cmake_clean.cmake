file(REMOVE_RECURSE
  "CMakeFiles/fig12_step_sensitivity.dir/fig12_step_sensitivity.cpp.o"
  "CMakeFiles/fig12_step_sensitivity.dir/fig12_step_sensitivity.cpp.o.d"
  "fig12_step_sensitivity"
  "fig12_step_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_step_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
