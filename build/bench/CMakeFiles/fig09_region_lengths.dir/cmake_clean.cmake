file(REMOVE_RECURSE
  "CMakeFiles/fig09_region_lengths.dir/fig09_region_lengths.cpp.o"
  "CMakeFiles/fig09_region_lengths.dir/fig09_region_lengths.cpp.o.d"
  "fig09_region_lengths"
  "fig09_region_lengths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_region_lengths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
