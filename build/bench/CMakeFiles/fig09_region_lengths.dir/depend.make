# Empty dependencies file for fig09_region_lengths.
# This may be replaced when dependencies are built.
