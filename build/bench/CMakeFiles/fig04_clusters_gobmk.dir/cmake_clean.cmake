file(REMOVE_RECURSE
  "CMakeFiles/fig04_clusters_gobmk.dir/fig04_clusters_gobmk.cpp.o"
  "CMakeFiles/fig04_clusters_gobmk.dir/fig04_clusters_gobmk.cpp.o.d"
  "fig04_clusters_gobmk"
  "fig04_clusters_gobmk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_clusters_gobmk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
