# Empty dependencies file for fig04_clusters_gobmk.
# This may be replaced when dependencies are built.
