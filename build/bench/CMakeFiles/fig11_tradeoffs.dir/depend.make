# Empty dependencies file for fig11_tradeoffs.
# This may be replaced when dependencies are built.
