file(REMOVE_RECURSE
  "CMakeFiles/fig06_stable_regions_lbm.dir/fig06_stable_regions_lbm.cpp.o"
  "CMakeFiles/fig06_stable_regions_lbm.dir/fig06_stable_regions_lbm.cpp.o.d"
  "fig06_stable_regions_lbm"
  "fig06_stable_regions_lbm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_stable_regions_lbm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
