# Empty compiler generated dependencies file for fig06_stable_regions_lbm.
# This may be replaced when dependencies are built.
