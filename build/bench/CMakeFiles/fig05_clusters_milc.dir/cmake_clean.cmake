file(REMOVE_RECURSE
  "CMakeFiles/fig05_clusters_milc.dir/fig05_clusters_milc.cpp.o"
  "CMakeFiles/fig05_clusters_milc.dir/fig05_clusters_milc.cpp.o.d"
  "fig05_clusters_milc"
  "fig05_clusters_milc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_clusters_milc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
