# Empty compiler generated dependencies file for fig05_clusters_milc.
# This may be replaced when dependencies are built.
