file(REMOVE_RECURSE
  "CMakeFiles/impl_retune_schedules.dir/impl_retune_schedules.cpp.o"
  "CMakeFiles/impl_retune_schedules.dir/impl_retune_schedules.cpp.o.d"
  "impl_retune_schedules"
  "impl_retune_schedules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impl_retune_schedules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
