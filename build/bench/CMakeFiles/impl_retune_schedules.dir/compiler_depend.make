# Empty compiler generated dependencies file for impl_retune_schedules.
# This may be replaced when dependencies are built.
