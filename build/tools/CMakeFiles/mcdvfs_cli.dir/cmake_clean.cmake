file(REMOVE_RECURSE
  "CMakeFiles/mcdvfs_cli.dir/mcdvfs_cli.cc.o"
  "CMakeFiles/mcdvfs_cli.dir/mcdvfs_cli.cc.o.d"
  "mcdvfs_cli"
  "mcdvfs_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcdvfs_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
