# Empty dependencies file for mcdvfs_cli.
# This may be replaced when dependencies are built.
