file(REMOVE_RECURSE
  "CMakeFiles/mcdvfs_trace.dir/phase.cc.o"
  "CMakeFiles/mcdvfs_trace.dir/phase.cc.o.d"
  "CMakeFiles/mcdvfs_trace.dir/trace_generator.cc.o"
  "CMakeFiles/mcdvfs_trace.dir/trace_generator.cc.o.d"
  "CMakeFiles/mcdvfs_trace.dir/trace_io.cc.o"
  "CMakeFiles/mcdvfs_trace.dir/trace_io.cc.o.d"
  "CMakeFiles/mcdvfs_trace.dir/workloads.cc.o"
  "CMakeFiles/mcdvfs_trace.dir/workloads.cc.o.d"
  "libmcdvfs_trace.a"
  "libmcdvfs_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcdvfs_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
