file(REMOVE_RECURSE
  "libmcdvfs_trace.a"
)
