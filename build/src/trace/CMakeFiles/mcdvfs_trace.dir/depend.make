# Empty dependencies file for mcdvfs_trace.
# This may be replaced when dependencies are built.
