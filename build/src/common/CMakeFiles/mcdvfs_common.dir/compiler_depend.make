# Empty compiler generated dependencies file for mcdvfs_common.
# This may be replaced when dependencies are built.
