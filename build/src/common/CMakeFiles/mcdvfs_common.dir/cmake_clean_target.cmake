file(REMOVE_RECURSE
  "libmcdvfs_common.a"
)
