file(REMOVE_RECURSE
  "CMakeFiles/mcdvfs_common.dir/args.cc.o"
  "CMakeFiles/mcdvfs_common.dir/args.cc.o.d"
  "CMakeFiles/mcdvfs_common.dir/logging.cc.o"
  "CMakeFiles/mcdvfs_common.dir/logging.cc.o.d"
  "CMakeFiles/mcdvfs_common.dir/rng.cc.o"
  "CMakeFiles/mcdvfs_common.dir/rng.cc.o.d"
  "CMakeFiles/mcdvfs_common.dir/stats.cc.o"
  "CMakeFiles/mcdvfs_common.dir/stats.cc.o.d"
  "CMakeFiles/mcdvfs_common.dir/table.cc.o"
  "CMakeFiles/mcdvfs_common.dir/table.cc.o.d"
  "libmcdvfs_common.a"
  "libmcdvfs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcdvfs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
