file(REMOVE_RECURSE
  "libmcdvfs_mem.a"
)
