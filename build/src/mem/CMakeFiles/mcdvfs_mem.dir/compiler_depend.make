# Empty compiler generated dependencies file for mcdvfs_mem.
# This may be replaced when dependencies are built.
