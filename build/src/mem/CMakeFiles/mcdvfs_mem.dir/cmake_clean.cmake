file(REMOVE_RECURSE
  "CMakeFiles/mcdvfs_mem.dir/cache.cc.o"
  "CMakeFiles/mcdvfs_mem.dir/cache.cc.o.d"
  "CMakeFiles/mcdvfs_mem.dir/cache_hierarchy.cc.o"
  "CMakeFiles/mcdvfs_mem.dir/cache_hierarchy.cc.o.d"
  "CMakeFiles/mcdvfs_mem.dir/dram.cc.o"
  "CMakeFiles/mcdvfs_mem.dir/dram.cc.o.d"
  "libmcdvfs_mem.a"
  "libmcdvfs_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcdvfs_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
