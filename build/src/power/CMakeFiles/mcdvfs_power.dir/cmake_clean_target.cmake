file(REMOVE_RECURSE
  "libmcdvfs_power.a"
)
