file(REMOVE_RECURSE
  "CMakeFiles/mcdvfs_power.dir/battery.cc.o"
  "CMakeFiles/mcdvfs_power.dir/battery.cc.o.d"
  "CMakeFiles/mcdvfs_power.dir/cpu_power.cc.o"
  "CMakeFiles/mcdvfs_power.dir/cpu_power.cc.o.d"
  "CMakeFiles/mcdvfs_power.dir/dram_power.cc.o"
  "CMakeFiles/mcdvfs_power.dir/dram_power.cc.o.d"
  "CMakeFiles/mcdvfs_power.dir/opp.cc.o"
  "CMakeFiles/mcdvfs_power.dir/opp.cc.o.d"
  "libmcdvfs_power.a"
  "libmcdvfs_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcdvfs_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
