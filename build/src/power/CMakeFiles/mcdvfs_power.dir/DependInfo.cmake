
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/battery.cc" "src/power/CMakeFiles/mcdvfs_power.dir/battery.cc.o" "gcc" "src/power/CMakeFiles/mcdvfs_power.dir/battery.cc.o.d"
  "/root/repo/src/power/cpu_power.cc" "src/power/CMakeFiles/mcdvfs_power.dir/cpu_power.cc.o" "gcc" "src/power/CMakeFiles/mcdvfs_power.dir/cpu_power.cc.o.d"
  "/root/repo/src/power/dram_power.cc" "src/power/CMakeFiles/mcdvfs_power.dir/dram_power.cc.o" "gcc" "src/power/CMakeFiles/mcdvfs_power.dir/dram_power.cc.o.d"
  "/root/repo/src/power/opp.cc" "src/power/CMakeFiles/mcdvfs_power.dir/opp.cc.o" "gcc" "src/power/CMakeFiles/mcdvfs_power.dir/opp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mcdvfs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mcdvfs_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
