# Empty dependencies file for mcdvfs_power.
# This may be replaced when dependencies are built.
