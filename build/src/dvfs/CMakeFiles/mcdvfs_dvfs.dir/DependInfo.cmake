
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dvfs/dvfs_controller.cc" "src/dvfs/CMakeFiles/mcdvfs_dvfs.dir/dvfs_controller.cc.o" "gcc" "src/dvfs/CMakeFiles/mcdvfs_dvfs.dir/dvfs_controller.cc.o.d"
  "/root/repo/src/dvfs/frequency_ladder.cc" "src/dvfs/CMakeFiles/mcdvfs_dvfs.dir/frequency_ladder.cc.o" "gcc" "src/dvfs/CMakeFiles/mcdvfs_dvfs.dir/frequency_ladder.cc.o.d"
  "/root/repo/src/dvfs/governor.cc" "src/dvfs/CMakeFiles/mcdvfs_dvfs.dir/governor.cc.o" "gcc" "src/dvfs/CMakeFiles/mcdvfs_dvfs.dir/governor.cc.o.d"
  "/root/repo/src/dvfs/settings_space.cc" "src/dvfs/CMakeFiles/mcdvfs_dvfs.dir/settings_space.cc.o" "gcc" "src/dvfs/CMakeFiles/mcdvfs_dvfs.dir/settings_space.cc.o.d"
  "/root/repo/src/dvfs/transition.cc" "src/dvfs/CMakeFiles/mcdvfs_dvfs.dir/transition.cc.o" "gcc" "src/dvfs/CMakeFiles/mcdvfs_dvfs.dir/transition.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mcdvfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
