file(REMOVE_RECURSE
  "libmcdvfs_dvfs.a"
)
