# Empty compiler generated dependencies file for mcdvfs_dvfs.
# This may be replaced when dependencies are built.
