file(REMOVE_RECURSE
  "CMakeFiles/mcdvfs_dvfs.dir/dvfs_controller.cc.o"
  "CMakeFiles/mcdvfs_dvfs.dir/dvfs_controller.cc.o.d"
  "CMakeFiles/mcdvfs_dvfs.dir/frequency_ladder.cc.o"
  "CMakeFiles/mcdvfs_dvfs.dir/frequency_ladder.cc.o.d"
  "CMakeFiles/mcdvfs_dvfs.dir/governor.cc.o"
  "CMakeFiles/mcdvfs_dvfs.dir/governor.cc.o.d"
  "CMakeFiles/mcdvfs_dvfs.dir/settings_space.cc.o"
  "CMakeFiles/mcdvfs_dvfs.dir/settings_space.cc.o.d"
  "CMakeFiles/mcdvfs_dvfs.dir/transition.cc.o"
  "CMakeFiles/mcdvfs_dvfs.dir/transition.cc.o.d"
  "libmcdvfs_dvfs.a"
  "libmcdvfs_dvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcdvfs_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
