# Empty compiler generated dependencies file for mcdvfs_baselines.
# This may be replaced when dependencies are built.
