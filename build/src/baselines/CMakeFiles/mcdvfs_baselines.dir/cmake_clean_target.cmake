file(REMOVE_RECURSE
  "libmcdvfs_baselines.a"
)
