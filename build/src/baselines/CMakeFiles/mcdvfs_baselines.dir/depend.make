# Empty dependencies file for mcdvfs_baselines.
# This may be replaced when dependencies are built.
