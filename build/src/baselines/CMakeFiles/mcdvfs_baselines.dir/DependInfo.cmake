
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/comparison.cc" "src/baselines/CMakeFiles/mcdvfs_baselines.dir/comparison.cc.o" "gcc" "src/baselines/CMakeFiles/mcdvfs_baselines.dir/comparison.cc.o.d"
  "/root/repo/src/baselines/coscale.cc" "src/baselines/CMakeFiles/mcdvfs_baselines.dir/coscale.cc.o" "gcc" "src/baselines/CMakeFiles/mcdvfs_baselines.dir/coscale.cc.o.d"
  "/root/repo/src/baselines/rate_limiter.cc" "src/baselines/CMakeFiles/mcdvfs_baselines.dir/rate_limiter.cc.o" "gcc" "src/baselines/CMakeFiles/mcdvfs_baselines.dir/rate_limiter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mcdvfs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/mcdvfs_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mcdvfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mcdvfs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/mcdvfs_power.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mcdvfs_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/dvfs/CMakeFiles/mcdvfs_dvfs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mcdvfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
