file(REMOVE_RECURSE
  "CMakeFiles/mcdvfs_baselines.dir/comparison.cc.o"
  "CMakeFiles/mcdvfs_baselines.dir/comparison.cc.o.d"
  "CMakeFiles/mcdvfs_baselines.dir/coscale.cc.o"
  "CMakeFiles/mcdvfs_baselines.dir/coscale.cc.o.d"
  "CMakeFiles/mcdvfs_baselines.dir/rate_limiter.cc.o"
  "CMakeFiles/mcdvfs_baselines.dir/rate_limiter.cc.o.d"
  "libmcdvfs_baselines.a"
  "libmcdvfs_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcdvfs_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
