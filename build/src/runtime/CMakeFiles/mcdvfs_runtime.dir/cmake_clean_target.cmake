file(REMOVE_RECURSE
  "libmcdvfs_runtime.a"
)
