# Empty compiler generated dependencies file for mcdvfs_runtime.
# This may be replaced when dependencies are built.
