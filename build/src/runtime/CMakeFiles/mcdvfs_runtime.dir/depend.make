# Empty dependencies file for mcdvfs_runtime.
# This may be replaced when dependencies are built.
