
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/emin_predictor.cc" "src/runtime/CMakeFiles/mcdvfs_runtime.dir/emin_predictor.cc.o" "gcc" "src/runtime/CMakeFiles/mcdvfs_runtime.dir/emin_predictor.cc.o.d"
  "/root/repo/src/runtime/inefficiency_governor.cc" "src/runtime/CMakeFiles/mcdvfs_runtime.dir/inefficiency_governor.cc.o" "gcc" "src/runtime/CMakeFiles/mcdvfs_runtime.dir/inefficiency_governor.cc.o.d"
  "/root/repo/src/runtime/offline_profile.cc" "src/runtime/CMakeFiles/mcdvfs_runtime.dir/offline_profile.cc.o" "gcc" "src/runtime/CMakeFiles/mcdvfs_runtime.dir/offline_profile.cc.o.d"
  "/root/repo/src/runtime/phase_detector.cc" "src/runtime/CMakeFiles/mcdvfs_runtime.dir/phase_detector.cc.o" "gcc" "src/runtime/CMakeFiles/mcdvfs_runtime.dir/phase_detector.cc.o.d"
  "/root/repo/src/runtime/stability_predictor.cc" "src/runtime/CMakeFiles/mcdvfs_runtime.dir/stability_predictor.cc.o" "gcc" "src/runtime/CMakeFiles/mcdvfs_runtime.dir/stability_predictor.cc.o.d"
  "/root/repo/src/runtime/tuning_loop.cc" "src/runtime/CMakeFiles/mcdvfs_runtime.dir/tuning_loop.cc.o" "gcc" "src/runtime/CMakeFiles/mcdvfs_runtime.dir/tuning_loop.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mcdvfs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mcdvfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mcdvfs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/mcdvfs_power.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mcdvfs_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/dvfs/CMakeFiles/mcdvfs_dvfs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mcdvfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
