file(REMOVE_RECURSE
  "CMakeFiles/mcdvfs_runtime.dir/emin_predictor.cc.o"
  "CMakeFiles/mcdvfs_runtime.dir/emin_predictor.cc.o.d"
  "CMakeFiles/mcdvfs_runtime.dir/inefficiency_governor.cc.o"
  "CMakeFiles/mcdvfs_runtime.dir/inefficiency_governor.cc.o.d"
  "CMakeFiles/mcdvfs_runtime.dir/offline_profile.cc.o"
  "CMakeFiles/mcdvfs_runtime.dir/offline_profile.cc.o.d"
  "CMakeFiles/mcdvfs_runtime.dir/phase_detector.cc.o"
  "CMakeFiles/mcdvfs_runtime.dir/phase_detector.cc.o.d"
  "CMakeFiles/mcdvfs_runtime.dir/stability_predictor.cc.o"
  "CMakeFiles/mcdvfs_runtime.dir/stability_predictor.cc.o.d"
  "CMakeFiles/mcdvfs_runtime.dir/tuning_loop.cc.o"
  "CMakeFiles/mcdvfs_runtime.dir/tuning_loop.cc.o.d"
  "libmcdvfs_runtime.a"
  "libmcdvfs_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcdvfs_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
