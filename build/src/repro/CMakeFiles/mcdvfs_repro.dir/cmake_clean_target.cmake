file(REMOVE_RECURSE
  "libmcdvfs_repro.a"
)
