# Empty compiler generated dependencies file for mcdvfs_repro.
# This may be replaced when dependencies are built.
