file(REMOVE_RECURSE
  "CMakeFiles/mcdvfs_repro.dir/analyses.cc.o"
  "CMakeFiles/mcdvfs_repro.dir/analyses.cc.o.d"
  "CMakeFiles/mcdvfs_repro.dir/suite.cc.o"
  "CMakeFiles/mcdvfs_repro.dir/suite.cc.o.d"
  "libmcdvfs_repro.a"
  "libmcdvfs_repro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcdvfs_repro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
