# Empty dependencies file for mcdvfs_repro.
# This may be replaced when dependencies are built.
