
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/grid_io.cc" "src/sim/CMakeFiles/mcdvfs_sim.dir/grid_io.cc.o" "gcc" "src/sim/CMakeFiles/mcdvfs_sim.dir/grid_io.cc.o.d"
  "/root/repo/src/sim/grid_runner.cc" "src/sim/CMakeFiles/mcdvfs_sim.dir/grid_runner.cc.o" "gcc" "src/sim/CMakeFiles/mcdvfs_sim.dir/grid_runner.cc.o.d"
  "/root/repo/src/sim/measured_grid.cc" "src/sim/CMakeFiles/mcdvfs_sim.dir/measured_grid.cc.o" "gcc" "src/sim/CMakeFiles/mcdvfs_sim.dir/measured_grid.cc.o.d"
  "/root/repo/src/sim/sample_simulator.cc" "src/sim/CMakeFiles/mcdvfs_sim.dir/sample_simulator.cc.o" "gcc" "src/sim/CMakeFiles/mcdvfs_sim.dir/sample_simulator.cc.o.d"
  "/root/repo/src/sim/timing_model.cc" "src/sim/CMakeFiles/mcdvfs_sim.dir/timing_model.cc.o" "gcc" "src/sim/CMakeFiles/mcdvfs_sim.dir/timing_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mcdvfs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mcdvfs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mcdvfs_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/mcdvfs_power.dir/DependInfo.cmake"
  "/root/repo/build/src/dvfs/CMakeFiles/mcdvfs_dvfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
