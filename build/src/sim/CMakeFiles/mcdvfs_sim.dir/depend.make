# Empty dependencies file for mcdvfs_sim.
# This may be replaced when dependencies are built.
