file(REMOVE_RECURSE
  "CMakeFiles/mcdvfs_sim.dir/grid_io.cc.o"
  "CMakeFiles/mcdvfs_sim.dir/grid_io.cc.o.d"
  "CMakeFiles/mcdvfs_sim.dir/grid_runner.cc.o"
  "CMakeFiles/mcdvfs_sim.dir/grid_runner.cc.o.d"
  "CMakeFiles/mcdvfs_sim.dir/measured_grid.cc.o"
  "CMakeFiles/mcdvfs_sim.dir/measured_grid.cc.o.d"
  "CMakeFiles/mcdvfs_sim.dir/sample_simulator.cc.o"
  "CMakeFiles/mcdvfs_sim.dir/sample_simulator.cc.o.d"
  "CMakeFiles/mcdvfs_sim.dir/timing_model.cc.o"
  "CMakeFiles/mcdvfs_sim.dir/timing_model.cc.o.d"
  "libmcdvfs_sim.a"
  "libmcdvfs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcdvfs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
