file(REMOVE_RECURSE
  "libmcdvfs_sim.a"
)
