# Empty dependencies file for mcdvfs_sched.
# This may be replaced when dependencies are built.
