file(REMOVE_RECURSE
  "CMakeFiles/mcdvfs_sched.dir/scheduler.cc.o"
  "CMakeFiles/mcdvfs_sched.dir/scheduler.cc.o.d"
  "libmcdvfs_sched.a"
  "libmcdvfs_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcdvfs_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
