file(REMOVE_RECURSE
  "libmcdvfs_sched.a"
)
