# Empty compiler generated dependencies file for mcdvfs_core.
# This may be replaced when dependencies are built.
