file(REMOVE_RECURSE
  "libmcdvfs_core.a"
)
