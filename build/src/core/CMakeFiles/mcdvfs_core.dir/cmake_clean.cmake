file(REMOVE_RECURSE
  "CMakeFiles/mcdvfs_core.dir/inefficiency.cc.o"
  "CMakeFiles/mcdvfs_core.dir/inefficiency.cc.o.d"
  "CMakeFiles/mcdvfs_core.dir/optimal_settings.cc.o"
  "CMakeFiles/mcdvfs_core.dir/optimal_settings.cc.o.d"
  "CMakeFiles/mcdvfs_core.dir/pareto.cc.o"
  "CMakeFiles/mcdvfs_core.dir/pareto.cc.o.d"
  "CMakeFiles/mcdvfs_core.dir/performance_clusters.cc.o"
  "CMakeFiles/mcdvfs_core.dir/performance_clusters.cc.o.d"
  "CMakeFiles/mcdvfs_core.dir/search_strategies.cc.o"
  "CMakeFiles/mcdvfs_core.dir/search_strategies.cc.o.d"
  "CMakeFiles/mcdvfs_core.dir/stable_regions.cc.o"
  "CMakeFiles/mcdvfs_core.dir/stable_regions.cc.o.d"
  "CMakeFiles/mcdvfs_core.dir/step_sensitivity.cc.o"
  "CMakeFiles/mcdvfs_core.dir/step_sensitivity.cc.o.d"
  "CMakeFiles/mcdvfs_core.dir/tradeoff.cc.o"
  "CMakeFiles/mcdvfs_core.dir/tradeoff.cc.o.d"
  "CMakeFiles/mcdvfs_core.dir/transitions.cc.o"
  "CMakeFiles/mcdvfs_core.dir/transitions.cc.o.d"
  "CMakeFiles/mcdvfs_core.dir/tuning_cost.cc.o"
  "CMakeFiles/mcdvfs_core.dir/tuning_cost.cc.o.d"
  "libmcdvfs_core.a"
  "libmcdvfs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcdvfs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
