
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/inefficiency.cc" "src/core/CMakeFiles/mcdvfs_core.dir/inefficiency.cc.o" "gcc" "src/core/CMakeFiles/mcdvfs_core.dir/inefficiency.cc.o.d"
  "/root/repo/src/core/optimal_settings.cc" "src/core/CMakeFiles/mcdvfs_core.dir/optimal_settings.cc.o" "gcc" "src/core/CMakeFiles/mcdvfs_core.dir/optimal_settings.cc.o.d"
  "/root/repo/src/core/pareto.cc" "src/core/CMakeFiles/mcdvfs_core.dir/pareto.cc.o" "gcc" "src/core/CMakeFiles/mcdvfs_core.dir/pareto.cc.o.d"
  "/root/repo/src/core/performance_clusters.cc" "src/core/CMakeFiles/mcdvfs_core.dir/performance_clusters.cc.o" "gcc" "src/core/CMakeFiles/mcdvfs_core.dir/performance_clusters.cc.o.d"
  "/root/repo/src/core/search_strategies.cc" "src/core/CMakeFiles/mcdvfs_core.dir/search_strategies.cc.o" "gcc" "src/core/CMakeFiles/mcdvfs_core.dir/search_strategies.cc.o.d"
  "/root/repo/src/core/stable_regions.cc" "src/core/CMakeFiles/mcdvfs_core.dir/stable_regions.cc.o" "gcc" "src/core/CMakeFiles/mcdvfs_core.dir/stable_regions.cc.o.d"
  "/root/repo/src/core/step_sensitivity.cc" "src/core/CMakeFiles/mcdvfs_core.dir/step_sensitivity.cc.o" "gcc" "src/core/CMakeFiles/mcdvfs_core.dir/step_sensitivity.cc.o.d"
  "/root/repo/src/core/tradeoff.cc" "src/core/CMakeFiles/mcdvfs_core.dir/tradeoff.cc.o" "gcc" "src/core/CMakeFiles/mcdvfs_core.dir/tradeoff.cc.o.d"
  "/root/repo/src/core/transitions.cc" "src/core/CMakeFiles/mcdvfs_core.dir/transitions.cc.o" "gcc" "src/core/CMakeFiles/mcdvfs_core.dir/transitions.cc.o.d"
  "/root/repo/src/core/tuning_cost.cc" "src/core/CMakeFiles/mcdvfs_core.dir/tuning_cost.cc.o" "gcc" "src/core/CMakeFiles/mcdvfs_core.dir/tuning_cost.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mcdvfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mcdvfs_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/mcdvfs_power.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/mcdvfs_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/dvfs/CMakeFiles/mcdvfs_dvfs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mcdvfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
