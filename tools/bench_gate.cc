/**
 * @file
 * Bench regression gate: compare a candidate BENCH_*.json artifact
 * against a committed baseline and fail on schema drift or timing
 * regression beyond a tolerance.
 *
 * Field semantics (applied per record, by key name):
 *  - "schema" / "benchmark" at top level, and every string or
 *    structural field in a baseline record ("name", "phase", "kernel",
 *    "settings", "samples", "jobs", "devices", ...): exact match.
 *    A mismatch or a missing/extra record is schema drift, which
 *    fails regardless of tolerance — drifted artifacts can't be
 *    compared, they need a deliberate baseline refresh.
 *  - lower-is-better timings ("*_seconds", "p50_ns", "p99_ns"):
 *    candidate must be <= baseline * (1 + tolerance).
 *  - higher-is-better throughput ("cells_per_sec"): candidate must
 *    be >= baseline * (1 - tolerance).
 *  - everything else (rates, hit counts, speedup ratios) is
 *    informational and ignored.
 *
 * Usage:
 *   bench_gate --baseline FILE --candidate FILE [--tolerance 0.25]
 *
 * Exit codes: 0 = pass, 1 = gate failure, 2 = usage/IO error.
 */

#include <cmath>
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "common/args.hh"
#include "common/json.hh"
#include "common/logging.hh"

namespace
{

using mcdvfs::json::Value;

struct GateReport
{
    std::vector<std::string> failures;
    std::size_t comparedFields = 0;

    void
    fail(std::string message)
    {
        failures.push_back(std::move(message));
    }
};

bool
endsWith(const std::string &text, const std::string &suffix)
{
    return text.size() >= suffix.size() &&
           text.compare(text.size() - suffix.size(), suffix.size(),
                        suffix) == 0;
}

bool
lowerIsBetter(const std::string &key)
{
    // The fleet replay's per-phase characterize/analyze split is a
    // few-millisecond slice of a concurrent replay at --tiny scale —
    // run-to-run spread exceeds any tolerance that would still catch
    // regressions, so those two stay informational; the phase's
    // replay_seconds total remains gated.
    if (key == "characterize_seconds" || key == "analyze_seconds")
        return false;
    return endsWith(key, "_seconds") || key == "p50_ns" ||
           key == "p99_ns";
}

bool
higherIsBetter(const std::string &key)
{
    return key == "cells_per_sec";
}

/** Identity label for one record inside a results/phases array. */
std::string
recordIdentity(const Value &record, std::size_t index)
{
    if (record.has("name"))
        return record.at("name").asString();
    if (record.has("phase"))
        return record.at("phase").asString();
    return "record[" + std::to_string(index) + "]";
}

std::string
num(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.6g", value);
    return buffer;
}

void
compareRecord(const std::string &where, const Value &base,
              const Value &cand, double tolerance, GateReport &report)
{
    for (const auto &[key, baseValue] : base.members()) {
        if (!cand.has(key)) {
            report.fail(where + ": candidate is missing field '" +
                        key + "' (schema drift)");
            continue;
        }
        const Value &candValue = cand.at(key);
        if (baseValue.isString()) {
            if (!candValue.isString() ||
                candValue.asString() != baseValue.asString())
                report.fail(where + "." + key + ": expected \"" +
                            baseValue.asString() +
                            "\" (schema drift)");
            continue;
        }
        if (!baseValue.isNumber() || !candValue.isNumber())
            continue;
        const double b = baseValue.asNumber();
        const double c = candValue.asNumber();
        if (lowerIsBetter(key)) {
            ++report.comparedFields;
            if (b > 0.0 && c > b * (1.0 + tolerance))
                report.fail(where + "." + key + ": " + num(c) +
                            " exceeds baseline " + num(b) + " by >" +
                            num(tolerance * 100.0) + "%");
        } else if (higherIsBetter(key)) {
            ++report.comparedFields;
            if (b > 0.0 && c < b * (1.0 - tolerance))
                report.fail(where + "." + key + ": " + num(c) +
                            " is below baseline " + num(b) + " by >" +
                            num(tolerance * 100.0) + "%");
        } else if (key == "settings" || key == "samples" ||
                   key == "jobs" || key == "devices" ||
                   key == "classes" || key == "window" ||
                   key == "queue_capacity" || key == "seed") {
            // Structural run parameters: a change means the bench ran
            // a different experiment, so timings aren't comparable.
            if (c != b)
                report.fail(where + "." + key + ": " + num(c) +
                            " != baseline " + num(b) +
                            " (schema drift)");
        }
    }
    for (const auto &[key, candValue] : cand.members()) {
        (void)candValue;
        if (!base.has(key))
            report.fail(where + ": unexpected new field '" + key +
                        "' (schema drift; refresh the baseline)");
    }
}

void
compareRecordArray(const std::string &key, const Value &base,
                   const Value &cand, double tolerance,
                   GateReport &report)
{
    const std::vector<Value> &baseRecords = base.at(key).asArray();
    if (!cand.has(key) || !cand.at(key).isArray()) {
        report.fail("candidate is missing the '" + key +
                    "' array (schema drift)");
        return;
    }
    const std::vector<Value> &candRecords = cand.at(key).asArray();

    for (std::size_t i = 0; i < baseRecords.size(); ++i) {
        const std::string id = recordIdentity(baseRecords[i], i);
        bool found = false;
        for (std::size_t j = 0; j < candRecords.size(); ++j) {
            if (recordIdentity(candRecords[j], j) != id)
                continue;
            found = true;
            compareRecord(key + "/" + id, baseRecords[i],
                          candRecords[j], tolerance, report);
            break;
        }
        if (!found)
            report.fail(key + "/" + id +
                        ": missing from candidate (schema drift)");
    }
    for (std::size_t j = 0; j < candRecords.size(); ++j) {
        const std::string id = recordIdentity(candRecords[j], j);
        bool known = false;
        for (std::size_t i = 0; i < baseRecords.size(); ++i) {
            if (recordIdentity(baseRecords[i], i) == id) {
                known = true;
                break;
            }
        }
        if (!known)
            report.fail(key + "/" + id +
                        ": not in baseline (schema drift; refresh "
                        "the baseline)");
    }
}

void
compareDocuments(const Value &base, const Value &cand, double tolerance,
                 GateReport &report)
{
    for (const char *key : {"schema", "benchmark"}) {
        const std::string expected = base.at(key).asString();
        if (!cand.has(key) || !cand.at(key).isString() ||
            cand.at(key).asString() != expected) {
            report.fail(std::string(key) + ": expected \"" + expected +
                        "\" (schema drift)");
            return;
        }
    }

    // Top-level structural scalars (fleet_sim keeps devices/seed/...
    // at the top level; grid-style records keep them per record).
    compareRecord("top-level", base, cand, tolerance, report);

    for (const char *key : {"results", "phases"}) {
        if (base.has(key) && base.at(key).isArray())
            compareRecordArray(key, base, cand, tolerance, report);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    mcdvfs::ArgParser args("bench_gate");
    args.addOption("baseline");
    args.addOption("candidate");
    args.addOption("tolerance");

    try {
        args.parse(argc, argv);
        if (!args.has("baseline") || !args.has("candidate")) {
            std::fprintf(stderr,
                         "usage: bench_gate --baseline FILE "
                         "--candidate FILE [--tolerance 0.25]\n");
            return 2;
        }
        const double tolerance = args.getDouble("tolerance", 0.25);
        if (!(tolerance >= 0.0) || !std::isfinite(tolerance)) {
            std::fprintf(stderr,
                         "bench_gate: tolerance must be finite and "
                         ">= 0\n");
            return 2;
        }

        const Value base =
            mcdvfs::json::parseFile(args.get("baseline"));
        const Value cand =
            mcdvfs::json::parseFile(args.get("candidate"));

        GateReport report;
        compareDocuments(base, cand, tolerance, report);

        if (report.failures.empty()) {
            std::printf("bench_gate: PASS %s vs %s (%zu timing "
                        "fields within %.0f%%)\n",
                        args.get("candidate").c_str(),
                        args.get("baseline").c_str(),
                        report.comparedFields, tolerance * 100.0);
            return 0;
        }
        std::fprintf(stderr, "bench_gate: FAIL %s vs %s\n",
                     args.get("candidate").c_str(),
                     args.get("baseline").c_str());
        for (const std::string &failure : report.failures)
            std::fprintf(stderr, "  - %s\n", failure.c_str());
        return 1;
    } catch (const std::exception &error) {
        std::fprintf(stderr, "bench_gate: %s\n", error.what());
        return 2;
    }
}
