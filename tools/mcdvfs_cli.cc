/**
 * @file
 * mcdvfs command-line tool: run any of the library's analyses from
 * the shell.
 *
 *   mcdvfs_cli list
 *   mcdvfs_cli characterize <workload> [--csv]
 *   mcdvfs_cli grid <workload> [--fine] [--out FILE]
 *   mcdvfs_cli optimal <workload> [--budget B] [--csv]
 *   mcdvfs_cli regions <workload> [--budget B] [--threshold PCT]
 *   mcdvfs_cli tradeoff <workload> [--budget B] [--threshold PCT]
 *   mcdvfs_cli profile <workload> [--budget B] [--threshold PCT]
 *   mcdvfs_cli tune <wl[:budget]> ... [--threshold PCT] [--jobs N]
 *   mcdvfs_cli serve [--store-dir DIR] [--jobs N]
 *   mcdvfs_cli stats [wl[:budget]] ...
 *
 * Workloads are the twelve SPEC-like profiles; grids come from the
 * paper's coarse 70-setting space unless --fine is given.  Every
 * grid-building command accepts --jobs N to spread the per-setting
 * model evaluation over N worker threads (results are bit-identical
 * to --jobs 1); grids are served through the characterization
 * service, so repeated grids within one invocation hit its cache.
 *
 * "serve" runs the long-lived tuning daemon (docs/FLEET.md): it reads
 * newline-delimited wl[:budget] specs from stdin, answers them through
 * the async request pipeline, and drains cleanly at EOF.  With
 * --store-dir DIR the daemon persists grid/analysis snapshots there
 * and warm-loads them on the next start; "tune" accepts the same flag
 * to run its batch through a daemon over that store instead of a bare
 * service.
 *
 * Every command accepts --metrics-out FILE to dump the process
 * metrics snapshot (docs/OBSERVABILITY.md) as JSON on exit; the
 * "stats" command prints the same snapshot to stdout, optionally
 * after running a batch of tuning requests to generate activity.
 * "stats --watch SECS [--watch-count N]" runs a live telemetry
 * pipeline instead: each tick prints the counters that moved to
 * stderr and, after N ticks (default 5), the windowed timeseries
 * JSON (schema mcdvfs-timeseries-v1) goes to stdout.  "serve
 * --telemetry-out FILE [--telemetry-period-ms MS]" samples the
 * daemon the same way for its whole life — SLO watchdog armed —
 * and writes the timeseries JSON at exit.
 *
 * Every command also accepts --trace-out FILE to record an execution
 * trace (Chrome trace_event JSON, loadable in Perfetto or
 * chrome://tracing), --log-level LEVEL to set the advisory logging
 * threshold (debug, info, warn, error, silent), and — for tradeoff
 * and tune — --trace-journal FILE to dump the per-sample tuning
 * decision journal (JSONL, schema mcdvfs-trace-v1).
 */

#include <algorithm>
#include <chrono>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>

#include "obs/telemetry.hh"

#include "common/args.hh"
#include "daemon/tuning_daemon.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "obs/journal.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "core/pareto.hh"
#include "repro/analyses.hh"
#include "repro/suite.hh"
#include "runtime/offline_profile.hh"
#include "runtime/tuning_loop.hh"
#include "sched/scheduler.hh"
#include "sim/grid_io.hh"
#include "svc/characterization_service.hh"
#include "trace/workloads.hh"

using namespace mcdvfs;

namespace
{

int
usage()
{
    std::cerr
        << "usage: mcdvfs_cli <command> [args]\n"
           "  list                                  workloads\n"
           "  characterize <workload> [--csv]       per-sample profile\n"
           "  grid <workload> [--fine] [--out F]    build + save a grid\n"
           "  optimal <workload> [--budget B]       optimal trajectory\n"
           "  regions <workload> [--budget B] [--threshold PCT]\n"
           "  tradeoff <workload> [--budget B] [--threshold PCT]\n"
           "  profile <workload> [--budget B] [--threshold PCT]\n"
           "  pareto <workload> [--fine]\n"
           "  schedule <wl[:budget]> <wl[:budget]> ... [--budget B]\n"
           "  tune <wl[:budget]> <wl[:budget]> ... [--threshold PCT]\n"
           "  serve [--store-dir DIR]               tuning daemon on stdin\n"
           "  stats [wl[:budget]] ...               metrics snapshot\n"
           "options: --jobs N parallelizes grid construction;\n"
           "         --store-dir DIR persists grid/analysis snapshots\n"
           "           (serve and tune) and warm-loads them on start;\n"
           "         --watch SECS samples a live timeseries instead\n"
           "           (stats; per-tick deltas on stderr, timeseries\n"
           "           JSON on stdout after --watch-count ticks);\n"
           "         --telemetry-out FILE samples the daemon at\n"
           "           --telemetry-period-ms (serve; default 250) and\n"
           "           writes the timeseries JSON on exit;\n"
           "         --metrics-out FILE dumps metrics JSON on exit;\n"
           "         --trace-out FILE dumps a Chrome/Perfetto trace;\n"
           "         --trace-journal FILE dumps the per-sample tuning\n"
           "           decision journal (tradeoff and tune);\n"
           "         --log-level LEVEL sets the advisory threshold\n"
           "           (debug, info, warn, error, silent)\n";
    return 2;
}

/**
 * Run the four online re-tune schedules over @c grid with a decision
 * journal attached, appending one record per (policy, sample) pair.
 */
void
journalSchedules(obs::DecisionJournal &journal, const MeasuredGrid &grid,
                 double budget, double threshold)
{
    GridAnalyses a(grid);
    TuningLoop loop(a.clusters, a.regions, a.costModel);
    loop.setJournal(&journal);
    loop.runOracle(budget, threshold);
    loop.runEverySample(budget, threshold);
    loop.runPredictive(budget, threshold);
    loop.runReactive(budget, threshold);
}

std::size_t
jobsFrom(const ArgParser &args)
{
    return static_cast<std::size_t>(args.getInt("jobs", 1, 1, 1024));
}

svc::CharacterizationService::Options
serviceOptions(const ArgParser &args)
{
    svc::CharacterizationService::Options options;
    options.jobs = jobsFrom(args);
    options.profileCacheCapacity = static_cast<std::size_t>(
        args.getInt("profile-cache", 0, 0, 1 << 20));
    return options;
}

SettingsSpace
spaceFrom(const ArgParser &args)
{
    return args.flag("fine") ? SettingsSpace::fine()
                             : SettingsSpace::coarse();
}

std::shared_ptr<const MeasuredGrid>
buildGrid(svc::CharacterizationService &service, const std::string &workload,
          const ArgParser &args)
{
    return service.grid(workloadByName(workload), spaceFrom(args));
}

// Parses the budget half of a "workload:budget" positional.
double
budgetFromSpec(const std::string &spec, std::size_t colon,
               const ArgParser &args)
{
    if (colon == std::string::npos)
        return args.getDouble("budget", 1.3);
    const std::string text = spec.substr(colon + 1);
    try {
        std::size_t used = 0;
        const double budget = std::stod(text, &used);
        if (used != text.size())
            throw std::invalid_argument(text);
        return budget;
    } catch (const std::exception &) {
        fatal("bad budget '", text, "' in '", spec, "' (expected e.g. ",
              spec.substr(0, colon), ":1.3)");
    }
}

int
cmdList()
{
    Table table({"workload", "samples", "flavour"});
    table.setTitle("available workloads");
    for (const auto &w : extendedWorkloads()) {
        const bool reported =
            std::find(ReproSuite::benchmarkNames().begin(),
                      ReproSuite::benchmarkNames().end(),
                      w.name()) != ReproSuite::benchmarkNames().end();
        table.addRow({w.name(),
                      Table::num(static_cast<long long>(
                          w.sampleCount())),
                      reported ? "paper-reported" : "extended"});
    }
    table.print(std::cout);
    return 0;
}

int
cmdCharacterize(const ArgParser &args)
{
    const std::string workload = args.positionals().at(1);
    SampleSimulator simulator;
    const WorkloadProfile profile = workloadByName(workload);
    const auto samples = simulator.characterize(profile);

    Table table({"sample", "phase", "baseCPI", "L1 MPKI", "L2 MPKI",
                 "dram/ki", "rowhit%", "mlp"});
    table.setTitle("characterization: " + workload);
    for (std::size_t s = 0; s < samples.size(); ++s) {
        const SampleProfile &p = samples[s];
        table.addRow({Table::num(static_cast<long long>(s)),
                      p.phaseName, Table::num(p.baseCpi, 2),
                      Table::num(p.l1Mpki, 1), Table::num(p.l2Mpki, 1),
                      Table::num(p.dramPerInstr() * 1000.0, 1),
                      Table::num(p.rowHitFrac * 100.0, 0),
                      Table::num(p.mlp, 1)});
    }
    if (args.flag("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}

int
cmdGrid(const ArgParser &args)
{
    const std::string workload = args.positionals().at(1);
    svc::CharacterizationService service(SystemConfig::paperDefault(),
                                         serviceOptions(args));
    const auto grid = buildGrid(service, workload, args);
    const std::string out = args.get("out");
    if (out.empty()) {
        saveGrid(*grid, std::cout);
        return 0;
    }
    std::ofstream file(out);
    if (!file)
        fatal("cannot open '", out, "' for writing");
    saveGrid(*grid, file);
    std::cerr << "wrote " << grid->sampleCount() << "x"
              << grid->settingCount() << " grid to " << out << "\n";
    return 0;
}

int
cmdOptimal(const ArgParser &args)
{
    const std::string workload = args.positionals().at(1);
    const double budget = args.getDouble("budget", 1.3);
    svc::CharacterizationService service(SystemConfig::paperDefault(),
                                         serviceOptions(args));
    svc::TuningRequest request{workloadByName(workload), spaceFrom(args),
                               budget,
                               args.getDouble("threshold", 3.0) / 100.0};
    const svc::TuningResult result = service.submit(request);

    Table table({"sample", "cpu MHz", "mem MHz", "speedup",
                 "inefficiency"});
    table.setTitle(workload + " optimal settings at budget " +
                   Table::num(budget, 2));
    std::size_t s = 0;
    for (const OptimalChoice &choice : result.optimal) {
        table.addRow({Table::num(static_cast<long long>(s++)),
                      Table::num(toMegaHertz(choice.setting.cpu), 0),
                      Table::num(toMegaHertz(choice.setting.mem), 0),
                      Table::num(choice.speedup, 3),
                      Table::num(choice.inefficiency, 3)});
    }
    if (args.flag("csv"))
        table.printCsv(std::cout);
    else
        table.print(std::cout);
    return 0;
}

int
cmdRegions(const ArgParser &args)
{
    const std::string workload = args.positionals().at(1);
    const double budget = args.getDouble("budget", 1.3);
    const double threshold = args.getDouble("threshold", 3.0) / 100.0;
    svc::CharacterizationService service(SystemConfig::paperDefault(),
                                         serviceOptions(args));
    svc::TuningRequest request{workloadByName(workload), spaceFrom(args),
                               budget, threshold};
    const svc::TuningResult result = service.submit(request);

    Table table({"region", "samples", "length", "cpu MHz", "mem MHz"});
    table.setTitle(workload + " stable regions (budget " +
                   Table::num(budget, 2) + ", threshold " +
                   Table::num(threshold * 100.0, 0) + "%)");
    const auto &regions = result.regions;
    for (std::size_t r = 0; r < regions.size(); ++r) {
        table.addRow(
            {Table::num(static_cast<long long>(r)),
             Table::num(static_cast<long long>(regions[r].first)) +
                 "-" +
                 Table::num(static_cast<long long>(regions[r].last)),
             Table::num(static_cast<long long>(regions[r].length())),
             Table::num(toMegaHertz(regions[r].chosenSetting.cpu), 0),
             Table::num(toMegaHertz(regions[r].chosenSetting.mem), 0)});
    }
    table.print(std::cout);
    return 0;
}

int
cmdTradeoff(const ArgParser &args)
{
    const std::string workload = args.positionals().at(1);
    const double budget = args.getDouble("budget", 1.3);
    const double threshold = args.getDouble("threshold", 3.0) / 100.0;
    svc::CharacterizationService service(SystemConfig::paperDefault(),
                                         serviceOptions(args));
    const auto grid = buildGrid(service, workload, args);
    GridAnalyses a(*grid);

    const PolicyOutcome optimal = a.tradeoff.optimalTracking(budget);
    const PolicyOutcome cluster =
        a.tradeoff.clusterPolicy(budget, threshold);
    const TradeoffRow row = a.tradeoff.compare(budget, threshold);

    Table table({"policy", "time (ms)", "energy (mJ)", "achieved I",
                 "events", "transitions"});
    table.setTitle(workload + " trade-off at budget " +
                   Table::num(budget, 2));
    table.addRow({"optimal-tracking", Table::num(optimal.time * 1e3, 2),
                  Table::num(optimal.energy * 1e3, 2),
                  Table::num(optimal.achievedInefficiency, 3),
                  Table::num(static_cast<long long>(
                      optimal.tuningEvents)),
                  Table::num(static_cast<long long>(
                      optimal.transitions))});
    table.addRow({"cluster-policy", Table::num(cluster.time * 1e3, 2),
                  Table::num(cluster.energy * 1e3, 2),
                  Table::num(cluster.achievedInefficiency, 3),
                  Table::num(static_cast<long long>(
                      cluster.tuningEvents)),
                  Table::num(static_cast<long long>(
                      cluster.transitions))});
    table.print(std::cout);
    std::cout << "cluster vs optimal: perf " << Table::num(row.perfPct, 2)
              << "% / energy " << Table::num(row.energyPct, 2)
              << "%; with tuning overhead: perf "
              << Table::num(row.perfPctWithOverhead, 2) << "% / energy "
              << Table::num(row.energyPctWithOverhead, 2) << "%\n";

    if (args.has("trace-journal")) {
        obs::DecisionJournal journal;
        journalSchedules(journal, *grid, budget, threshold);
        journal.write(args.get("trace-journal"));
        std::cerr << "wrote " << journal.records().size()
                  << " journal records to " << args.get("trace-journal")
                  << "\n";
    }
    return 0;
}

int
cmdPareto(const ArgParser &args)
{
    const std::string workload = args.positionals().at(1);
    svc::CharacterizationService service(SystemConfig::paperDefault(),
                                         serviceOptions(args));
    const auto grid = buildGrid(service, workload, args);
    InefficiencyAnalysis analysis(*grid);
    ParetoAnalysis pareto(analysis);

    Table table({"cpu MHz", "mem MHz", "time (ms)", "energy (mJ)",
                 "speedup", "inefficiency"});
    table.setTitle(workload + " energy-performance Pareto frontier");
    for (const ParetoPoint &point : pareto.runFrontier()) {
        table.addRow({Table::num(toMegaHertz(point.setting.cpu), 0),
                      Table::num(toMegaHertz(point.setting.mem), 0),
                      Table::num(point.time * 1e3, 2),
                      Table::num(point.energy * 1e3, 2),
                      Table::num(point.speedup, 3),
                      Table::num(point.inefficiency, 3)});
    }
    table.print(std::cout);
    std::cout << Table::num(pareto.dominatedFraction() * 100.0, 0)
              << "% of the " << grid->settingCount()
              << " settings are dominated\n";
    return 0;
}

int
cmdSchedule(const ArgParser &args)
{
    // schedule <workload[:budget]> <workload[:budget]> ...
    ReproSuite suite(SystemConfig::paperDefault(), jobsFrom(args));
    std::vector<AppTask> apps;
    std::vector<std::string> names;
    for (std::size_t i = 1; i < args.positionals().size(); ++i) {
        const std::string &spec = args.positionals()[i];
        const std::size_t colon = spec.find(':');
        AppTask task;
        task.name = spec.substr(0, colon);
        task.budget = budgetFromSpec(spec, colon, args);
        task.threshold = args.getDouble("threshold", 3.0) / 100.0;
        names.push_back(task.name);
        apps.push_back(task);
    }
    // Grids must outlive the run; fetch after the vector is final.
    for (std::size_t i = 0; i < apps.size(); ++i)
        apps[i].grid = &suite.grid(names[i]);

    BudgetScheduler scheduler;
    for (const auto [policy, label] :
         {std::pair{SchedPolicy::RoundRobin, "round-robin"},
          std::pair{SchedPolicy::RunToCompletion,
                    "run-to-completion"}}) {
        const ScheduleResult result = scheduler.run(apps, policy);
        Table table({"app", "budget", "achieved I", "busy (ms)",
                     "energy (mJ)"});
        table.setTitle(std::string("schedule: ") + label);
        for (std::size_t i = 0; i < apps.size(); ++i) {
            table.addRow(
                {result.apps[i].name, Table::num(apps[i].budget, 2),
                 Table::num(result.apps[i].achievedInefficiency, 3),
                 Table::num(result.apps[i].busyTime * 1e3, 1),
                 Table::num(result.apps[i].energy * 1e3, 1)});
        }
        table.print(std::cout);
        std::cout << "makespan "
                  << Table::num(result.makespan * 1e3, 1)
                  << " ms, transitions "
                  << result.frequencyTransitions << "\n\n";
    }
    return 0;
}

int
cmdProfile(const ArgParser &args)
{
    const std::string workload = args.positionals().at(1);
    const double budget = args.getDouble("budget", 1.3);
    const double threshold = args.getDouble("threshold", 3.0) / 100.0;
    svc::CharacterizationService service(SystemConfig::paperDefault(),
                                         serviceOptions(args));
    svc::TuningRequest request{workloadByName(workload), spaceFrom(args),
                               budget, threshold};
    const svc::TuningResult result = service.submit(request);
    const OfflineProfile profile = OfflineProfile::fromRegions(
        workload, result.regions, result.grid->space());
    std::cout << profile.serialize();
    return 0;
}

daemon::DaemonOptions
daemonOptions(const ArgParser &args)
{
    daemon::DaemonOptions options;
    options.service = serviceOptions(args);
    if (args.has("store-dir"))
        options.storeDir = args.get("store-dir");
    return options;
}

int
cmdTune(const ArgParser &args)
{
    // tune <workload[:budget]> <workload[:budget]> ... — with
    // --store-dir, the batch runs through the persistent tuning
    // daemon (snapshots written and warm-loaded) instead of a bare
    // service.
    std::vector<svc::TuningRequest> requests;
    for (std::size_t i = 1; i < args.positionals().size(); ++i) {
        const std::string &spec = args.positionals()[i];
        const std::size_t colon = spec.find(':');
        svc::TuningRequest request{
            workloadByName(spec.substr(0, colon)), spaceFrom(args),
            budgetFromSpec(spec, colon, args),
            args.getDouble("threshold", 3.0) / 100.0};
        requests.push_back(std::move(request));
    }

    std::unique_ptr<svc::CharacterizationService> direct;
    std::unique_ptr<daemon::TuningDaemon> server;
    std::vector<svc::TuningResult> results;
    if (args.has("store-dir")) {
        server = std::make_unique<daemon::TuningDaemon>(
            SystemConfig::paperDefault(), daemonOptions(args));
        std::vector<std::future<daemon::DaemonResponse>> futures;
        futures.reserve(requests.size());
        for (const svc::TuningRequest &request : requests)
            futures.push_back(server->submit(request));
        for (std::future<daemon::DaemonResponse> &future : futures) {
            daemon::DaemonResponse response = future.get();
            if (!response.ok())
                fatal("tune: request shed (",
                      daemon::shedReasonName(response.shed), ")");
            results.push_back(std::move(response.result));
        }
        server->drain();
    } else {
        direct = std::make_unique<svc::CharacterizationService>(
            SystemConfig::paperDefault(), serviceOptions(args));
        results = direct->submitBatch(requests);
    }
    svc::CharacterizationService &service =
        server ? server->service() : *direct;

    Table table({"workload", "budget", "samples", "regions",
                 "mean length", "cached"});
    table.setTitle("batched tuning (" +
                   Table::num(static_cast<long long>(service.jobs())) +
                   " jobs)");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const svc::TuningResult &result = results[i];
        const double mean_length =
            result.regions.empty()
                ? 0.0
                : static_cast<double>(result.grid->sampleCount()) /
                      static_cast<double>(result.regions.size());
        table.addRow(
            {requests[i].workload.name(),
             Table::num(result.budget, 2),
             Table::num(static_cast<long long>(
                 result.grid->sampleCount())),
             Table::num(static_cast<long long>(result.regions.size())),
             Table::num(mean_length, 1),
             result.cacheHit ? "yes" : "no"});
    }
    table.print(std::cout);
    const svc::GridCache::Stats stats = service.cacheStats();
    std::cout << "grid cache: " << stats.hits << " hits, "
              << stats.misses << " misses, " << stats.evictions
              << " evictions\n";
    const svc::AnalysisCache::Stats analysis_stats =
        service.analysisStats();
    std::cout << "analysis cache: " << analysis_stats.hits << " hits, "
              << analysis_stats.misses << " misses, "
              << analysis_stats.evictions << " evictions; checkpoints: "
              << analysis_stats.checkpointHits << " hits, "
              << analysis_stats.checkpointMisses << " misses\n";
    if (service.profileCacheEnabled()) {
        const ProfileCache::Stats profile_stats =
            service.profileStats();
        std::cout << "profile cache: " << profile_stats.hits
                  << " hits, " << profile_stats.misses << " misses, "
                  << profile_stats.evictions << " evictions, "
                  << profile_stats.entries << " resident\n";
    }
    if (server != nullptr) {
        const daemon::DaemonStats stats = server->stats();
        std::cout << "daemon: " << stats.completed << " completed, "
                  << stats.coalesced << " coalesced, "
                  << stats.warmGrids << "+" << stats.warmAnalyses
                  << " snapshots warm-loaded from '"
                  << server->store()->directory() << "'\n";
    }

    if (args.has("trace-journal")) {
        obs::DecisionJournal journal;
        for (const svc::TuningResult &result : results) {
            journalSchedules(journal, *result.grid, result.budget,
                             result.threshold);
        }
        journal.write(args.get("trace-journal"));
        std::cerr << "wrote " << journal.records().size()
                  << " journal records to " << args.get("trace-journal")
                  << "\n";
    }
    return 0;
}

int
cmdServe(const ArgParser &args)
{
    // serve — long-lived daemon loop: one wl[:budget] spec per stdin
    // line ('#' comments and blank lines skipped), answered through
    // the async pipeline; EOF drains and prints the summary.  With
    // --telemetry-out FILE a background pipeline samples the metrics
    // registry (SLO watchdog armed) for the daemon's whole life and
    // writes the timeseries JSON on exit.
    std::unique_ptr<obs::TelemetryPipeline> telemetry;
    if (args.has("telemetry-out")) {
        obs::TelemetryConfig config;
        config.period = std::chrono::milliseconds(args.getInt(
            "telemetry-period-ms", 250, 1, 3600000));
        telemetry = std::make_unique<obs::TelemetryPipeline>(config);
        telemetry->start();
    }
    daemon::TuningDaemon server(SystemConfig::paperDefault(),
                                daemonOptions(args));
    struct Submitted
    {
        std::string spec;
        std::future<daemon::DaemonResponse> future;
    };
    std::vector<Submitted> submitted;
    std::string line;
    while (std::getline(std::cin, line)) {
        const std::size_t start = line.find_first_not_of(" \t");
        if (start == std::string::npos || line[start] == '#')
            continue;
        const std::string spec =
            line.substr(start, line.find_last_not_of(" \t\r") - start + 1);
        const std::size_t colon = spec.find(':');
        svc::TuningRequest request{
            workloadByName(spec.substr(0, colon)), spaceFrom(args),
            budgetFromSpec(spec, colon, args),
            args.getDouble("threshold", 3.0) / 100.0};
        submitted.push_back(Submitted{spec, server.submit(request)});
    }
    server.drain();

    Table table({"request", "regions", "grid hit", "analysis hit",
                 "status", "total ms"});
    table.setTitle("tuning daemon (" +
                   Table::num(static_cast<long long>(
                       server.service().jobs())) +
                   " jobs)");
    for (Submitted &entry : submitted) {
        daemon::DaemonResponse response = entry.future.get();
        if (response.ok()) {
            table.addRow(
                {entry.spec,
                 Table::num(static_cast<long long>(
                     response.result.regions.size())),
                 response.result.cacheHit ? "yes" : "no",
                 response.result.analysisCacheHit ? "yes" : "no", "ok",
                 Table::num(static_cast<double>(response.totalNs) / 1e6,
                            3)});
        } else {
            table.addRow({entry.spec, "-", "-", "-",
                          daemon::shedReasonName(response.shed), "-"});
        }
    }
    table.print(std::cout);

    const daemon::DaemonStats stats = server.stats();
    std::cout << "daemon: " << stats.admitted << " admitted, "
              << stats.completed << " completed, "
              << stats.shedQueueFull + stats.shedDraining << " shed, "
              << stats.batches << " batches, " << stats.coalesced
              << " coalesced\n";
    if (server.store() != nullptr) {
        const daemon::SnapshotStore::Stats store_stats =
            server.store()->stats();
        std::cout << "store '" << server.store()->directory() << "': "
                  << stats.warmGrids << "+" << stats.warmAnalyses
                  << " snapshots warm-loaded, "
                  << store_stats.gridStores << "+"
                  << store_stats.analysisStores << " written, "
                  << store_stats.loadErrors << " rejected\n";
    }
    if (telemetry != nullptr) {
        telemetry->stop();
        telemetry->writeJson(args.get("telemetry-out"));
        std::cerr << "wrote " << telemetry->ticks()
                  << " telemetry ticks to "
                  << args.get("telemetry-out") << "\n";
    }
    return 0;
}

void
runStatsBatch(const ArgParser &args)
{
    svc::CharacterizationService service(SystemConfig::paperDefault(),
                                         serviceOptions(args));
    std::vector<svc::TuningRequest> requests;
    for (std::size_t i = 1; i < args.positionals().size(); ++i) {
        const std::string &spec = args.positionals()[i];
        const std::size_t colon = spec.find(':');
        svc::TuningRequest request{
            workloadByName(spec.substr(0, colon)), spaceFrom(args),
            budgetFromSpec(spec, colon, args),
            args.getDouble("threshold", 3.0) / 100.0};
        requests.push_back(std::move(request));
    }
    service.submitBatch(requests);
}

int
cmdStats(const ArgParser &args)
{
    // stats [workload[:budget]] ... — optionally run a tuning batch
    // first so the snapshot reflects real activity, then print the
    // process-wide metrics snapshot as JSON.  With --watch SECS, a
    // telemetry pipeline samples at that period instead: each tick
    // prints the counters that moved to stderr, and after
    // --watch-count ticks (default 5) the timeseries JSON goes to
    // stdout.
    if (!args.has("watch")) {
        if (args.positionals().size() > 1)
            runStatsBatch(args);
        std::cout << obs::toJson(
            obs::MetricsRegistry::global().snapshot());
        return 0;
    }

    const double period_s = args.getDouble("watch", 1.0);
    if (!(period_s > 0.0))
        fatal("stats: --watch period must be > 0 seconds");
    const long long want = args.getInt("watch-count", 5, 1, 1000000);

    obs::TelemetryConfig config;
    config.period = std::chrono::milliseconds(
        std::max(1LL, static_cast<long long>(period_s * 1000.0)));
    obs::TelemetryPipeline pipeline(config);

    std::promise<void> done;
    auto previous = std::make_shared<
        std::vector<std::pair<std::string, std::uint64_t>>>();
    pipeline.setTickCallback(
        [&done, previous, want](const obs::MetricsSnapshot &snapshot,
                                std::uint64_t tick) {
            // Only the single sampler thread runs this, so the
            // captured previous-snapshot state needs no lock.
            std::string moved;
            std::size_t shown = 0;
            for (const auto &[name, value] : snapshot.counters) {
                std::uint64_t before = 0;
                for (const auto &[old_name, old_value] : *previous) {
                    if (old_name == name) {
                        before = old_value;
                        break;
                    }
                }
                if (value == before)
                    continue;
                if (shown++ == 6) {
                    moved += " ...";
                    break;
                }
                moved += " " + name + "+" +
                         std::to_string(value - before);
            }
            *previous = snapshot.counters;
            std::cerr << "tick " << tick << ":"
                      << (moved.empty() ? " (idle)" : moved) << "\n";
            if (tick == static_cast<std::uint64_t>(want))
                done.set_value();
        });
    pipeline.start();
    if (args.positionals().size() > 1)
        runStatsBatch(args);
    done.get_future().wait();
    pipeline.setTickCallback(nullptr); // stop()'s flush tick is quiet
    pipeline.stop();
    std::cout << pipeline.exportJson();
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    ArgParser args("mcdvfs_cli");
    args.addOption("budget");
    args.addOption("threshold");
    args.addOption("out");
    args.addOption("jobs");
    args.addOption("profile-cache");
    args.addOption("metrics-out");
    args.addOption("trace-out");
    args.addOption("trace-journal");
    args.addOption("log-level");
    args.addOption("store-dir");
    args.addOption("watch");
    args.addOption("watch-count");
    args.addOption("telemetry-out");
    args.addOption("telemetry-period-ms");
    args.addFlag("fine");
    args.addFlag("csv");

    try {
        args.parse(argc, argv);
        if (args.has("log-level"))
            setLogLevel(logLevelFromString(args.get("log-level")));
        if (args.has("trace-out"))
            obs::TraceCollector::global().enable();
        if (args.positionals().empty())
            return usage();
        const std::string &command = args.positionals().front();

        int rc = 2;
        bool known = true;
        if (command == "list")
            rc = cmdList();
        else if (command == "stats")
            rc = cmdStats(args);
        else if (command == "serve")
            rc = cmdServe(args);
        else if (args.positionals().size() < 2)
            return usage();
        else if (command == "characterize")
            rc = cmdCharacterize(args);
        else if (command == "grid")
            rc = cmdGrid(args);
        else if (command == "optimal")
            rc = cmdOptimal(args);
        else if (command == "regions")
            rc = cmdRegions(args);
        else if (command == "tradeoff")
            rc = cmdTradeoff(args);
        else if (command == "profile")
            rc = cmdProfile(args);
        else if (command == "pareto")
            rc = cmdPareto(args);
        else if (command == "schedule")
            rc = cmdSchedule(args);
        else if (command == "tune")
            rc = cmdTune(args);
        else
            known = false;
        if (!known)
            return usage();

        if (args.has("metrics-out"))
            obs::writeMetricsJson(args.get("metrics-out"));
        if (args.has("trace-out"))
            obs::writeChromeTraceJson(args.get("trace-out"));
        return rc;
    } catch (const FatalError &err) {
        std::cerr << "error: " << err.what() << '\n';
        return 1;
    }
}
